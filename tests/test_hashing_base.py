"""Tests for the hasher base classes and quantization rule."""

import numpy as np
import pytest

from repro.hashing.base import (
    ProjectionHasher,
    sign_quantize,
    spectral_norm_bound,
)
from repro.hashing.lsh import RandomProjectionLSH


class TestSignQuantize:
    def test_threshold_at_zero(self):
        bits = sign_quantize(np.array([-0.5, 0.0, 0.5]))
        assert bits.tolist() == [0, 1, 1]

    def test_dtype_uint8(self):
        assert sign_quantize(np.array([1.0])).dtype == np.uint8

    def test_preserves_shape(self):
        assert sign_quantize(np.zeros((3, 4))).shape == (3, 4)


class TestSpectralNormBound:
    def test_matches_largest_singular_value(self):
        rng = np.random.default_rng(0)
        h = rng.standard_normal((6, 10))
        assert spectral_norm_bound(h) == pytest.approx(
            np.linalg.svd(h, compute_uv=False)[0]
        )

    def test_theorem1_inequality(self):
        """``‖Hq‖ ≤ M‖q‖`` for random vectors (Theorem 1)."""
        rng = np.random.default_rng(1)
        h = rng.standard_normal((5, 12))
        bound = spectral_norm_bound(h)
        for _ in range(50):
            q = rng.standard_normal(12)
            assert np.linalg.norm(h @ q) <= bound * np.linalg.norm(q) + 1e-9


class _IdentityHasher(ProjectionHasher):
    """Projects onto the first m coordinates; for interface tests."""

    def _learn(self, centered):
        d = centered.shape[1]
        weights = np.zeros((d, self._m))
        weights[: self._m, : self._m] = np.eye(self._m)
        return weights


class TestProjectionHasher:
    def test_requires_fit_before_use(self):
        hasher = _IdentityHasher(code_length=2)
        with pytest.raises(RuntimeError):
            hasher.project(np.zeros((1, 4)))
        with pytest.raises(RuntimeError):
            hasher.probe_info(np.zeros(4))

    def test_fit_centers_data(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((100, 4)) + 10.0
        hasher = _IdentityHasher(code_length=2).fit(data)
        projections = hasher.project(data)
        assert abs(projections.mean()) < 1.0  # centred, not offset by +10

    def test_encode_is_sign_of_project(self, small_data, fitted_itq):
        projections = fitted_itq.project(small_data[:50])
        assert np.array_equal(
            fitted_itq.encode(small_data[:50]), sign_quantize(projections)
        )

    def test_probe_info_consistency(self, small_data, fitted_itq):
        query = small_data[3]
        signature, costs = fitted_itq.probe_info(query)
        assert signature == fitted_itq.signatures(query[np.newaxis, :])[0]
        assert np.allclose(
            costs, np.abs(fitted_itq.project(query[np.newaxis, :])[0])
        )
        assert (costs >= 0).all()

    def test_probe_info_rejects_batch(self, fitted_itq, small_data):
        with pytest.raises(ValueError):
            fitted_itq.probe_info(small_data[:2])

    def test_fit_validations(self):
        hasher = _IdentityHasher(code_length=2)
        with pytest.raises(ValueError):
            hasher.fit(np.zeros(5))  # 1-D
        with pytest.raises(ValueError):
            hasher.fit(np.zeros((1, 5)))  # single row

    def test_hashing_matrix_shape(self, fitted_itq, small_data):
        h = fitted_itq.hashing_matrix
        assert h.shape == (8, small_data.shape[1])

    def test_spectral_bound_positive(self, fitted_itq):
        assert fitted_itq.spectral_bound() > 0


class TestRandomProjectionLSH:
    def test_deterministic_under_seed(self, small_data):
        a = RandomProjectionLSH(6, seed=3).fit(small_data)
        b = RandomProjectionLSH(6, seed=3).fit(small_data)
        assert np.array_equal(a.encode(small_data[:10]), b.encode(small_data[:10]))

    def test_different_seeds_differ(self, small_data):
        a = RandomProjectionLSH(6, seed=3).fit(small_data)
        b = RandomProjectionLSH(6, seed=4).fit(small_data)
        assert not np.array_equal(
            a.encode(small_data[:50]), b.encode(small_data[:50])
        )

    def test_bits_roughly_balanced(self, small_data):
        hasher = RandomProjectionLSH(8, seed=0).fit(small_data)
        means = hasher.encode(small_data).mean(axis=0)
        assert (means > 0.15).all() and (means < 0.85).all()
