"""Pooled batch execution is bit-identical to serial, and cleans up.

The executor shards a batch into contiguous slices and runs the
engine's *serial* batch path on each shard; because every per-query
computation is independent (and the bucket layout is prebuilt on the
caller's thread), the merged results must equal serial execution
bit-for-bit — same ids, same distances, same candidate accounting.
Thread-mode mechanics and lifecycle live here; the process/shared-
memory mode has its own suite in ``test_parallel_process.py``.
"""

import gc
import threading

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.search import HashIndex, ParallelBatchExecutor


def repro_batch_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-batch")
    ]


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(800, 16, n_clusters=8, seed=21)


@pytest.fixture(scope="module")
def queries(data):
    return sample_queries(data, 96, seed=5)


def build(data, n_tables=1, parallel=None, strategy="round_robin"):
    hashers = [ITQ(code_length=8, seed=s) for s in range(n_tables)]
    return HashIndex(
        hashers if n_tables > 1 else hashers[0],
        data,
        prober=GQR(),
        multi_table_strategy=strategy,
        parallel=parallel,
    )


def assert_batches_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert np.array_equal(g.ids, w.ids)
        assert np.array_equal(g.distances, w.distances)
        assert g.n_candidates == w.n_candidates
        assert g.n_buckets_probed == w.n_buckets_probed


class TestExecutorMechanics:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelBatchExecutor(n_workers=0)
        with pytest.raises(ValueError, match="min_batch_size"):
            ParallelBatchExecutor(n_workers=2, min_batch_size=1)

    def test_small_batches_stay_serial(self):
        executor = ParallelBatchExecutor(n_workers=4, min_batch_size=64)
        assert not executor.should_split(63)
        assert executor.should_split(64)

    def test_single_worker_never_splits(self):
        executor = ParallelBatchExecutor(n_workers=1, min_batch_size=2)
        assert not executor.should_split(10_000)

    def test_bounds_are_contiguous_and_cover(self):
        executor = ParallelBatchExecutor(n_workers=4, min_batch_size=2)
        for n in (4, 7, 96, 1001):
            bounds = executor._bounds(n)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            assert all(hi > lo for lo, hi in bounds)
            for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
                assert lo == prev_hi

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ParallelBatchExecutor(n_workers=2, mode="fiber")

    def test_shutdown_then_reuse_rebuilds_pool(self, data, queries):
        executor = ParallelBatchExecutor(n_workers=2, min_batch_size=8)
        index = build(data, parallel=executor)
        first = index.search_batch(queries, k=5, n_candidates=100)
        executor.shutdown()
        second = index.search_batch(queries, k=5, n_candidates=100)
        assert_batches_equal(second, first)
        executor.shutdown()

    def test_run_streams_rejects_query_stream_mismatch(self, data, queries):
        # Regression: shard bounds were computed from len(streams) but
        # sliced `queries` too, silently mispairing rows whenever the
        # two disagreed.  Now it must refuse loudly.
        executor = ParallelBatchExecutor(n_workers=2, min_batch_size=2)
        index = build(data, n_tables=2)
        streams = [index.candidate_stream(q) for q in queries[:4]]
        plan = index.plan(5, 100)
        with pytest.raises(ValueError, match="align"):
            executor.run_streams(index.engine, queries[:6], plan, streams)
        executor.shutdown()


class TestLifecycle:
    def test_no_workers_survive_shutdown(self, data, queries):
        executor = ParallelBatchExecutor(n_workers=4, min_batch_size=8)
        index = build(data, parallel=executor)
        index.search_batch(queries, k=5, n_candidates=100)
        assert repro_batch_threads()
        executor.shutdown()
        assert not repro_batch_threads()

    def test_executor_is_a_context_manager(self, data, queries):
        with ParallelBatchExecutor(n_workers=2, min_batch_size=8) as executor:
            index = build(data, parallel=executor)
            index.search_batch(queries, k=5, n_candidates=100)
        assert not repro_batch_threads()

    def test_index_close_shuts_executor_down(self, data, queries):
        with build(
            data, parallel=ParallelBatchExecutor(n_workers=2, min_batch_size=8)
        ) as index:
            index.search_batch(queries, k=5, n_candidates=100)
            assert repro_batch_threads()
        assert not repro_batch_threads()
        index.close()  # idempotent

    def test_dropped_executor_is_finalized(self, data, queries):
        # The weakref.finalize backstop: an executor dropped without
        # shutdown() must still release its pool.
        executor = ParallelBatchExecutor(n_workers=2, min_batch_size=8)
        index = build(data, parallel=executor)
        index.search_batch(queries, k=5, n_candidates=100)
        finalizer = executor._finalizer
        assert finalizer.alive
        del executor, index
        gc.collect()
        assert not finalizer.alive
        assert not repro_batch_threads()


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_ordered_path_matches_serial(self, data, queries, n_workers):
        # Single table + GQR: search_batch takes the score-matrix path.
        parallel = build(
            data,
            parallel=ParallelBatchExecutor(n_workers=n_workers, min_batch_size=8),
        )
        serial = build(data)
        assert_batches_equal(
            parallel.search_batch(queries, k=10, n_candidates=200),
            serial.search_batch(queries, k=10, n_candidates=200),
        )

    @pytest.mark.parametrize("strategy", ["round_robin", "qd_merge"])
    def test_streams_path_matches_serial(self, data, queries, strategy):
        # Two tables: search_batch drains per-query candidate streams.
        parallel = build(
            data,
            n_tables=2,
            strategy=strategy,
            parallel=ParallelBatchExecutor(n_workers=4, min_batch_size=8),
        )
        serial = build(data, n_tables=2, strategy=strategy)
        assert_batches_equal(
            parallel.search_batch(queries, k=10, n_candidates=200),
            serial.search_batch(queries, k=10, n_candidates=200),
        )

    @pytest.mark.parametrize("n_tables", [1, 2])
    def test_reranked_batch_matches_serial(self, data, queries, n_tables):
        # Post stages (rerank + truncate) are per-row independent, so
        # sharding must stay bit-identical with a rerank in the plan.
        from repro.search import RerankSpec

        spec = RerankSpec(mode="exact", pool=40)
        parallel = build(
            data,
            n_tables=n_tables,
            parallel=ParallelBatchExecutor(n_workers=4, min_batch_size=8),
        )
        serial = build(data, n_tables=n_tables)
        assert_batches_equal(
            parallel.search_batch(
                queries, k=10, n_candidates=200, rerank=spec
            ),
            serial.search_batch(
                queries, k=10, n_candidates=200, rerank=spec
            ),
        )

    def test_batch_matches_per_query_search(self, data, queries):
        index = build(
            data,
            parallel=ParallelBatchExecutor(n_workers=4, min_batch_size=8),
        )
        batch = index.search_batch(queries, k=5, n_candidates=150)
        for query, got in zip(queries, batch):
            want = index.search(query, k=5, n_candidates=150)
            assert np.array_equal(got.ids, want.ids)
            assert np.array_equal(got.distances, want.distances)

    def test_below_threshold_batch_still_correct(self, data, queries):
        parallel = build(
            data,
            parallel=ParallelBatchExecutor(n_workers=4, min_batch_size=64),
        )
        serial = build(data)
        small = queries[:5]  # under min_batch_size: serial fallback
        assert_batches_equal(
            parallel.search_batch(small, k=5, n_candidates=100),
            serial.search_batch(small, k=5, n_candidates=100),
        )
