"""Tests for the Prometheus/JSON exporters (round-trip verified)."""

import json

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    snapshot_json,
    summary_rows,
    to_prometheus_text,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    queries = registry.counter("repro_queries_total", "Queries",
                               labels=("index",))
    queries.labels(index="hash").inc(5)
    queries.labels(index="mih").inc(2)
    registry.gauge("repro_up", "Liveness").set(1)
    hist = registry.histogram(
        "repro_query_stage_seconds", "Stage latency",
        labels=("index", "stage"), buckets=(0.001, 0.01, 0.1),
    )
    for value in (0.0005, 0.005, 0.05, 0.5):
        hist.labels(index="hash", stage="total").observe(value)
    return registry


class TestPrometheusText:
    def test_headers_and_samples(self):
        text = to_prometheus_text(populated_registry())
        assert "# HELP repro_queries_total Queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert '# TYPE repro_query_stage_seconds histogram' in text
        assert 'repro_queries_total{index="hash"} 5' in text
        assert "repro_up 1" in text

    def test_histogram_series_are_cumulative_with_inf(self):
        text = to_prometheus_text(populated_registry())
        assert (
            'repro_query_stage_seconds_bucket'
            '{index="hash",stage="total",le="0.001"} 1' in text
        )
        assert (
            'repro_query_stage_seconds_bucket'
            '{index="hash",stage="total",le="+Inf"} 4' in text
        )
        assert (
            'repro_query_stage_seconds_count'
            '{index="hash",stage="total"} 4' in text
        )

    def test_round_trip_preserves_every_sample(self):
        registry = populated_registry()
        parsed = parse_prometheus_text(to_prometheus_text(registry))
        assert parsed[("repro_queries_total", (("index", "hash"),))] == 5
        assert parsed[("repro_queries_total", (("index", "mih"),))] == 2
        assert parsed[("repro_up", ())] == 1
        key = (
            "repro_query_stage_seconds_bucket",
            (("index", "hash"), ("le", "+Inf"), ("stage", "total")),
        )
        assert parsed[key] == 4
        sum_key = (
            "repro_query_stage_seconds_sum",
            (("index", "hash"), ("stage", "total")),
        )
        assert parsed[sum_key] == 0.0005 + 0.005 + 0.05 + 0.5

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("q",)).labels(q='a"b\\c\nd').inc()
        parsed = parse_prometheus_text(to_prometheus_text(registry))
        assert parsed[("c", (("q", 'a"b\\c\nd'),))] == 1

    def test_malformed_line_raises(self):
        try:
            parse_prometheus_text("this is not exposition format")
        except ValueError as err:
            assert "unparseable" in str(err)
        else:
            raise AssertionError("expected ValueError")

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus_text("") == {}


class TestJsonSnapshot:
    def test_snapshot_json_parses_back(self):
        payload = json.loads(snapshot_json(populated_registry()))
        assert payload["schema"] == "repro.metrics/v1"
        names = {m["name"] for m in payload["metrics"]}
        assert "repro_queries_total" in names
        assert "repro_query_stage_seconds" in names


class TestSummaryRows:
    def test_rows_cover_populated_histograms_only(self):
        registry = populated_registry()
        # A histogram with no observations must not produce a row.
        registry.histogram("repro_empty_seconds", labels=("index",))
        rows = summary_rows(registry)
        assert len(rows) == 1
        metric, labels, count, mean, p50, p95 = rows[0]
        assert metric == "repro_query_stage_seconds"
        assert labels == "index=hash,stage=total"
        assert count == 4
        assert mean.endswith("ms") and p50.endswith("ms")
