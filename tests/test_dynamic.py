"""Tests for the dynamic hash table and dynamic index."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.hashing import ITQ
from repro.index.dynamic import DynamicHashTable
from repro.index.linear_scan import knn_linear_scan
from repro.search.dynamic_index import DynamicHashIndex


class TestDynamicHashTable:
    def test_add_and_get(self):
        table = DynamicHashTable(code_length=3)
        table.add(7, np.array([1, 0, 1], dtype=np.uint8))
        assert table.get(0b101).tolist() == [7]
        assert table.num_items == 1

    def test_add_by_signature(self):
        table = DynamicHashTable(code_length=4)
        table.add(1, 9)
        assert 9 in table

    def test_duplicate_id_rejected(self):
        table = DynamicHashTable(code_length=2)
        table.add(0, 1)
        with pytest.raises(KeyError):
            table.add(0, 2)

    def test_signature_range_checked(self):
        table = DynamicHashTable(code_length=2)
        with pytest.raises(ValueError):
            table.add(0, 4)

    def test_remove_tombstones(self):
        table = DynamicHashTable(code_length=2)
        table.add_batch(np.arange(4), np.array(
            [[0, 0], [0, 0], [0, 0], [1, 1]], dtype=np.uint8))
        table.remove(1)
        assert table.num_items == 3
        assert table.get(0).tolist() == [0, 2]

    def test_remove_absent_raises(self):
        table = DynamicHashTable(code_length=2)
        with pytest.raises(KeyError):
            table.remove(5)
        table.add(5, 0)
        table.remove(5)
        with pytest.raises(KeyError):
            table.remove(5)

    def test_lazy_compaction_frees_bucket(self):
        table = DynamicHashTable(code_length=2)
        table.add(0, 3)
        table.remove(0)
        assert len(table.get(3)) == 0
        assert 3 not in table
        # After compaction the id can be reused.
        table.add(0, 3)
        assert table.get(3).tolist() == [0]

    def test_signatures_skips_emptied_buckets(self):
        table = DynamicHashTable(code_length=2)
        table.add(0, 1)
        table.add(1, 2)
        table.remove(0)
        assert list(table.signatures()) == [2]

    def test_probers_work_on_dynamic_table(self):
        """Duck-typed interface: GQR probes a dynamic table directly."""
        table = DynamicHashTable(code_length=4)
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 2, size=(50, 4)).astype(np.uint8)
        table.add_batch(np.arange(50), codes)
        costs = np.abs(rng.standard_normal(4))
        buckets = list(GQR().probe(table, 0, costs))
        assert sorted(buckets) == list(range(16))

    def test_expected_population(self):
        table = DynamicHashTable(code_length=1)
        table.add_batch(np.arange(4), np.array(
            [[0], [0], [1], [1]], dtype=np.uint8))
        assert table.expected_population() == 2.0

    def test_misaligned_batch(self):
        table = DynamicHashTable(code_length=2)
        with pytest.raises(ValueError):
            table.add_batch(np.arange(3), np.zeros((2, 2), dtype=np.uint8))


@pytest.fixture(scope="module")
def stream_data():
    return gaussian_mixture(2000, 16, n_clusters=12, seed=9)


@pytest.fixture()
def dynamic_index(stream_data):
    hasher = ITQ(code_length=7, seed=0).fit(stream_data)
    return DynamicHashIndex(hasher, dim=16)


class TestDynamicHashIndex:
    def test_requires_fitted_hasher(self):
        with pytest.raises(ValueError):
            DynamicHashIndex(ITQ(code_length=4), dim=8)

    def test_add_assigns_sequential_ids(self, dynamic_index, stream_data):
        ids = dynamic_index.add(stream_data[:10])
        assert ids.tolist() == list(range(10))
        assert dynamic_index.num_items == 10

    def test_search_matches_static_ground_truth(self, dynamic_index, stream_data):
        dynamic_index.add(stream_data[:500])
        query = stream_data[3]
        result = dynamic_index.search(query, k=5, n_candidates=500)
        truth, _ = knn_linear_scan(query[None, :], stream_data[:500], 5)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))

    def test_removed_items_never_returned(self, dynamic_index, stream_data):
        ids = dynamic_index.add(stream_data[:100])
        query = stream_data[0]
        dynamic_index.remove(ids[:50])
        result = dynamic_index.search(query, k=10, n_candidates=100)
        assert not set(result.ids.tolist()) & set(ids[:50].tolist())

    def test_id_recycling(self, dynamic_index, stream_data):
        ids = dynamic_index.add(stream_data[:5])
        dynamic_index.remove(ids[2])
        new_id = dynamic_index.add(stream_data[5:6])
        assert new_id[0] == ids[2]  # recycled
        result = dynamic_index.search(stream_data[5], k=1, n_candidates=50)
        assert result.ids[0] == new_id[0]

    def test_dimension_validated(self, dynamic_index):
        with pytest.raises(ValueError):
            dynamic_index.add(np.zeros((1, 3)))

    def test_churn_consistency(self, dynamic_index, stream_data):
        """Interleaved adds/removes keep search exact over live items."""
        rng = np.random.default_rng(1)
        live = {}
        cursor = 0
        for _ in range(20):
            batch = stream_data[cursor : cursor + 30]
            cursor += 30
            for item_id, row in zip(dynamic_index.add(batch), batch):
                live[int(item_id)] = row
            if len(live) > 50:
                victims = rng.choice(list(live), size=10, replace=False)
                dynamic_index.remove(victims)
                for victim in victims:
                    del live[int(victim)]
        query = stream_data[0]
        result = dynamic_index.search(
            query, k=5, n_candidates=dynamic_index.num_items
        )
        live_ids = np.asarray(sorted(live), dtype=np.int64)
        live_rows = np.asarray([live[int(i)] for i in live_ids])
        dists = np.linalg.norm(live_rows - query, axis=1)
        expected = live_ids[np.lexsort((live_ids, dists))[:5]]
        assert np.array_equal(np.sort(result.ids), np.sort(expected))
