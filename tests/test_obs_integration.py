"""End-to-end telemetry tests: indexes → spans → registry → sampler.

The contract under test: telemetry never changes *results* (enabled vs
disabled searches are bit-identical), every index kind reports under
its own ``index`` label, the distributed layer reports per-shard and
coordinator series, and the engine's span-backed stage timings are the
single source both ``ExecutionContext`` stats and the registry
histograms read from.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.distributed.cluster import DistributedHashIndex
from repro.eval.latency import (
    measure_stage_latencies,
    stage_latencies_from_results,
)
from repro.hashing import ITQ
from repro.quantization.pq import ProductQuantizer
from repro.search.compact_index import CompactHashIndex
from repro.search.dynamic_index import DynamicHashIndex
from repro.search.searcher import HashIndex, IMISearchIndex, MIHSearchIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(2000, 16, n_clusters=12,
                            cluster_spread=1.0, seed=3)


@pytest.fixture(scope="module")
def queries(data):
    return data[:20]


@pytest.fixture(scope="module")
def hash_index(data):
    return HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())


def counter_value(registry, name, **labels):
    family = registry.get(name)
    assert family is not None, name
    return family.labels(**labels).value


class TestDisabledByDefault:
    def test_no_registry_without_enable(self, hash_index, queries):
        assert not obs.telemetry_enabled()
        assert obs.get_registry() is None
        result = hash_index.search(queries[0], k=5, n_candidates=100)
        assert result.stats.total_seconds > 0
        assert result.extras["spans"].name == "query"

    def test_session_restores_previous_state(self):
        outer = obs.enable_telemetry()
        try:
            with obs.telemetry_session() as inner:
                assert obs.get_registry() is inner.registry
                assert inner.registry is not outer.registry
            assert obs.get_registry() is outer.registry
        finally:
            obs.disable_telemetry()
        assert not obs.telemetry_enabled()


class TestBitIdenticalResults:
    def test_single_query_path(self, hash_index, queries):
        baseline = [
            hash_index.search(q, k=5, n_candidates=100) for q in queries
        ]
        sampler = obs.TraceSampler(every_n=2, seed=0)
        with obs.telemetry_session(sampler=sampler):
            telemetered = [
                hash_index.search(q, k=5, n_candidates=100) for q in queries
            ]
        for base, tele in zip(baseline, telemetered):
            np.testing.assert_array_equal(base.ids, tele.ids)
            np.testing.assert_array_equal(base.distances, tele.distances)
            assert base.n_candidates == tele.n_candidates
            assert base.n_buckets_probed == tele.n_buckets_probed

    def test_batch_path(self, hash_index, queries):
        baseline = hash_index.search_batch(queries, k=5, n_candidates=100)
        with obs.telemetry_session():
            telemetered = hash_index.search_batch(
                queries, k=5, n_candidates=100
            )
        for base, tele in zip(baseline, telemetered):
            np.testing.assert_array_equal(base.ids, tele.ids)
            np.testing.assert_array_equal(base.distances, tele.distances)

    def test_early_stop_path(self, data, queries):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        baseline = index.search_early_stop(queries[0], k=5)
        with obs.telemetry_session():
            telemetered = index.search_early_stop(queries[0], k=5)
        np.testing.assert_array_equal(baseline.ids, telemetered.ids)
        np.testing.assert_array_equal(
            baseline.distances, telemetered.distances
        )

    def test_distributed_path(self, data, queries):
        hasher = ITQ(code_length=8, seed=0).fit(data)
        cluster = DistributedHashIndex(hasher, data, num_workers=3)
        baseline = cluster.search(queries[0], k=5, n_candidates=120)
        with obs.telemetry_session():
            telemetered = cluster.search(queries[0], k=5, n_candidates=120)
        np.testing.assert_array_equal(baseline.ids, telemetered.ids)
        np.testing.assert_array_equal(
            baseline.distances, telemetered.distances
        )


class TestPerIndexLabels:
    def test_every_index_kind_reports_its_label(self, data, queries):
        probe = ITQ(code_length=8, seed=0).fit(data)
        long = ITQ(code_length=16, seed=1).fit(data)
        pq = ProductQuantizer(2, n_centroids=8, seed=0).fit(data)
        dynamic = DynamicHashIndex(probe, dim=data.shape[1])
        dynamic.add(data[:500])
        indexes = {
            "hash": HashIndex(probe, data, prober=GQR()),
            "mih": MIHSearchIndex(ITQ(code_length=8, seed=0), data),
            "imi": IMISearchIndex(pq, data),
            "compact": CompactHashIndex(probe, long, data),
            "dynamic": dynamic,
        }
        with obs.telemetry_session() as telemetry:
            for index in indexes.values():
                index.search(queries[0], k=5, n_candidates=100)
            for label in indexes:
                assert counter_value(
                    telemetry.registry, "repro_queries_total", index=label
                ) == 1, label
                assert telemetry.registry.get(
                    "repro_query_stage_seconds"
                ).labels(index=label, stage="total").count == 1

    def test_batch_queries_counted_per_query(self, hash_index, queries):
        with obs.telemetry_session() as telemetry:
            hash_index.search_batch(queries, k=5, n_candidates=100)
            assert counter_value(
                telemetry.registry, "repro_queries_total", index="hash"
            ) == len(queries)

    def test_early_stop_counter(self, data, queries):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        with obs.telemetry_session() as telemetry:
            result = index.search_early_stop(queries[0], k=5)
            expected = 1.0 if result.stats.early_stop_triggered else 0.0
            assert counter_value(
                telemetry.registry, "repro_early_stops_total", index="hash"
            ) == expected


class TestDistributedTelemetry:
    def test_shard_and_coordinator_series(self, data, queries):
        hasher = ITQ(code_length=8, seed=0).fit(data)
        cluster = DistributedHashIndex(hasher, data, num_workers=3)
        with obs.telemetry_session() as telemetry:
            result = cluster.search(queries[0], k=5, n_candidates=120)
            registry = telemetry.registry
            for worker_id in range(3):
                assert counter_value(
                    registry, "repro_shard_queries_total", worker=worker_id
                ) == 1
                assert registry.get("repro_shard_seconds").labels(
                    worker=worker_id
                ).count == 1
            assert registry.get("repro_distributed_queries_total").value == 1
            workers_hist = registry.get(
                "repro_distributed_workers_contacted"
            ).labels()
            assert workers_hist.count == 1 and workers_hist.sum == 3
            for stage in ("fanout", "merge"):
                assert registry.get(
                    "repro_distributed_stage_seconds"
                ).labels(stage=stage).count == 1
            # Shard engines report under the "shard" index label, not
            # under any top-level index's.
            assert counter_value(
                registry, "repro_queries_total", index="shard"
            ) == 3
        assert result.extras["fanout_seconds"] > 0
        assert result.extras["merge_seconds"] >= 0
        assert result.extras["fanout_seconds"] >= max(
            result.extras["worker_seconds"]
        )


class TestSamplerIntegration:
    def test_sampled_traces_carry_spans_stats_and_buckets(
        self, hash_index, queries
    ):
        sampler = obs.TraceSampler(every_n=4, capacity=8, seed=1)
        with obs.telemetry_session(sampler=sampler) as telemetry:
            for q in queries:
                hash_index.search(q, k=5, n_candidates=100)
            assert telemetry.registry.get(
                "repro_sampled_traces_total"
            ).value == len(sampler.traces())
        assert len(sampler.traces()) == len(queries) // 4
        for trace in sampler.traces():
            assert trace.spans["name"] == "query"
            stages = [c["name"] for c in trace.spans["children"]]
            assert stages == [
                "retrieve", "dedup_budget", "evaluate", "truncate"
            ]
            assert trace.stats["n_candidates"] >= 100
            # Per-bucket sizes are recorded only for sampled queries
            # and sum to the candidate count.
            assert sum(trace.bucket_sizes) == trace.stats["n_candidates"]

    def test_sampling_is_deterministic_across_runs(self, hash_index, queries):
        def run():
            sampler = obs.TraceSampler(every_n=4, seed=9)
            with obs.telemetry_session(sampler=sampler):
                for q in queries:
                    hash_index.search(q, k=5, n_candidates=100)
            return [t.seq for t in sampler.traces()]

        assert run() == run()

    def test_unsampled_queries_skip_bucket_recording(
        self, hash_index, queries
    ):
        with obs.telemetry_session():
            result = hash_index.search(queries[0], k=5, n_candidates=100)
        assert result.stats.bucket_sizes is None


class TestStageTimingSingleSource:
    def test_harness_and_registry_read_the_same_numbers(
        self, hash_index, queries
    ):
        with obs.telemetry_session() as telemetry:
            stages = measure_stage_latencies(
                hash_index, queries, k=5, n_candidates=100
            )
            hist = telemetry.registry.get("repro_query_stage_seconds")
            for stage in ("retrieval", "evaluation", "total"):
                child = hist.labels(index="hash", stage=stage)
                assert child.count == len(queries)
                assert child.sum == pytest.approx(float(stages[stage].sum()))

    def test_stats_match_span_tree(self, hash_index, queries):
        result = hash_index.search(queries[0], k=5, n_candidates=100)
        root = result.extras["spans"]
        stats = result.stats
        assert stats.total_seconds == root.duration
        assert stats.retrieval_seconds == root.child_duration(
            "retrieve"
        ) + root.child_duration("dedup_budget")
        assert stats.evaluation_seconds == root.child_duration("evaluate")

    def test_batch_results_feed_stage_report(self, hash_index, queries):
        results = hash_index.search_batch(queries, k=5, n_candidates=100)
        stages = stage_latencies_from_results(results)
        assert len(stages["total"]) == len(queries)
        assert (stages["total"] > 0).all()
        np.testing.assert_allclose(
            stages["total"], stages["retrieval"] + stages["evaluation"]
        )
