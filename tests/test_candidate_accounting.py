"""Regression: candidates retrieved from several tables count once.

Multi-table retrieval can yield the same item id from more than one
table (or, for probers with overlapping probe sequences, more than one
bucket).  The drain must both deduplicate the gathered ids and count
them deduplicated — double counting inflated ``n_candidates`` (the
reported evaluation cost) and burned the candidate budget on items
already gathered, so the engine stopped before collecting the distinct
candidates the plan asked for.
"""

import numpy as np

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.hashing import ITQ
from repro.search import HashIndex
from repro.search.engine import (
    CandidatePipeline,
    ExecutionContext,
    QueryPlan,
)


class TestDrainDeduplication:
    def test_duplicates_across_buckets_counted_once(self):
        stream = iter(
            np.asarray(bucket, dtype=np.int64)
            for bucket in ([1, 3, 7], [3, 5], [2, 9], [7, 11])
        )
        ctx = ExecutionContext()
        ids = CandidatePipeline.drain(
            stream, QueryPlan(k=1, n_candidates=8), ctx
        )
        assert sorted(ids.tolist()) == [1, 2, 3, 5, 7, 9, 11]
        assert ctx.n_candidates == 7  # pre-fix: 9 (duplicates double-counted)

    def test_budget_buys_distinct_candidates(self):
        # Every bucket repeats id 0; the budget of 4 distinct candidates
        # must keep draining past the duplicates until it is met.
        stream = iter(
            np.asarray(bucket, dtype=np.int64)
            for bucket in ([0, 1], [0, 2], [0, 3], [0, 4])
        )
        ctx = ExecutionContext()
        ids = CandidatePipeline.drain(
            stream, QueryPlan(k=1, n_candidates=4), ctx
        )
        assert sorted(ids.tolist()) == [0, 1, 2, 3]
        assert ctx.n_candidates == 4

    def test_within_bucket_duplicates_collapse(self):
        stream = iter([np.array([5, 5, 5, 8], dtype=np.int64)])
        ctx = ExecutionContext()
        ids = CandidatePipeline.drain(
            stream, QueryPlan(k=1, n_candidates=10), ctx
        )
        assert sorted(ids.tolist()) == [5, 8]
        assert ctx.n_candidates == 2


class TestTwoTableFixture:
    """Hand-built worst case: two *identical* tables.

    Every bucket is yielded by both tables, so round-robin retrieval
    sees each candidate exactly twice.  With a budget of the full
    dataset the engine must still reach every item — double counting
    would exhaust the budget halfway through and miss true neighbours.
    """

    def build(self, data):
        hashers = [ITQ(code_length=6, seed=0), ITQ(code_length=6, seed=0)]
        return HashIndex(hashers, data, prober=GQR())

    def test_counts_pinned_to_distinct_items(self):
        data = gaussian_mixture(200, 8, n_clusters=4, seed=9)
        index = self.build(data)
        result = index.search(data[0], k=5, n_candidates=len(data))
        assert result.n_candidates == len(data)

    def test_full_budget_recovers_exact_neighbours(self):
        data = gaussian_mixture(200, 8, n_clusters=4, seed=9)
        index = self.build(data)
        for query in data[:5]:
            result = index.search(query, k=5, n_candidates=len(data))
            exact = np.lexsort(
                (np.arange(len(data)),
                 np.linalg.norm(data - query, axis=1))
            )[:5]
            assert np.array_equal(result.ids, exact)
