"""Bit-identity of the staged pipeline for rerank-free plans.

The tentpole refactor decomposed ``QueryEngine.execute`` into typed
stages (Retrieve → DedupBudget → Evaluate → Truncate for plain plans).
Its contract: for any plan without rerank/fusion, every index type
returns *bit-identical* results to the classic inline loop.  The
reference here re-implements that loop — drain the candidate stream
with interleaved dedup/budget accounting, score once with the engine's
own evaluator, cut to k — without touching any stage machinery, and
hypothesis drives (k, budget, query) across all six index front-ends
plus the distributed coordinator.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import gaussian_mixture, sample_queries
from repro.distributed.cluster import DistributedHashIndex, _split_budget
from repro.hashing import ITQ
from repro.index.qalsh import QALSH
from repro.quantization.pq import ProductQuantizer
from repro.search import (
    CompactHashIndex,
    DynamicHashIndex,
    HashIndex,
    IMISearchIndex,
    MIHSearchIndex,
    StreamSearchIndex,
)

DATA = gaussian_mixture(600, 16, n_clusters=8, seed=11)
QUERIES = sample_queries(DATA, 16, seed=12)


def _build_hash():
    return HashIndex(ITQ(code_length=8, seed=0), DATA)


def _build_mih():
    return MIHSearchIndex(ITQ(code_length=8, seed=0), DATA, num_blocks=2)


def _build_imi():
    coarse = ProductQuantizer(n_subspaces=2, n_centroids=8, seed=0).fit(DATA)
    return IMISearchIndex(coarse, DATA)


def _build_compact():
    probe = ITQ(code_length=6, seed=0).fit(DATA)
    rerank = ITQ(code_length=12, seed=1).fit(DATA)
    return CompactHashIndex(probe, rerank, DATA)


def _build_dynamic():
    hasher = ITQ(code_length=8, seed=0).fit(DATA)
    index = DynamicHashIndex(hasher, DATA.shape[1])
    index.add(DATA)
    return index


def _build_stream():
    return StreamSearchIndex(QALSH(DATA, n_projections=12, seed=0), DATA)


BUILDERS = {
    "hash": _build_hash,
    "mih": _build_mih,
    "imi": _build_imi,
    "compact": _build_compact,
    "dynamic": _build_dynamic,
    "stream": _build_stream,
}

_INDEXES: dict[str, object] = {}


def get_index(name: str):
    if name not in _INDEXES:
        _INDEXES[name] = BUILDERS[name]()
    return _INDEXES[name]


def reference_search(index, query, k, budget):
    """The classic inline loop, stage-machinery-free.

    Same accounting as the seed engine: dedup within and across
    buckets, spend the budget on distinct ids, take the final bucket
    whole, then one evaluator call and a cut to k.
    """
    seen: set[int] = set()
    found: list[np.ndarray] = []
    total = 0
    for ids in index.candidate_stream(query):
        fresh = [i for i in dict.fromkeys(ids.tolist()) if i not in seen]
        if len(fresh) != len(ids):
            ids = np.asarray(fresh, dtype=np.int64)
        seen.update(fresh)
        found.append(ids)
        total += len(ids)
        if total >= budget:
            break
    if found:
        candidates = np.concatenate(found)
    else:
        candidates = np.empty(0, dtype=np.int64)
    ids, scores = index.engine.evaluator.evaluate(query, candidates, k)
    return ids, scores, total


@pytest.mark.parametrize("name", sorted(BUILDERS))
class TestStagedMatchesInlineReference:
    @given(
        k=st.integers(1, 30),
        budget=st.integers(1, 400),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_search_bit_identical(self, name, k, budget, query_index):
        index = get_index(name)
        query = QUERIES[query_index]
        result = index.search(query, k=k, n_candidates=budget)
        want_ids, want_scores, want_total = reference_search(
            index, query, k, budget
        )
        np.testing.assert_array_equal(result.ids, want_ids)
        np.testing.assert_array_equal(result.distances, want_scores)
        assert result.n_candidates == want_total

    def test_stage_timing_totals_are_consistent(self, name):
        index = get_index(name)
        result = index.search(QUERIES[0], k=5, n_candidates=100)
        stats = result.stats
        assert set(stats.stage_seconds) == {
            "retrieve", "dedup_budget", "evaluate", "truncate"
        }
        assert stats.retrieval_seconds == pytest.approx(
            stats.stage_seconds["retrieve"]
            + stats.stage_seconds["dedup_budget"]
        )
        assert stats.evaluation_seconds == pytest.approx(
            stats.stage_seconds["evaluate"]
        )


class TestBatchMatchesSerial:
    """The batched fast paths skip stage objects entirely for plain
    plans; rerank plans apply post stages per row.  Both must match the
    single-query pipeline bit-for-bit."""

    def test_plain_batch_matches_singles(self):
        index = get_index("hash")
        results = index.search_batch(QUERIES, k=10, n_candidates=120)
        for query, batched in zip(QUERIES, results):
            single = index.search(query, k=10, n_candidates=120)
            np.testing.assert_array_equal(batched.ids, single.ids)
            np.testing.assert_array_equal(
                batched.distances, single.distances
            )

    def test_reranked_batch_matches_singles(self):
        from repro.search import RerankSpec

        index = get_index("hash")
        spec = RerankSpec(mode="exact", pool=40)
        results = index.search_batch(
            QUERIES, k=10, n_candidates=120, rerank=spec
        )
        for query, batched in zip(QUERIES, results):
            single = index.search(
                query, k=10, n_candidates=120, rerank=spec
            )
            np.testing.assert_array_equal(batched.ids, single.ids)
            np.testing.assert_array_equal(
                batched.distances, single.distances
            )


class TestDistributedCoordinator:
    """Rerank-free coordinator results match an inline scatter-gather
    reference (per-partition sub-search + sorted merge, no stages)."""

    @pytest.fixture(scope="class")
    def dist(self):
        hasher = ITQ(code_length=8, seed=0).fit(DATA)
        return DistributedHashIndex(hasher, DATA, num_workers=3, seed=0)

    @given(
        k=st.integers(1, 20),
        budget=st.integers(3, 300),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_rerank_free_matches_reference(
        self, dist, k, budget, query_index
    ):
        query = QUERIES[query_index]
        result = dist.search(query, k=k, n_candidates=budget)
        probe_info = dist._hasher.probe_info(query)
        merged = []
        budgets = _split_budget(budget, dist.num_partitions)
        for worker, sub_budget in zip(dist.workers, budgets):
            partial = worker.search_local(query, k, sub_budget, probe_info)
            merged.extend(
                (float(d), int(i))
                for d, i in zip(partial.distances, partial.ids)
            )
        merged.sort()
        del merged[k:]
        np.testing.assert_array_equal(
            result.ids, np.asarray([i for _, i in merged], dtype=np.int64)
        )
        np.testing.assert_array_equal(
            result.distances,
            np.asarray([d for d, _ in merged], dtype=np.float64),
        )

    def test_post_merge_rerank_rescores_the_merged_pool(self, dist):
        from repro.search import ExactEvaluator, RerankSpec

        query = QUERIES[0]
        k, budget = 10, 150
        probe_info = dist._hasher.probe_info(query)
        merged = []
        budgets = _split_budget(budget, dist.num_partitions)
        for worker, sub_budget in zip(dist.workers, budgets):
            partial = worker.search_local(query, k, sub_budget, probe_info)
            merged.extend(
                (float(d), int(i))
                for d, i in zip(partial.distances, partial.ids)
            )
        merged.sort()
        pool = np.asarray([i for _, i in merged], dtype=np.int64)
        exact = ExactEvaluator(DATA, "euclidean")
        want_ids, want_dists = exact.evaluate(query, pool, k)
        result = dist.search(
            query, k=k, n_candidates=budget, rerank=RerankSpec()
        )
        assert result.extras["reranked"] is True
        np.testing.assert_array_equal(result.ids, want_ids)
        np.testing.assert_array_equal(result.distances, want_dists)

    def test_non_exact_rerank_rejected(self, dist):
        from repro.search import RerankSpec

        with pytest.raises(ValueError, match="exact"):
            dist.search(
                QUERIES[0], k=5, n_candidates=60,
                rerank=RerankSpec(mode="adc"),
            )

    def test_shard_cache_shared_between_plain_and_reranked(self):
        from repro.search import QueryResultCache, RerankSpec

        hasher = ITQ(code_length=8, seed=0).fit(DATA)
        dist = DistributedHashIndex(
            hasher, DATA, num_workers=3, seed=0,
            shard_cache=QueryResultCache(capacity=64, name="shard"),
        )
        query = QUERIES[0]
        plain = dist.search(query, k=10, n_candidates=150)
        reranked = dist.search(
            query, k=10, n_candidates=150, rerank=RerankSpec()
        )
        # The sub-plans are rerank-agnostic, so the reranked query hits
        # every per-partition entry the plain query stored.
        assert reranked.extras["shard_cache_hits"] == dist.num_partitions
        assert plain.extras["shard_cache_hits"] == 0
