"""Tests for Hamming ranking (HR) and generate-to-probe HR (GHR)."""

import numpy as np
import pytest

from repro.index.codes import hamming_distance
from repro.index.hash_table import HashTable
from repro.probing.ghr import GenerateHammingRanking, hamming_ring_signatures
from repro.probing.hamming_ranking import HammingRanking


@pytest.fixture()
def probe_inputs(fitted_itq, small_data):
    query = small_data[31]
    signature, costs = fitted_itq.probe_info(query)
    return signature, costs


class TestHammingRingSignatures:
    def test_ring_zero_is_query(self):
        assert list(hamming_ring_signatures(0b101, 3, 0)) == [0b101]

    def test_ring_sizes_are_binomial(self):
        import math

        for r in range(6):
            ring = list(hamming_ring_signatures(0, 5, r))
            assert len(ring) == math.comb(5, r)

    def test_ring_members_at_exact_distance(self):
        query = 0b10110
        for r in range(6):
            for sig in hamming_ring_signatures(query, 5, r):
                assert hamming_distance(query, sig) == r


class TestHammingRanking:
    def test_probes_every_occupied_bucket_once(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        order = list(HammingRanking().probe(small_table, signature, costs))
        assert sorted(order) == sorted(small_table.signatures())

    def test_order_non_decreasing_hamming(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        order = np.asarray(
            list(HammingRanking().probe(small_table, signature, costs))
        )
        dists = hamming_distance(order, np.int64(signature))
        assert (np.diff(dists) >= 0).all()

    def test_ignores_flip_costs(self, small_table, probe_inputs):
        signature, _ = probe_inputs
        a = list(HammingRanking().probe(small_table, signature, np.zeros(8)))
        b = list(HammingRanking().probe(small_table, signature, np.ones(8)))
        assert a == b

    def test_empty_table(self, probe_inputs):
        signature, costs = probe_inputs
        table = HashTable(np.empty((0, 8), dtype=np.uint8))
        assert list(HammingRanking().probe(table, signature, costs)) == []


class TestGenerateHammingRanking:
    def test_enumerates_code_space_once(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        buckets = list(
            GenerateHammingRanking().probe(small_table, signature, costs)
        )
        assert sorted(buckets) == list(range(1 << 8))

    def test_rings_in_order(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        dists = [
            hamming_distance(signature, b)
            for b in GenerateHammingRanking().probe(small_table, signature, costs)
        ]
        assert dists == sorted(dists)

    def test_scored_variant(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        for bucket, radius in GenerateHammingRanking().probe_scored(
            small_table, signature, costs
        ):
            assert hamming_distance(signature, bucket) == radius
            if radius > 2:
                break

    def test_same_occupied_set_as_hr(self, small_table, probe_inputs):
        """GHR visits the same occupied buckets HR sorts — ring by ring."""
        signature, costs = probe_inputs
        hr = list(HammingRanking().probe(small_table, signature, costs))
        ghr = [
            b
            for b in GenerateHammingRanking().probe(small_table, signature, costs)
            if b in small_table
        ]
        assert sorted(hr) == sorted(ghr)
        hr_d = [hamming_distance(signature, b) for b in hr]
        ghr_d = [hamming_distance(signature, b) for b in ghr]
        assert hr_d == ghr_d
