"""Tests for the alternative stopping criteria of HashIndex.search."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.hashing import ITQ
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def index():
    data = gaussian_mixture(1500, 16, n_clusters=10,
                            cluster_spread=1.0, seed=111)
    return HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())


@pytest.fixture(scope="module")
def query(index):
    return index.data[0]


class TestStoppingCriteria:
    def test_requires_some_criterion(self, index, query):
        with pytest.raises(ValueError):
            index.search(query, k=5)

    def test_candidate_budget(self, index, query):
        result = index.search(query, k=5, n_candidates=100)
        assert result.n_candidates >= 100

    def test_max_buckets(self, index, query):
        result = index.search(query, k=5, max_buckets=3)
        assert result.n_buckets_probed <= 3

    def test_time_budget_stops(self, index, query):
        """A zero time budget allows only the first bucket."""
        result = index.search(query, k=5, time_budget=0.0)
        assert result.n_buckets_probed == 1

    def test_first_criterion_hit_wins(self, index, query):
        by_items = index.search(query, k=5, n_candidates=50, max_buckets=1000)
        by_buckets = index.search(query, k=5, n_candidates=10**9, max_buckets=2)
        assert by_items.n_candidates >= 50
        assert by_buckets.n_buckets_probed <= 2

    def test_keyword_only_usage_matches_positional(self, index, query):
        a = index.search(query, 5, 200)
        b = index.search(query, k=5, n_candidates=200)
        assert np.array_equal(a.ids, b.ids)

    def test_max_buckets_results_still_sorted(self, index, query):
        result = index.search(query, k=10, max_buckets=5)
        assert (np.diff(result.distances) >= 0).all()
