"""Tests for the ASCII curve plotter."""

from repro.eval.harness import CurvePoint
from repro.eval.plotting import ascii_plot, plot_recall_time


class TestAsciiPlot:
    def test_empty_series(self):
        assert ascii_plot({}) == "(no data)"

    def test_markers_and_legend(self):
        out = ascii_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "* a" in out and "o b" in out
        assert "*" in out.splitlines()[0] + out.splitlines()[-3]

    def test_constant_series_no_crash(self):
        out = ascii_plot({"flat": [(1, 0.5), (2, 0.5)]})
        assert "flat" in out

    def test_dimensions(self):
        out = ascii_plot({"a": [(0, 0), (1, 1)]}, width=30, height=8)
        grid_lines = [
            line for line in out.splitlines() if "│" in line or "┤" in line
        ]
        assert len(grid_lines) == 8

    def test_log_x_notes_scale(self):
        out = ascii_plot({"a": [(0.01, 0), (10, 1)]}, logx=True)
        assert "(log x)" in out


class TestPlotRecallTime:
    def test_renders_curves(self):
        curves = {
            "GQR": [CurvePoint(10, 0.01, 0.5, 0, 0),
                    CurvePoint(100, 0.1, 1.0, 0, 0)],
        }
        out = plot_recall_time(curves)
        assert "recall" in out and "seconds" in out and "GQR" in out
