"""Sans-io front-door core: admission, scheduling, shedding decisions.

Everything here drives :class:`FrontDoorCore` with hand-picked virtual
timestamps — no event loop, no threads, no sleeps — because the core is
deliberately sans-io: the same decisions the asyncio front door and the
traffic simulator execute are pinned deterministically.
"""

import numpy as np
import pytest

from repro.search.engine import QueryPlan
from repro.search.results import SearchResult
from repro.serving import (
    REASON_DEADLINE_EXPIRED,
    REASON_DEADLINE_INFEASIBLE,
    REASON_EXECUTION_ERROR,
    REASON_INVALID_QUERY,
    REASON_QUEUE_FULL,
    REASON_SHED,
    REASON_SHUTDOWN,
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_SERVED_DEGRADED,
    FrontDoorConfig,
    FrontDoorCore,
    LaneConfig,
    OverloadConfig,
    OverloadController,
    ServedResponse,
    SLOTarget,
    coalescible,
    default_config,
)

QUERY = np.zeros(8)
PLAN = QueryPlan(k=5, n_candidates=64)


def two_lane_config(**overrides):
    """A small, fast two-lane config for decision tests."""
    defaults = dict(
        lanes=(
            LaneConfig(name="interactive", weight=4, max_depth=4,
                       deadline_seconds=1.0, coalesce_seconds=0.002),
            LaneConfig(name="batch", weight=1, max_depth=8,
                       deadline_seconds=10.0, coalesce_seconds=0.002),
        ),
        max_batch=32,
    )
    defaults.update(overrides)
    return FrontDoorConfig(**defaults)


def fake_results(batch):
    """Aligned placeholder results for a batch under test."""
    return [
        SearchResult(ids=np.arange(3, dtype=np.int64),
                     distances=np.zeros(3))
        for _ in batch.tickets
    ]


class TestConfigValidation:
    def test_slo_target_ordering_enforced(self):
        with pytest.raises(ValueError, match="p50"):
            SLOTarget(0.05, 0.02, 0.08)
        with pytest.raises(ValueError, match="p50"):
            SLOTarget(0.0, 0.02, 0.08)

    def test_slo_target_as_dict_milliseconds(self):
        assert SLOTarget(0.02, 0.05, 0.08).as_dict() == {
            "p50_ms": 20.0, "p99_ms": 50.0, "p999_ms": 80.0,
        }

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "x", "weight": 0},
        {"name": "x", "max_depth": 0},
        {"name": "x", "deadline_seconds": 0.0},
        {"name": "x", "coalesce_seconds": -1.0},
    ])
    def test_lane_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            LaneConfig(**kwargs)

    def test_overload_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="shed_delay"):
            OverloadConfig(degrade_delay_seconds=0.04,
                           shed_delay_seconds=0.04)
        with pytest.raises(ValueError, match="recover_ratio"):
            OverloadConfig(recover_ratio=1.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            OverloadConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="max_level"):
            OverloadConfig(max_level=0)

    def test_entry_threshold_ladder(self):
        config = OverloadConfig(degrade_delay_seconds=0.01,
                                shed_delay_seconds=0.05, max_level=2)
        assert config.entry_threshold(1) == pytest.approx(0.01)
        assert config.entry_threshold(2) == pytest.approx(0.02)
        assert config.entry_threshold(3) == pytest.approx(0.05)  # shed
        with pytest.raises(ValueError):
            config.entry_threshold(0)
        with pytest.raises(ValueError):
            config.entry_threshold(4)

    def test_front_door_config_rejects_duplicate_lanes(self):
        lane = LaneConfig(name="interactive")
        with pytest.raises(ValueError, match="duplicate"):
            FrontDoorConfig(lanes=(lane, lane))

    def test_lane_lookup(self):
        config = default_config()
        assert config.lane("interactive").weight == 4
        assert config.lane("batch").weight == 1
        with pytest.raises(KeyError, match="nope"):
            config.lane("nope")


class TestCoalescible:
    def test_candidate_budget_only_coalesces(self):
        assert coalescible(QueryPlan(k=5, n_candidates=64))

    def test_bucket_or_time_budgets_do_not(self):
        assert not coalescible(QueryPlan(k=5, max_buckets=10))
        assert not coalescible(QueryPlan(k=5, time_budget=1.0))
        assert not coalescible(
            QueryPlan(k=5, n_candidates=64, max_buckets=10)
        )


class TestServedResponseContract:
    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="status"):
            ServedResponse(status="lost", lane="interactive", seq=1)

    def test_rejection_needs_known_reason(self):
        with pytest.raises(ValueError, match="reason"):
            ServedResponse(status=STATUS_REJECTED, lane="interactive",
                           seq=1, reason="because")

    def test_served_needs_result(self):
        with pytest.raises(ValueError, match="result"):
            ServedResponse(status=STATUS_SERVED, lane="interactive", seq=1)


class TestAdmission:
    def test_admit_queues_a_ticket(self):
        core = FrontDoorCore(two_lane_config())
        ticket, rejection = core.admit("interactive", QUERY, PLAN, now=1.0)
        assert rejection is None
        assert ticket.lane == "interactive"
        assert ticket.enqueue_time == 1.0
        assert ticket.deadline == pytest.approx(2.0)  # lane default 1.0s
        assert core.depth("interactive") == 1
        assert core.stats["admitted"]["interactive"] == 1

    def test_explicit_deadline_overrides_lane_default(self):
        core = FrontDoorCore(two_lane_config())
        ticket, _ = core.admit(
            "interactive", QUERY, PLAN, now=1.0, deadline_seconds=0.25
        )
        assert ticket.deadline == pytest.approx(1.25)

    def test_queue_full_rejects_with_reason(self):
        core = FrontDoorCore(two_lane_config())
        for _ in range(4):  # interactive max_depth is 4
            ticket, rejection = core.admit("interactive", QUERY, PLAN, 0.0)
            assert rejection is None
        ticket, rejection = core.admit("interactive", QUERY, PLAN, 0.0)
        assert ticket is None
        assert rejection.status == STATUS_REJECTED
        assert rejection.reason == REASON_QUEUE_FULL
        assert not rejection.served
        assert core.stats["rejected"]["interactive"][REASON_QUEUE_FULL] == 1

    def test_lanes_have_independent_budgets(self):
        core = FrontDoorCore(two_lane_config())
        for _ in range(4):
            core.admit("interactive", QUERY, PLAN, 0.0)
        ticket, rejection = core.admit("batch", QUERY, PLAN, 0.0)
        assert rejection is None and ticket.lane == "batch"

    def test_unknown_lane_is_a_caller_bug(self):
        core = FrontDoorCore(two_lane_config())
        with pytest.raises(KeyError):
            core.admit("express", QUERY, PLAN, 0.0)

    def test_reject_invalid(self):
        core = FrontDoorCore(two_lane_config())
        response = core.reject_invalid("interactive", "bad shape")
        assert response.reason == REASON_INVALID_QUERY
        assert response.detail == "bad shape"
        assert core.stats["offered"]["interactive"] == 1


class TestExpiry:
    def test_overdue_tickets_expire_on_poll(self):
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=0.01)
        expired, batch, _ = core.poll(now=0.02)
        assert batch is None
        (ticket, response), = expired
        assert response.reason == REASON_DEADLINE_EXPIRED
        assert not response.deadline_met
        assert core.depth("interactive") == 0

    def test_future_deadlines_survive(self):
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=0.01)
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=5.0)
        expired, batch, _ = core.poll(now=0.02)
        assert len(expired) == 1
        # The survivor's coalesce window has elapsed, so the same poll
        # dispatches it rather than leaving it queued.
        assert batch is not None and len(batch) == 1


class TestCoalescing:
    def test_same_plan_tickets_share_one_batch(self):
        core = FrontDoorCore(two_lane_config())
        for _ in range(3):
            core.admit("interactive", QUERY, PLAN, now=0.0)
        _, batch, _ = core.poll(now=0.01)  # coalesce window elapsed
        assert batch is not None
        assert len(batch) == 3
        assert batch.plan == PLAN
        assert batch.queries.shape == (3, 8)
        assert core.depth("interactive") == 0

    def test_wake_at_exact_coalesce_instant_dispatches(self):
        # Regression: _ready and _next_wake must share the same float
        # arithmetic, or polling exactly at the returned wake time can
        # find no lane ready and livelock a time-stepped driver.
        core = FrontDoorCore(two_lane_config())
        enqueue = 0.10750201867794001
        core.admit("batch", QUERY, PLAN, now=enqueue)
        _, batch, wake = core.poll(now=enqueue)
        assert batch is None
        _, batch, _ = core.poll(now=wake)
        assert batch is not None

    def test_plan_mismatch_splits_batches(self):
        other = QueryPlan(k=5, n_candidates=128)
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=0.0)
        core.admit("interactive", QUERY, other, now=0.0)
        core.admit("interactive", QUERY, PLAN, now=0.0)
        _, first, _ = core.poll(now=0.01)
        assert first.plan == PLAN and len(first) == 2
        _, second, _ = core.poll(now=0.01)
        assert second.plan == other and len(second) == 1

    def test_non_coalescible_plans_dispatch_alone(self):
        bucket_plan = QueryPlan(k=5, max_buckets=10)
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, bucket_plan, now=0.0)
        core.admit("interactive", QUERY, bucket_plan, now=0.0)
        _, batch, _ = core.poll(now=0.01)
        assert len(batch) == 1
        _, batch, _ = core.poll(now=0.01)
        assert len(batch) == 1

    def test_max_batch_caps_one_dispatch(self):
        core = FrontDoorCore(two_lane_config(max_batch=2))
        for _ in range(5):
            core.admit("batch", QUERY, PLAN, now=0.0)
        _, batch, _ = core.poll(now=0.01)
        assert len(batch) == 2
        assert core.depth("batch") == 3

    def test_full_batch_dispatches_before_window_closes(self):
        core = FrontDoorCore(two_lane_config(max_batch=2))
        core.admit("batch", QUERY, PLAN, now=0.0)
        core.admit("batch", QUERY, PLAN, now=0.0)
        _, batch, _ = core.poll(now=0.0)  # window not elapsed, but full
        assert batch is not None and len(batch) == 2


class TestWeightedDraining:
    def drain_order(self, core, now, n):
        order = []
        for _ in range(n):
            _, batch, _ = core.poll(now)
            assert batch is not None
            order.append(batch.lane)
        return order

    def test_weights_share_dispatches_four_to_one(self):
        config = two_lane_config(
            max_batch=1,
            lanes=(
                LaneConfig(name="interactive", weight=4, max_depth=16,
                           deadline_seconds=10.0, coalesce_seconds=0.002),
                LaneConfig(name="batch", weight=1, max_depth=16,
                           deadline_seconds=10.0, coalesce_seconds=0.002),
            ),
        )
        core = FrontDoorCore(config)
        for _ in range(8):
            core.admit("interactive", QUERY, PLAN, now=0.0)
        for _ in range(2):
            core.admit("batch", QUERY, PLAN, now=0.0)
        order = self.drain_order(core, now=0.01, n=10)
        assert order.count("interactive") == 8
        assert order.count("batch") == 2
        # Smooth WRR interleaves instead of bursting: the batch lane is
        # not starved until the interactive queue drains.
        assert "batch" in order[:5]

    def test_lone_ready_lane_drains_regardless_of_weight(self):
        core = FrontDoorCore(two_lane_config(max_batch=1))
        core.admit("batch", QUERY, PLAN, now=0.0)
        _, batch, _ = core.poll(now=0.01)
        assert batch.lane == "batch"


class TestOverloadController:
    CONFIG = OverloadConfig(
        degrade_delay_seconds=0.01, shed_delay_seconds=0.04,
        recover_ratio=0.5, ewma_alpha=1.0, max_level=2,
        dwell_seconds=0.02,
    )

    def climb(self, controller, delay, start=0.0, steps=10):
        now = start
        for _ in range(steps):
            controller.observe(delay, now)
            now += self.CONFIG.dwell_seconds
        return now

    def test_healthy_under_small_delays(self):
        controller = OverloadController(self.CONFIG)
        self.climb(controller, delay=0.001)
        assert controller.severity == 0
        assert controller.degrade_level == 0
        assert not controller.shedding

    def test_sustained_delay_climbs_to_shedding(self):
        controller = OverloadController(self.CONFIG)
        severities = []
        now = 0.0
        for _ in range(4):
            controller.observe(0.1, now)
            severities.append(controller.severity)
            now += self.CONFIG.dwell_seconds
        assert severities == [1, 2, 3, 3]  # one step per dwell, then cap
        assert controller.degrade_level == 2  # capped at max_level
        assert controller.shedding

    def test_dwell_limits_to_one_step_per_window(self):
        controller = OverloadController(self.CONFIG)
        controller.observe(0.1, now=0.0)
        controller.observe(0.1, now=0.0)  # same instant: no second step
        assert controller.severity == 1

    def test_hysteresis_holds_state_between_thresholds(self):
        controller = OverloadController(self.CONFIG)
        now = self.climb(controller, delay=0.1, steps=4)
        assert controller.shedding
        # Between recover (0.02) and entry (0.04): hold.
        now = self.climb(controller, delay=0.03, start=now, steps=5)
        assert controller.shedding
        # Below recover_ratio * entry threshold: step back down.
        controller.observe(0.001, now)
        assert controller.severity == 2
        assert not controller.shedding

    def test_recovers_fully_when_delay_vanishes(self):
        controller = OverloadController(self.CONFIG)
        now = self.climb(controller, delay=0.1, steps=4)
        self.climb(controller, delay=0.0, start=now, steps=10)
        assert controller.severity == 0


class TestSheddingPath:
    def config(self):
        return two_lane_config(
            overload=OverloadConfig(
                degrade_delay_seconds=0.01, shed_delay_seconds=0.04,
                recover_ratio=0.5, ewma_alpha=1.0, max_level=1,
                dwell_seconds=0.01,
            ),
        )

    def shed_engaged_core(self):
        """A core whose stale backlog has driven admissions into shed."""
        core = FrontDoorCore(self.config())
        core.admit("interactive", QUERY, PLAN, now=0.0)  # grows stale
        # Each arrival observes the live backlog delay, so the ladder
        # climbs one dwell-gated step per admission attempt.
        ticket, _ = core.admit("interactive", QUERY, PLAN, now=1.0)
        assert ticket is not None  # level 1: degraded, still admitting
        ticket, rejection = core.admit("interactive", QUERY, PLAN, now=1.02)
        assert ticket is None and rejection.reason == REASON_SHED
        return core

    def test_admissions_shed_when_backlog_grows_stale(self):
        core = self.shed_engaged_core()
        assert core.controller.shedding
        assert core.stats["rejected"]["interactive"][REASON_SHED] == 1

    def test_shedding_recovers_from_admission_observations(self):
        # Regression: shedding stops dispatches, so dispatch-time delay
        # observations alone would freeze the controller in shed state
        # forever.  Arrivals over drained queues must walk it back down.
        core = self.shed_engaged_core()
        while True:  # drain the backlog (expiry + dispatch)
            _, batch, _ = core.poll(now=1.03)
            if batch is None:
                break
            core.complete(batch, fake_results(batch), now=1.04)
        now, admitted = 2.0, False
        for _ in range(20):
            ticket, _ = core.admit("interactive", QUERY, PLAN, now)
            if ticket is not None:
                admitted = True
                break
            now += 0.05
        assert admitted
        assert not core.controller.shedding


class TestDegradedDispatch:
    def degraded_core(self):
        config = two_lane_config(
            overload=OverloadConfig(
                degrade_delay_seconds=0.01, shed_delay_seconds=10.0,
                recover_ratio=0.5, ewma_alpha=1.0, max_level=2,
                dwell_seconds=0.0,
            ),
            downgrade_floor=8,
        )
        core = FrontDoorCore(config)
        # A stale queued head makes the second arrival observe a large
        # backlog delay, engaging degrade level 1 for real — the same
        # signal path production admissions use.
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=10.0)
        core.admit("interactive", QUERY, PLAN, now=1.0,
                   deadline_seconds=10.0)
        assert core.controller.degrade_level == 1
        return core

    def test_batch_carries_downgraded_plan(self):
        core = self.degraded_core()
        _, batch, _ = core.poll(now=1.01)
        assert batch.degrade_level == 1
        assert batch.effective_plan == PLAN.downgraded(1, floor=8)
        assert batch.effective_plan.n_candidates < PLAN.n_candidates

    def test_complete_stamps_degradation_vocabulary(self):
        core = self.degraded_core()
        _, batch, _ = core.poll(now=1.01)
        resolved = core.complete(batch, fake_results(batch), now=1.02)
        expected = PLAN.budget_fraction(batch.effective_plan)
        for _, response in resolved:
            assert response.status == STATUS_SERVED_DEGRADED
            assert response.degrade_level == 1
            assert response.coverage == pytest.approx(expected)
            assert response.result.extras["degraded"] is True
            assert response.result.extras["coverage"] == pytest.approx(
                expected
            )
            assert response.result.extras["degrade_level"] == 1
        assert core.stats["degraded"]["interactive"] == len(resolved)


class TestCompletion:
    def dispatched(self, core, n=2, now=0.0):
        for _ in range(n):
            core.admit("interactive", QUERY, PLAN, now=now)
        _, batch, _ = core.poll(now=now + 0.01)
        return batch

    def test_complete_resolves_every_ticket(self):
        core = FrontDoorCore(two_lane_config())
        batch = self.dispatched(core, n=3)
        resolved = core.complete(batch, fake_results(batch), now=0.02)
        assert len(resolved) == 3
        for ticket, response in resolved:
            assert response.status == STATUS_SERVED
            assert response.deadline_met
            assert response.latency_seconds == pytest.approx(0.02)
            assert response.queue_seconds == pytest.approx(0.01)
        assert core.stats["served"]["interactive"] == 3

    def test_result_count_mismatch_raises(self):
        core = FrontDoorCore(two_lane_config())
        batch = self.dispatched(core, n=2)
        with pytest.raises(ValueError, match="2 tickets got 1"):
            core.complete(batch, fake_results(batch)[:1], now=0.02)

    def test_late_completion_reports_deadline_missed(self):
        core = FrontDoorCore(two_lane_config())
        batch = self.dispatched(core)
        (_, response), *_ = core.complete(
            batch, fake_results(batch), now=5.0  # past the 1.0s deadline
        )
        assert response.served and not response.deadline_met

    def test_fail_resolves_as_execution_error(self):
        core = FrontDoorCore(two_lane_config())
        batch = self.dispatched(core, n=2)
        resolved = core.fail(batch, now=0.02, detail="boom")
        assert all(
            r.reason == REASON_EXECUTION_ERROR and r.detail == "boom"
            for _, r in resolved
        )
        assert (
            core.stats["rejected"]["interactive"][REASON_EXECUTION_ERROR]
            == 2
        )


class TestDropInfeasible:
    def test_hopeless_tickets_are_dropped_not_executed(self):
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=0.05)
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=5.0)
        _, batch, _ = core.poll(now=0.01)
        trimmed, dropped = core.drop_infeasible(
            batch, service_estimate=0.1, now=0.01
        )
        assert len(trimmed) == 1
        (_, response), = dropped
        assert response.reason == REASON_DEADLINE_INFEASIBLE

    def test_feasible_batch_passes_through_unchanged(self):
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=0.0)
        _, batch, _ = core.poll(now=0.01)
        trimmed, dropped = core.drop_infeasible(
            batch, service_estimate=0.001, now=0.01
        )
        assert trimmed is batch and dropped == []


class TestShutdown:
    def test_drains_every_lane_with_shutdown_reason(self):
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=0.0)
        core.admit("batch", QUERY, PLAN, now=0.0)
        drained = core.shutdown(now=0.01)
        assert {r.reason for _, r in drained} == {REASON_SHUTDOWN}
        assert core.pending() == 0


class TestPollBookkeeping:
    def test_next_wake_is_none_when_idle(self):
        core = FrontDoorCore(two_lane_config())
        expired, batch, wake = core.poll(now=0.0)
        assert expired == [] and batch is None and wake is None

    def test_next_wake_tracks_coalesce_window(self):
        core = FrontDoorCore(two_lane_config())
        core.admit("interactive", QUERY, PLAN, now=1.0)
        _, _, wake = core.poll(now=1.0)
        assert wake == pytest.approx(1.002)  # 2ms coalesce window

    def test_next_wake_never_in_the_past(self):
        core = FrontDoorCore(two_lane_config(max_batch=2))
        # A deadline already behind `now` must clamp, not schedule a
        # wake-up in the past.
        core.admit("interactive", QUERY, PLAN, now=0.0,
                   deadline_seconds=10.0)
        _, _, wake = core.poll(now=0.0015)
        assert wake >= 0.0015

    def test_offered_counts_partition_into_outcomes(self):
        core = FrontDoorCore(two_lane_config())
        for _ in range(6):
            core.admit("interactive", QUERY, PLAN, now=0.0)
        _, batch, _ = core.poll(now=0.01)
        core.complete(batch, fake_results(batch), now=0.02)
        stats = core.stats
        resolved = (
            stats["served"]["interactive"]
            + sum(stats["rejected"]["interactive"].values())
        )
        assert stats["offered"]["interactive"] == 6
        assert resolved == 6  # 4 served (max_depth) + 2 queue_full
