"""Tests for the search-layer extensions: metrics, range search,
batch search, and the QD-merged multi-table strategy."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.hashing import ITQ, RandomProjectionLSH
from repro.index.distance import knn_exact
from repro.index.linear_scan import knn_linear_scan
from repro.probing import HammingRanking
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1500, 16, n_clusters=10, seed=17)


class TestMetricSupport:
    def test_angular_index_full_budget_exact(self, data):
        """SRP-LSH + angular metric: full budget equals exact angular kNN."""
        index = HashIndex(
            RandomProjectionLSH(code_length=8, seed=0),
            data,
            prober=GQR(),
            metric="angular",
        )
        query = data[3]
        result = index.search(query, k=10, n_candidates=len(data))
        truth, _ = knn_exact(query[None, :], data, 10, "angular")
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))

    def test_angular_recall_reasonable_at_budget(self, data):
        index = HashIndex(
            RandomProjectionLSH(code_length=10, seed=0),
            data,
            prober=GQR(),
            metric="angular",
        )
        truth, _ = knn_exact(data[:20], data, 10, "angular")
        hits = 0
        for qi in range(20):
            result = index.search(data[qi], k=10, n_candidates=300)
            hits += len(np.intersect1d(result.ids, truth[qi]))
        assert hits / 200 > 0.5

    def test_unknown_metric_rejected(self, data):
        with pytest.raises(KeyError):
            HashIndex(ITQ(code_length=6, seed=0), data, metric="hamming")

    def test_early_stop_rejects_non_euclidean(self, data):
        index = HashIndex(
            ITQ(code_length=6, seed=0), data, prober=GQR(), metric="cosine"
        )
        with pytest.raises(ValueError):
            index.search_early_stop(data[0], k=5)


class TestRangeSearch:
    @pytest.fixture(scope="class")
    def index(self, data):
        return HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())

    def test_exactness_vs_bruteforce(self, index, data):
        rng = np.random.default_rng(0)
        for qi in rng.choice(len(data), 5, replace=False):
            query = data[qi]
            radius = 1.5
            result = index.search_range(query, radius)
            dists = np.linalg.norm(data - query, axis=1)
            expected = np.flatnonzero(dists <= radius)
            assert np.array_equal(np.sort(result.ids), expected)

    def test_results_sorted_by_distance(self, index, data):
        result = index.search_range(data[0], 2.0)
        assert (np.diff(result.distances) >= 0).all()

    def test_zero_radius_finds_exact_copies(self, index, data):
        result = index.search_range(data[5], 0.0)
        assert 5 in result.ids

    def test_negative_radius_rejected(self, index, data):
        with pytest.raises(ValueError):
            index.search_range(data[0], -1.0)

    def test_small_radius_prunes(self, index, data):
        result = index.search_range(data[0], 0.05)
        assert result.n_candidates < index.num_items


class TestBatchSearch:
    def test_matches_individual_searches(self, data):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        queries = data[:5]
        batch = index.search_batch(queries, k=5, n_candidates=200)
        for query, result in zip(queries, batch):
            single = index.search(query, k=5, n_candidates=200)
            assert np.array_equal(result.ids, single.ids)

    def test_single_query_promoted(self, data):
        index = HashIndex(ITQ(code_length=8, seed=0), data)
        batch = index.search_batch(data[0], k=3, n_candidates=100)
        assert len(batch) == 1


class TestQDMergeStrategy:
    @pytest.fixture(scope="class")
    def hashers(self, data):
        return [ITQ(code_length=8, seed=s).fit(data) for s in (0, 1, 2)]

    def test_same_coverage_as_round_robin(self, data, hashers):
        merged = HashIndex(
            hashers, data, prober=GQR(), multi_table_strategy="qd_merge"
        )
        found = np.concatenate(list(merged.candidate_stream(data[0])))
        assert sorted(found.tolist()) == list(range(len(data)))
        assert len(found) == len(data)  # dedup: each id exactly once

    def test_merged_stream_recall_at_least_round_robin(self, data, hashers):
        """Probing globally-best buckets first can only help quality at
        a fixed candidate budget (on average)."""
        truth, _ = knn_linear_scan(data[:15], data, 10)
        budget = 150

        def recall(strategy):
            index = HashIndex(
                hashers, data, prober=GQR(), multi_table_strategy=strategy
            )
            hits = 0
            for qi in range(15):
                result = index.search(data[qi], 10, budget)
                hits += len(np.intersect1d(result.ids, truth[qi]))
            return hits / 150

        assert recall("qd_merge") >= recall("round_robin") - 0.05

    def test_requires_scored_prober(self, data, hashers):
        index = HashIndex(
            hashers,
            data,
            prober=HammingRanking(),
            multi_table_strategy="qd_merge",
        )
        with pytest.raises(TypeError):
            list(index.candidate_stream(data[0]))

    def test_strategy_validated(self, data, hashers):
        with pytest.raises(ValueError):
            HashIndex(hashers, data, multi_table_strategy="shuffle")
