"""Regression tests for races found by reprolint RL012.

The compaction test fails against the pre-fix code with a ``KeyError``
(run it on the parent commit to see): ``DynamicHashTable.get``
compacts tombstones lazily — a *read* that mutates
``_buckets``/``_bucket_of``/``_dead`` — so pool workers probing the
same bucket raced the compaction and double-``del``ed entries.  The
layout test likewise failed pre-fix: racing first calls to
``HashTable.dense_layout`` built distinct tuples instead of one cached
layout.

The counter tests (``TraceSampler._seen``, ``QueryEngine.generation``)
pin the locked invariants for unlocked ``+=`` races that RL012 flags
statically.  They do not reproduce on current CPython — 3.11's eval
breaker has no preemption point between the LOAD_ATTR and STORE_ATTR
of these particular statements — but that is an implementation
accident, not a contract, and it does not survive free-threaded
builds.

The hammer tests force thread interleaving with a tiny
``sys.setswitchinterval`` and a start barrier; they assert invariants
that must hold under the per-child-lock contract, not timing.
"""

import sys
import threading

import numpy as np
import pytest

from repro.index.dynamic import DynamicHashTable
from repro.index.hash_table import HashTable
from repro.obs.sampling import TraceSampler
from repro.search.engine import ExactEvaluator, QueryEngine


@pytest.fixture(autouse=True)
def _aggressive_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def _hammer(n_threads, fn):
    barrier = threading.Barrier(n_threads)
    errors = []

    def run():
        barrier.wait()
        try:
            fn()
        except BaseException as exc:  # noqa: B036  # reprolint: disable=RL005 -- collected across threads and re-raised on the main thread below
            errors.append(exc)

    threads = [threading.Thread(target=run) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestTraceSamplerRace:
    def test_concurrent_should_sample_loses_no_counts(self):
        sampler = TraceSampler(every_n=8, capacity=4, seed=0)
        per_thread = 2000
        n_threads = 8
        decisions = []
        lock = threading.Lock()

        def work():
            hits = sum(
                1 for _ in range(per_thread) if sampler.should_sample()
            )
            with lock:
                decisions.append(hits)

        _hammer(n_threads, work)
        total = per_thread * n_threads
        # Unlocked `+=` loses increments: seen < total pre-fix.
        assert sampler.seen == total
        # Exactly one query in every `every_n` is selected; lost counts
        # also break this (duplicate residues get sampled twice).
        assert sum(decisions) == total // sampler.every_n

    def test_concurrent_record_and_clear_keep_ring_consistent(self):
        sampler = TraceSampler(every_n=1, capacity=16, seed=0)

        def work():
            for _ in range(500):
                sampler.should_sample()
                sampler.record(spans=None, stats={"ok": 1})
                sampler.traces()

        _hammer(4, work)
        assert len(sampler.traces()) == 16


class TestDynamicTableCompactionRace:
    def test_concurrent_get_compaction_does_not_corrupt(self):
        # Repeat the race window many times: each round builds a bucket
        # whose tombstones exceed half its population, then lets every
        # thread trigger compaction at once.  Pre-fix this dies with
        # KeyError in the double `del self._bucket_of[item]`.
        for round_no in range(20):
            table = DynamicHashTable(code_length=8)
            ids = np.arange(64, dtype=np.int64)
            codes = np.zeros((64, 8), dtype=np.uint8)  # one bucket: sig 0
            table.add_batch(ids, codes)
            for item in range(40):
                table.remove(item)

            results = []
            lock = threading.Lock()

            def work():
                got = table.get(0)
                with lock:
                    results.append(got)

            _hammer(8, work)
            survivors = set(range(40, 64))
            for got in results:
                assert set(got.tolist()) == survivors
            assert table.num_items == 24

    def test_concurrent_add_keeps_alive_count(self):
        table = DynamicHashTable(code_length=10)
        n_threads, per_thread = 8, 200
        counter = iter(range(n_threads * per_thread))
        lock = threading.Lock()

        def work():
            for _ in range(per_thread):
                with lock:
                    item = next(counter)
                table.add(item, item % 1024)

        _hammer(n_threads, work)
        assert table.num_items == n_threads * per_thread


class TestDenseLayoutRace:
    def test_concurrent_dense_layout_builds_once(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 2, size=(512, 12)).astype(np.uint8)
        table = HashTable(codes)
        layouts = []
        lock = threading.Lock()

        def work():
            layout = table.dense_layout()
            with lock:
                layouts.append(layout)

        _hammer(8, work)
        # Every caller must observe the same cached tuple; pre-fix,
        # racing first calls built distinct (if equal-valued) layouts.
        first = layouts[0]
        assert all(layout is first for layout in layouts)


class TestGenerationBumpRace:
    def test_concurrent_bumps_lose_no_generations(self):
        data = np.zeros((4, 3))
        engine = QueryEngine(ExactEvaluator(data, "euclidean"))
        n_threads, per_thread = 8, 1000

        def work():
            for _ in range(per_thread):
                engine.bump_generation()

        _hammer(n_threads, work)
        assert engine.generation == n_threads * per_thread
