"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "CIFAR60K"
        assert args.hasher == "itq"
        assert args.k == 20

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "NOPE"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("CIFAR60K", "GIST1M", "TINY5M", "SIFT10M", "GLOVE1.2M"):
            assert name in out

    def test_compare_runs_small(self, capsys):
        code = main([
            "compare", "--dataset", "CIFAR60K", "--scale", "0.05",
            "--budget", "50", "--k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for prober in ("HR", "GHR", "QR", "GQR"):
            assert prober in out

    def test_compare_with_sh(self, capsys):
        code = main([
            "compare", "--dataset", "CIFAR60K", "--scale", "0.05",
            "--hasher", "sh", "--budget", "50", "--k", "5",
        ])
        assert code == 0
        assert "recall@5" in capsys.readouterr().out


class TestReproduceCommand:
    def test_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "table2" in out

    def test_runs_small_experiment(self, capsys):
        code = main([
            "reproduce", "--experiment", "table1", "--scale", "0.05",
            "--k", "5",
        ])
        assert code == 0
        assert "linear search" in capsys.readouterr().out

    def test_missing_experiment_flag(self, capsys):
        assert main(["reproduce"]) == 2
