"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "CIFAR60K"
        assert args.hasher == "itq"
        assert args.k == 20

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "NOPE"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("CIFAR60K", "GIST1M", "TINY5M", "SIFT10M", "GLOVE1.2M"):
            assert name in out

    def test_compare_runs_small(self, capsys):
        code = main([
            "compare", "--dataset", "CIFAR60K", "--scale", "0.05",
            "--budget", "50", "--k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for prober in ("HR", "GHR", "QR", "GQR"):
            assert prober in out

    def test_compare_with_sh(self, capsys):
        code = main([
            "compare", "--dataset", "CIFAR60K", "--scale", "0.05",
            "--hasher", "sh", "--budget", "50", "--k", "5",
        ])
        assert code == 0
        assert "recall@5" in capsys.readouterr().out


class TestObsCommand:
    def test_table_output(self, capsys):
        assert main(["obs", "--queries", "40"]) == 0
        out = capsys.readouterr().out
        assert "repro_query_stage_seconds" in out
        assert "index=hash" in out
        assert "sampled traces:" in out

    def test_fault_tolerance_series_visible(self, capsys):
        assert main(["obs", "--queries", "40"]) == 0
        out = capsys.readouterr().out
        assert "repro_distributed_retries_total" in out
        assert "repro_distributed_hedges_total" in out
        assert "repro_breaker_state" in out
        assert "repro_shard_faults_total" in out

    def test_json_output(self, capsys):
        import json

        assert main(["obs", "--queries", "20", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.metrics/v1"
        names = {m["name"] for m in payload["metrics"]}
        assert "repro_queries_total" in names

    def test_prometheus_output(self, capsys):
        from repro.obs import parse_prometheus_text

        code = main(["obs", "--queries", "20", "--format", "prometheus"])
        assert code == 0
        parsed = parse_prometheus_text(capsys.readouterr().out)
        key = ("repro_queries_total", (("index", "hash"),))
        assert parsed[key] >= 20

    def test_telemetry_disabled_after_run(self):
        from repro import obs

        assert main(["obs", "--queries", "10"]) == 0
        assert not obs.telemetry_enabled()

    def test_cache_counters_visible(self, capsys):
        # The demo workload re-issues a slice of its queries, so the
        # cache series must show both misses and hits.
        assert main(["obs", "--queries", "40"]) == 0
        out = capsys.readouterr().out
        assert "repro_cache_hits_total" in out
        assert "repro_cache_misses_total" in out
        assert "cache=hash" in out


class TestExitCodes:
    """Regression: internal failures must exit nonzero, not 0.

    The dispatcher used to let handler exceptions propagate as a bare
    traceback (or, for handled ones, print and return 0); scripting
    around ``python -m repro`` needs a clean ``1`` plus a one-line
    diagnostic on stderr.
    """

    def test_obs_failure_returns_one(self, capsys):
        assert main(["obs", "--queries", "0"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error:")
        assert "positive" in captured.err

    def test_chaos_failure_returns_one(self, capsys):
        code = main(["chaos", "--queries", "2", "--replication", "0"])
        assert code == 1
        assert "repro: error:" in capsys.readouterr().err

    def test_failure_diagnostic_stays_off_stdout(self, capsys):
        assert main(["obs", "--queries", "0"]) == 1
        assert capsys.readouterr().out == ""

    def test_success_paths_unaffected(self, capsys):
        assert main(["datasets"]) == 0
        assert capsys.readouterr().err == ""


class TestChaosCommand:
    def test_runs_all_scenarios(self, capsys):
        code = main(["chaos", "--queries", "4", "--budget", "100"])
        assert code == 0
        out = capsys.readouterr().out
        for scenario in ("fault-free", "crash", "transient", "slow",
                         "corrupt", "random"):
            assert scenario in out
        assert "recall@10" in out
        assert "coverage" in out
        assert "makespan" in out

    def test_replicated_drill(self, capsys):
        code = main([
            "chaos", "--queries", "3", "--budget", "100",
            "--replication", "2", "--seed", "7",
        ])
        assert code == 0
        assert "x 2 replicas" in capsys.readouterr().out

    def test_deterministic_per_seed(self, capsys):
        args = ["chaos", "--queries", "3", "--budget", "100", "--seed", "5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        # recall/coverage/degraded/retries columns are simulated and
        # must replay exactly; only measured makespan may drift.
        strip = [line.rsplit("  ", 1)[0] for line in first.splitlines()]
        strip2 = [line.rsplit("  ", 1)[0] for line in second.splitlines()]
        assert strip == strip2


class TestEvalCommand:
    def test_reports_all_pipelines(self, capsys):
        code = main([
            "eval", "--items", "600", "--queries", "6", "--k", "5",
            "--budget", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for pipeline in (
            "candidate-only", "rerank-exact", "rerank-adc", "fused"
        ):
            assert pipeline in out
        for metric in ("mrr@5", "recall@5", "ndcg@5"):
            assert metric in out

    def test_eval_defaults(self):
        args = build_parser().parse_args(["eval"])
        assert args.k == 10
        assert args.fusion_weight == 0.5


class TestServeSimCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.duration == 6.0
        assert args.base_rate == 300.0
        assert args.flash_multiplier == 10.0
        assert args.capacity_qps == 800.0
        assert args.json is None

    def test_prints_slo_report(self, capsys):
        code = main([
            "serve-sim", "--duration", "2.0", "--base-rate", "150",
            "--items", "1500", "--distinct", "32", "--budget", "100",
            "--flash-start", "0.5", "--flash-duration", "1.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "interactive" in out and "batch" in out
        assert "flash crowd @0.5s x10" in out

    def test_writes_valid_json_report(self, tmp_path, capsys):
        import json

        from repro.serving import validate_slo_report

        path = tmp_path / "slo.json"
        code = main([
            "serve-sim", "--duration", "2.0", "--base-rate", "150",
            "--items", "1500", "--distinct", "32", "--budget", "100",
            "--json", str(path),
        ])
        assert code == 0
        assert str(path) in capsys.readouterr().out
        report = json.loads(path.read_text())
        validate_slo_report(report)
        assert report["offered"] > 0

    def test_bad_parameters_exit_one(self, capsys):
        code = main(["serve-sim", "--duration", "0"])
        assert code == 1
        assert "repro: error:" in capsys.readouterr().err


class TestReproduceCommand:
    def test_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "table2" in out

    def test_runs_small_experiment(self, capsys):
        code = main([
            "reproduce", "--experiment", "table1", "--scale", "0.05",
            "--k", "5",
        ])
        assert code == 0
        assert "linear search" in capsys.readouterr().out

    def test_missing_experiment_flag(self, capsys):
        assert main(["reproduce"]) == 2
