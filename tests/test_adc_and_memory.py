"""Tests for IMI's ADC re-ranking mode and index memory accounting."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.hashing import ITQ
from repro.index.linear_scan import knn_linear_scan
from repro.quantization.opq import OptimizedProductQuantizer
from repro.quantization.pq import ProductQuantizer
from repro.search.searcher import HashIndex, IMISearchIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(800, 16, n_clusters=8, seed=31)


@pytest.fixture(scope="module")
def coarse(data):
    return OptimizedProductQuantizer(
        2, n_centroids=8, n_iterations=2, seed=0
    ).fit(data)


class TestADCRerank:
    def test_adc_close_to_exact(self, data, coarse):
        """A fine PQ should place most true neighbours in the ADC top-k."""
        fine = ProductQuantizer(n_subspaces=8, n_centroids=128, seed=0)
        adc_index = IMISearchIndex(coarse, data, rerank_quantizer=fine)
        exact_index = IMISearchIndex(coarse, data)
        hits = 0
        for qi in range(10):
            a = adc_index.search(data[qi], k=10, n_candidates=200)
            b = exact_index.search(data[qi], k=10, n_candidates=200)
            hits += len(np.intersect1d(a.ids, b.ids))
        assert hits / 100 > 0.7

    def test_adc_distance_is_reconstruction_distance(self, data, coarse):
        fine = ProductQuantizer(n_subspaces=8, n_centroids=32, seed=0)
        index = IMISearchIndex(coarse, data, rerank_quantizer=fine)
        query = data[0]
        result = index.search(query, k=5, n_candidates=100)
        decoded = fine.decode(fine.encode(data[result.ids]))
        expected = np.linalg.norm(decoded - query, axis=1)
        assert np.allclose(result.distances, expected, atol=1e-9)

    def test_unfitted_fine_quantizer_fitted_lazily(self, data, coarse):
        fine = ProductQuantizer(n_subspaces=4, n_centroids=16, seed=0)
        assert not fine.codebooks
        IMISearchIndex(coarse, data, rerank_quantizer=fine)
        assert fine.codebooks

    def test_exact_mode_unchanged_without_fine(self, data, coarse):
        index = IMISearchIndex(coarse, data)
        query = data[9]
        result = index.search(query, k=10, n_candidates=len(data))
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))


class TestMemoryFootprint:
    def test_tables_scale_with_count(self, data):
        single = HashIndex(ITQ(code_length=6, seed=0), data)
        triple = HashIndex(
            [ITQ(code_length=6, seed=s) for s in range(3)], data
        )
        mem_single = single.memory_footprint()
        mem_triple = triple.memory_footprint()
        assert mem_triple["tables"] > 2 * mem_single["tables"]
        assert mem_triple["data"] == mem_single["data"]
        assert mem_triple["num_tables"] == 3

    def test_table_bytes_positive_and_bounded(self, data):
        index = HashIndex(ITQ(code_length=6, seed=0), data)
        table_bytes = index.tables[0].memory_bytes()
        assert table_bytes > len(data) * 8  # at least the id arrays
        assert table_bytes < len(data) * 8 + 70_000  # bounded overhead
