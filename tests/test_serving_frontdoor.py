"""Asyncio front door: real event loop, real index, never raises.

The policy is pinned in ``test_serving_core``; these tests cover the
io shell: futures resolve, blocking execution stays off the loop, and
every failure mode (invalid query, engine error, shutdown, overload)
comes back as a ``ServedResponse`` instead of an exception.
"""

import asyncio

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.search import HashIndex
from repro.serving import (
    REASON_EXECUTION_ERROR,
    REASON_INVALID_QUERY,
    REASON_QUEUE_FULL,
    REASON_SHUTDOWN,
    STATUS_SERVED,
    AsyncFrontDoor,
    FrontDoorConfig,
    LaneConfig,
    default_config,
    execute_batch,
)
from repro.serving.core import Batch, FrontDoorCore


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(600, 16, n_clusters=6, seed=29)


@pytest.fixture(scope="module")
def queries(data):
    return sample_queries(data, 12, seed=5)


@pytest.fixture(scope="module")
def index(data):
    return HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())


def run(coro):
    return asyncio.run(coro)


class TestExecuteBatch:
    def batch_for(self, index, queries, plan):
        """Dispatch `queries` through a bare core to get a real Batch."""
        core = FrontDoorCore(default_config())
        for query in queries:
            core.admit("interactive", query, plan, now=0.0,
                       deadline_seconds=10.0)
        _, batch, _ = core.poll(now=1.0)
        assert batch is not None and len(batch) == len(queries)
        return batch

    def test_coalescible_matches_search_batch(self, index, queries):
        plan = index.plan(k=5, n_candidates=100)
        batch = self.batch_for(index, queries[:4], plan)
        got = execute_batch(index, batch)
        want = index.search_batch(queries[:4], 5, 100)
        for a, b in zip(got, want):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    def test_non_coalescible_matches_per_query_search(self, index, queries):
        plan = index.plan(k=5, max_buckets=8)
        batch = self.batch_for(index, queries[:1], plan)
        (got,) = execute_batch(index, batch)
        want = index.search(queries[0], 5, max_buckets=8)
        assert np.array_equal(got.ids, want.ids)
        assert np.array_equal(got.distances, want.distances)


class TestSubmit:
    def test_served_result_matches_direct_search(self, index, queries):
        async def scenario():
            async with AsyncFrontDoor(index) as door:
                return await door.submit(
                    queries[0], index.plan(k=5, n_candidates=100)
                )

        response = run(scenario())
        assert response.status == STATUS_SERVED
        assert response.deadline_met
        assert response.payload is None  # the future never leaks out
        want = index.search(queries[0], 5, n_candidates=100)
        assert np.array_equal(response.result.ids, want.ids)
        assert np.array_equal(response.result.distances, want.distances)

    def test_concurrent_submissions_all_resolve(self, index, queries):
        plan = index.plan(k=5, n_candidates=100)

        async def scenario():
            async with AsyncFrontDoor(index) as door:
                return await asyncio.gather(*[
                    door.submit(query, plan, deadline_seconds=2.0)
                    for query in queries
                ])

        responses = run(scenario())
        assert len(responses) == len(queries)
        assert all(r.served for r in responses)  # light load
        want = index.search_batch(queries, 5, 100)
        for response, expected in zip(responses, want):
            assert np.array_equal(response.result.ids, expected.ids)

    def test_batch_lane_and_coalescing(self, index, queries):
        plan = index.plan(k=5, n_candidates=100)

        async def scenario():
            async with AsyncFrontDoor(index) as door:
                responses = await asyncio.gather(*[
                    door.submit(query, plan, lane="batch",
                                deadline_seconds=5.0)
                    for query in queries
                ])
                return responses, door.core.stats

        responses, stats = run(scenario())
        assert all(r.served and r.lane == "batch" for r in responses)
        # The 20ms batch-lane coalesce window gathers concurrent
        # arrivals into fewer dispatches than requests.
        assert stats["batches"] < len(queries)

    def test_invalid_query_rejected_not_raised(self, index):
        async def scenario():
            async with AsyncFrontDoor(index) as door:
                bad_shape = await door.submit(
                    np.zeros((2, 16)), index.plan(k=5, n_candidates=100)
                )
                non_finite = await door.submit(
                    np.full(16, np.nan), index.plan(k=5, n_candidates=100)
                )
                return bad_shape, non_finite

        bad_shape, non_finite = run(scenario())
        assert bad_shape.reason == REASON_INVALID_QUERY
        assert non_finite.reason == REASON_INVALID_QUERY

    def test_queue_full_overflow_rejected(self, index, queries):
        config = FrontDoorConfig(lanes=(
            LaneConfig(name="interactive", max_depth=1,
                       deadline_seconds=0.5, coalesce_seconds=0.05),
        ))

        async def scenario():
            async with AsyncFrontDoor(index, config) as door:
                return await asyncio.gather(*[
                    door.submit(query, index.plan(k=5, n_candidates=100))
                    for query in queries[:6]
                ])

        responses = run(scenario())
        rejected = [r for r in responses if not r.served]
        assert rejected, "depth-1 queue must overflow under a 6-way burst"
        assert all(r.reason == REASON_QUEUE_FULL for r in rejected)

    def test_submit_requires_running_door(self, index, queries):
        door = AsyncFrontDoor(index)

        async def scenario():
            await door.submit(
                queries[0], index.plan(k=5, n_candidates=100)
            )

        with pytest.raises(RuntimeError, match="start"):
            run(scenario())


class TestFailureAndShutdown:
    def test_engine_error_resolves_as_execution_error(self, data, queries):
        class ExplodingIndex:
            def search_batch(self, *args, **kwargs):
                raise RuntimeError("engine down")

            def search(self, *args, **kwargs):
                raise RuntimeError("engine down")

        plan = HashIndex(
            ITQ(code_length=8, seed=0), data, prober=GQR()
        ).plan(k=5, n_candidates=100)

        async def scenario():
            async with AsyncFrontDoor(ExplodingIndex()) as door:
                return await door.submit(queries[0], plan)

        response = run(scenario())
        assert response.reason == REASON_EXECUTION_ERROR
        assert "engine down" in response.detail

    def test_close_resolves_queued_tickets_as_shutdown(self, index, queries):
        # A week-long coalesce window guarantees the ticket is still
        # queued when the door closes.
        config = FrontDoorConfig(lanes=(
            LaneConfig(name="interactive", deadline_seconds=1e6,
                       coalesce_seconds=1e5),
        ))

        async def scenario():
            door = AsyncFrontDoor(index, config)
            await door.start()
            pending = asyncio.ensure_future(door.submit(
                queries[0], index.plan(k=5, n_candidates=100)
            ))
            await asyncio.sleep(0.01)  # let the submission queue
            await door.close()
            return await pending

        response = run(scenario())
        assert response.reason == REASON_SHUTDOWN

    def test_double_start_rejected_and_restart_allowed(self, index, queries):
        async def scenario():
            door = AsyncFrontDoor(index)
            await door.start()
            with pytest.raises(RuntimeError, match="already started"):
                await door.start()
            await door.close()

        run(scenario())

    def test_max_workers_validated(self, index):
        with pytest.raises(ValueError, match="max_workers"):
            AsyncFrontDoor(index, max_workers=0)
