"""Tests for the inverted multi-index and multi-sequence algorithm."""

import numpy as np
import pytest

from repro.quantization.imi import InvertedMultiIndex, multi_sequence
from repro.quantization.opq import OptimizedProductQuantizer
from repro.quantization.pq import ProductQuantizer


class TestMultiSequence:
    def test_costs_non_decreasing(self):
        rng = np.random.default_rng(0)
        a = np.sort(rng.uniform(size=6))
        b = np.sort(rng.uniform(size=5))
        costs = [c for _, _, c in multi_sequence(a, b)]
        assert costs == sorted(costs)

    def test_visits_every_cell_once(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 0.5])
        cells = [(i, j) for i, j, _ in multi_sequence(a, b)]
        assert sorted(cells) == [(i, j) for i in range(3) for j in range(2)]
        assert len(set(cells)) == len(cells)

    def test_cost_is_sum(self):
        a = np.array([0.0, 3.0])
        b = np.array([1.0, 2.0])
        for i, j, cost in multi_sequence(a, b):
            assert cost == pytest.approx(a[i] + b[j])

    def test_empty_input(self):
        assert list(multi_sequence(np.array([]), np.array([1.0]))) == []

    def test_ties_all_emitted(self):
        a = np.zeros(3)
        b = np.zeros(3)
        assert len(list(multi_sequence(a, b))) == 9


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(1)
    return rng.standard_normal((300, 8))


@pytest.fixture(scope="module")
def imi(data):
    pq = ProductQuantizer(2, n_centroids=8, seed=0).fit(data)
    return InvertedMultiIndex(pq, data)


class TestInvertedMultiIndex:
    def test_requires_two_subspaces(self, data):
        pq = ProductQuantizer(4, n_centroids=4, seed=0).fit(data)
        with pytest.raises(ValueError):
            InvertedMultiIndex(pq, data)

    def test_probe_covers_all_items(self, imi, data):
        found = np.concatenate(list(imi.probe(data[0])))
        assert sorted(found.tolist()) == list(range(300))

    def test_probe_no_duplicates(self, imi, data):
        found = np.concatenate(list(imi.probe(data[1])))
        assert len(found) == len(set(found.tolist()))

    def test_first_cell_contains_query_cell(self, imi, data):
        """The query's own cell has cost d1min+d2min and is visited first
        among occupied cells when it is occupied."""
        query = data[5]
        first = next(iter(imi.probe(query)))
        assert 5 in first.tolist()

    def test_collect_respects_budget(self, imi, data):
        ids = imi.collect(data[2], n_candidates=40)
        assert len(ids) >= 40

    def test_collect_all(self, imi, data):
        ids = imi.collect(data[3], n_candidates=10_000)
        assert len(ids) == 300

    def test_works_with_opq(self, data):
        opq = OptimizedProductQuantizer(
            2, n_centroids=8, n_iterations=3, seed=0
        ).fit(data)
        imi = InvertedMultiIndex(opq, data)
        found = np.concatenate(list(imi.probe(data[0])))
        assert len(found) == 300

    def test_num_cells_bounded(self, imi):
        assert 1 <= imi.num_cells <= 64
