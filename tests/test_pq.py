"""Tests for product quantization."""

import numpy as np
import pytest

from repro.quantization.pq import ProductQuantizer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.standard_normal((400, 12))


@pytest.fixture(scope="module")
def pq(data):
    return ProductQuantizer(n_subspaces=3, n_centroids=8, seed=0).fit(data)


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ProductQuantizer(0)
        with pytest.raises(ValueError):
            ProductQuantizer(2, n_centroids=0)

    def test_rejects_more_subspaces_than_dims(self):
        with pytest.raises(ValueError):
            ProductQuantizer(13).fit(np.zeros((50, 12)))

    def test_uneven_split_allowed(self):
        rng = np.random.default_rng(1)
        pq = ProductQuantizer(n_subspaces=5, n_centroids=4, seed=0)
        pq.fit(rng.standard_normal((100, 13)))
        widths = [cb.shape[1] for cb in pq.codebooks]
        assert sum(widths) == 13
        assert max(widths) - min(widths) <= 1


class TestEncodeDecode:
    def test_code_shape_and_range(self, pq, data):
        codes = pq.encode(data)
        assert codes.shape == (400, 3)
        assert codes.min() >= 0 and codes.max() < 8

    def test_decode_shape(self, pq, data):
        assert pq.decode(pq.encode(data[:10])).shape == (10, 12)

    def test_codes_minimize_block_distance(self, pq, data):
        codes = pq.encode(data[:20])
        blocks = np.split(data[:20], pq._splits, axis=1)
        for i, codebook in enumerate(pq.codebooks):
            for row in range(20):
                dists = np.linalg.norm(codebook - blocks[i][row], axis=1)
                assert dists[codes[row, i]] == pytest.approx(dists.min())

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            ProductQuantizer(2).encode(np.zeros((2, 4)))


class TestDistances:
    def test_adc_matches_decoded_distance(self, pq, data):
        """Σ table lookups == squared distance to the reconstruction."""
        query = data[0]
        tables = pq.distance_tables(query)
        codes = pq.encode(data[:30])
        adc = sum(tables[i][codes[:, i]] for i in range(3))
        decoded = pq.decode(codes)
        expected = np.square(decoded - query).sum(axis=1)
        assert np.allclose(adc, expected)

    def test_distance_tables_shape(self, pq, data):
        tables = pq.distance_tables(data[0])
        assert len(tables) == 3
        assert all(t.shape == (8,) for t in tables)

    def test_distance_tables_rejects_batch(self, pq, data):
        with pytest.raises(ValueError):
            pq.distance_tables(data[:2])


class TestQuantizationError:
    def test_error_decreases_with_centroids(self, data):
        coarse = ProductQuantizer(2, n_centroids=2, seed=0).fit(data)
        fine = ProductQuantizer(2, n_centroids=32, seed=0).fit(data)
        assert fine.quantization_error(data) < coarse.quantization_error(data)

    def test_error_nonnegative(self, pq, data):
        assert pq.quantization_error(data) >= 0
