"""Tests for the simulated distributed index."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.distributed.cluster import DistributedHashIndex, NetworkModel
from repro.distributed.partitioner import cluster_partition, random_partition
from repro.distributed.worker import ShardWorker
from repro.hashing import ITQ
from repro.index.linear_scan import knn_linear_scan


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(3000, 16, n_clusters=12, seed=13)


@pytest.fixture(scope="module")
def hasher(data):
    return ITQ(code_length=8, seed=0).fit(data)


class TestPartitioners:
    def test_random_partition_covers_all(self):
        shards = random_partition(100, 4, seed=0)
        combined = np.concatenate(shards)
        assert sorted(combined.tolist()) == list(range(100))

    def test_random_partition_balanced(self):
        shards = random_partition(1000, 4, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_random_partition_validation(self):
        with pytest.raises(ValueError):
            random_partition(10, 0)
        with pytest.raises(ValueError):
            random_partition(2, 5)

    def test_cluster_partition_covers_all(self, data):
        shards, centroids = cluster_partition(data, 4, seed=0)
        combined = np.concatenate(shards)
        assert sorted(combined.tolist()) == list(range(len(data)))
        assert centroids.shape == (4, data.shape[1])

    def test_cluster_partition_is_locality_aware(self, data):
        shards, centroids = cluster_partition(data, 4, seed=0)
        for worker, shard in enumerate(shards):
            if not len(shard):
                continue
            own = np.linalg.norm(data[shard] - centroids[worker], axis=1)
            others = [
                np.linalg.norm(data[shard] - centroids[w], axis=1)
                for w in range(4)
                if w != worker
            ]
            assert (own <= np.minimum.reduce(others) + 1e-9).all()


class TestShardWorker:
    def test_returns_global_ids(self, data, hasher):
        shard = np.arange(100, 200)
        worker = ShardWorker(0, shard, data, hasher, GQR())
        result = worker.search_local(data[150], k=5, n_candidates=100)
        assert set(result.ids.tolist()) <= set(shard.tolist())
        assert 150 in result.ids

    def test_probe_info_broadcast(self, data, hasher):
        shard = np.arange(100)
        worker = ShardWorker(0, shard, data, hasher, GQR())
        info = hasher.probe_info(data[5])
        a = worker.search_local(data[5], 5, 50, probe_info=info)
        b = worker.search_local(data[5], 5, 50)
        assert np.array_equal(a.ids, b.ids)

    def test_requires_fitted_hasher(self, data):
        with pytest.raises(ValueError):
            ShardWorker(0, np.arange(10), data, ITQ(code_length=4), GQR())

    def test_reports_compute_time(self, data, hasher):
        worker = ShardWorker(0, np.arange(50), data, hasher, GQR())
        result = worker.search_local(data[0], 3, 20)
        assert result.extras["worker_seconds"] >= 0


class TestNetworkModel:
    def test_makespan_formula(self):
        model = NetworkModel(latency_seconds=1.0,
                             bandwidth_bytes_per_second=100.0)
        assert model.makespan([0.5, 2.0], result_bytes=200) == pytest.approx(
            2 * 1.0 + 2.0 + 2.0
        )

    def test_empty_workers(self):
        model = NetworkModel(latency_seconds=0.1)
        assert model.makespan([], 0) == pytest.approx(0.2)


class TestDistributedHashIndex:
    def test_full_budget_matches_exact(self, data, hasher):
        index = DistributedHashIndex(hasher, data, num_workers=4, seed=0)
        query = data[10]
        result = index.search(query, k=10, n_candidates=len(data) * 2)
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))

    def test_matches_single_node_at_high_budget(self, data, hasher):
        from repro.search.searcher import HashIndex

        single = HashIndex(hasher, data, prober=GQR())
        dist = DistributedHashIndex(hasher, data, num_workers=3, seed=0)
        query = data[42]
        a = single.search(query, 10, 1500)
        b = dist.search(query, 10, 1500)
        overlap = len(np.intersect1d(a.ids, b.ids))
        assert overlap >= 8  # shard boundaries may shave the margin

    def test_extras_report_makespan(self, data, hasher):
        index = DistributedHashIndex(hasher, data, num_workers=4, seed=0)
        result = index.search(data[0], 5, 400)
        assert result.extras["makespan_seconds"] > 0
        assert result.extras["workers_contacted"] == 4
        assert len(result.extras["worker_seconds"]) == 4

    def test_cluster_partitioning_with_fanout(self, data, hasher):
        index = DistributedHashIndex(
            hasher, data, num_workers=6, partitioning="cluster", seed=0
        )
        query = data[5]
        routed = index.search(query, k=10, n_candidates=600, fanout=2)
        assert routed.extras["workers_contacted"] == 2
        # Locality sharding: the 2 nearest shards hold most of the true
        # neighbours for a query drawn from the data.
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        overlap = len(np.intersect1d(routed.ids, truth[0]))
        assert overlap >= 6

    def test_fanout_requires_cluster_partitioning(self, data, hasher):
        index = DistributedHashIndex(hasher, data, num_workers=4, seed=0)
        with pytest.raises(ValueError):
            index.search(data[0], 5, 100, fanout=2)

    def test_partitioning_validated(self, data, hasher):
        with pytest.raises(ValueError):
            DistributedHashIndex(hasher, data, partitioning="zigzag")

    def test_shard_sizes_sum_to_n(self, data, hasher):
        index = DistributedHashIndex(hasher, data, num_workers=5, seed=0)
        assert sum(index.shard_sizes()) == len(data)
