"""Tests for K-means hashing and its GQR flip-cost adapter."""

import numpy as np
import pytest

from repro.hashing.kmh import KMeansHashing, assign_indices
from repro.index.codes import unpack_bits


@pytest.fixture(scope="module")
def kmh(small_data_module):
    return KMeansHashing(
        code_length=8, bits_per_subspace=4, kmeans_iterations=15, seed=0
    ).fit(small_data_module)


@pytest.fixture(scope="module")
def small_data_module():
    from repro.data import gaussian_mixture

    return gaussian_mixture(1200, 24, n_clusters=10, seed=42)


class TestConstruction:
    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            KMeansHashing(code_length=10, bits_per_subspace=4)

    def test_bits_per_subspace_bounds(self):
        with pytest.raises(ValueError):
            KMeansHashing(code_length=8, bits_per_subspace=0)
        with pytest.raises(ValueError):
            KMeansHashing(code_length=18, bits_per_subspace=9)

    def test_subspace_count(self, kmh):
        assert kmh.n_subspaces == 2
        assert kmh.bits_per_subspace == 4


class TestAssignIndices:
    def test_permutation_returned(self):
        rng = np.random.default_rng(0)
        centers = rng.standard_normal((8, 4))
        counts = np.ones(8)
        perm, scale = assign_indices(centers, counts, rng=rng)
        assert sorted(perm.tolist()) == list(range(8))
        assert scale > 0

    def test_improves_affinity_on_line(self):
        """Collinear centroids: a good assignment orders indices like a
        Gray-ish code along the line; error must beat identity often."""
        centers = np.arange(4, dtype=np.float64)[:, np.newaxis]
        counts = np.ones(4)
        perm, _ = assign_indices(centers, counts)
        # Neighbouring centroids (distance 1 apart) should mostly get
        # indices at Hamming distance 1.
        h = [bin(int(perm[i]) ^ int(perm[i + 1])).count("1") for i in range(3)]
        assert np.mean(h) <= 1.5


class TestEncoding:
    def test_code_shape(self, kmh, small_data_module):
        codes = kmh.encode(small_data_module[:20])
        assert codes.shape == (20, 8)
        assert set(np.unique(codes)) <= {0, 1}

    def test_items_in_same_cell_share_code(self, kmh, small_data_module):
        """Items quantized to the same codewords get identical codes."""
        codes = kmh.encode(small_data_module)
        indices = kmh._block_indices(small_data_module)
        same = np.flatnonzero(
            (indices == indices[0]).all(axis=1)
        )
        assert (codes[same] == codes[0]).all()

    def test_probe_info_costs_nonnegative(self, kmh, small_data_module):
        for query in small_data_module[:10]:
            _, costs = kmh.probe_info(query)
            assert (costs >= -1e-12).all()

    def test_probe_info_signature_matches_encode(self, kmh, small_data_module):
        query = small_data_module[7]
        signature, _ = kmh.probe_info(query)
        assert np.array_equal(
            unpack_bits(signature, 8), kmh.encode(query[np.newaxis, :])[0]
        )

    def test_flip_cost_is_codeword_distance_gap(self, kmh, small_data_module):
        """Appendix definition: cost_i = d(q, c_q') − d(q, c_q)."""
        query = small_data_module[3]
        signature, costs = kmh.probe_info(query)
        indices = kmh._block_indices(query[np.newaxis, :])[0]
        blocks = np.split(query[np.newaxis, :], kmh._splits, axis=1)
        for u in range(kmh.n_subspaces):
            codebook = kmh._codebooks[u]
            block = blocks[u][0]
            dists = np.linalg.norm(codebook - block, axis=1)
            for v in range(kmh.bits_per_subspace):
                expected = dists[int(indices[u]) ^ (1 << v)] - dists[int(indices[u])]
                assert costs[u * kmh.bits_per_subspace + v] == pytest.approx(
                    expected
                )

    def test_project_sign_recovers_code(self, kmh, small_data_module):
        query = small_data_module[2]
        projection = kmh.project(query[np.newaxis, :])[0]
        code = kmh.encode(query[np.newaxis, :])[0]
        nonzero = np.abs(projection) > 1e-12
        assert np.array_equal((projection[nonzero] > 0), code[nonzero] == 1)

    def test_similarity_preserving(self, kmh, small_data_module):
        codes = kmh.encode(small_data_module)
        dists = np.linalg.norm(small_data_module - small_data_module[9], axis=1)
        order = np.argsort(dists)
        near = np.mean([(codes[9] == codes[i]).mean() for i in order[1:15]])
        far = np.mean([(codes[9] == codes[i]).mean() for i in order[-15:]])
        assert near > far


class TestAssignmentRestarts:
    def test_restarts_never_worse(self):
        """Best-of-restarts affinity error <= single-run error."""
        from repro.hashing.kmh import (
            _affinity_error,
            _hamming_matrix,
            _pairwise_distances,
        )

        rng = np.random.default_rng(3)
        centers = rng.standard_normal((16, 6))
        counts = rng.integers(1, 20, size=16)

        def error_of(n_restarts):
            perm, scale = assign_indices(
                centers, counts,
                rng=np.random.default_rng(5),
                n_restarts=n_restarts,
            )
            distances = _pairwise_distances(centers)
            weights = np.outer(counts, counts).astype(np.float64)
            scaled = scale * np.sqrt(_hamming_matrix(16))
            return _affinity_error(distances, weights, perm, scaled)

        assert error_of(4) <= error_of(1) + 1e-9

    def test_restart_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            assign_indices(
                rng.standard_normal((4, 2)), np.ones(4), n_restarts=0
            )
