"""Tests for Multi-Index Hashing exact Hamming-range search."""

import numpy as np
import pytest

from repro.index.codes import hamming_distance, pack_bits
from repro.index.mih import MultiIndexHashing


@pytest.fixture(scope="module")
def codes():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2, size=(300, 12)).astype(np.uint8)


@pytest.fixture(scope="module")
def signatures(codes):
    return pack_bits(codes)


class TestConstruction:
    def test_block_count_bounds(self, codes):
        with pytest.raises(ValueError):
            MultiIndexHashing(codes, num_blocks=0)
        with pytest.raises(ValueError):
            MultiIndexHashing(codes, num_blocks=13)

    def test_rejects_1d_codes(self):
        with pytest.raises(ValueError):
            MultiIndexHashing(np.array([0, 1], dtype=np.uint8))

    def test_properties(self, codes):
        mih = MultiIndexHashing(codes, num_blocks=3)
        assert mih.code_length == 12
        assert mih.num_blocks == 3
        assert mih.num_items == 300


class TestRangeSearch:
    @pytest.mark.parametrize("num_blocks", [1, 2, 3, 4])
    @pytest.mark.parametrize("radius", [0, 1, 2, 4])
    def test_exact_r_ball(self, codes, signatures, num_blocks, radius):
        mih = MultiIndexHashing(codes, num_blocks=num_blocks)
        query = int(signatures[17])
        found = mih.neighbors_within(query, radius)
        expected = np.flatnonzero(
            hamming_distance(signatures, np.int64(query)) <= radius
        )
        assert np.array_equal(np.sort(found), expected)

    def test_candidates_superset_of_neighbors(self, codes, signatures):
        mih = MultiIndexHashing(codes, num_blocks=2)
        query = int(signatures[3])
        cand = set(mih.candidates_within(query, 3).tolist())
        exact = set(mih.neighbors_within(query, 3).tolist())
        assert exact <= cand

    def test_unseen_query_code(self, codes):
        mih = MultiIndexHashing(codes, num_blocks=2)
        # Radius m returns everything regardless of the query code.
        found = mih.neighbors_within(0, 12)
        assert len(found) == 300


class TestProbeIncreasing:
    def test_rings_partition_items(self, codes, signatures):
        mih = MultiIndexHashing(codes, num_blocks=2)
        query = int(signatures[0])
        collected = []
        for _r, ids in mih.probe_increasing(query):
            collected.extend(ids.tolist())
        assert sorted(collected) == list(range(300))

    def test_ring_distances_correct(self, codes, signatures):
        mih = MultiIndexHashing(codes, num_blocks=3)
        query = int(signatures[1])
        for r, ids in mih.probe_increasing(query, max_radius=5):
            if len(ids):
                dists = hamming_distance(signatures[ids], np.int64(query))
                assert (dists == r).all()

    def test_no_duplicates_across_rings(self, codes, signatures):
        mih = MultiIndexHashing(codes, num_blocks=2)
        seen = set()
        for _, ids in mih.probe_increasing(int(signatures[2])):
            batch = set(ids.tolist())
            assert not batch & seen
            seen |= batch
