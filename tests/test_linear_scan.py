"""Tests for exact linear-scan kNN."""

import numpy as np
import pytest

from repro.index.linear_scan import (
    LinearScan,
    euclidean_distances,
    knn_linear_scan,
)


class TestEuclideanDistances:
    def test_matches_norm(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((5, 8))
        x = rng.standard_normal((11, 8))
        expected = np.linalg.norm(q[:, None, :] - x[None, :, :], axis=2)
        assert np.allclose(euclidean_distances(q, x), expected)

    def test_zero_on_identical_points(self):
        x = np.ones((3, 4))
        d = euclidean_distances(x, x)
        assert np.allclose(np.diag(d), 0.0)

    def test_single_vector_inputs(self):
        d = euclidean_distances(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert d.shape == (1, 1)
        assert d[0, 0] == pytest.approx(5.0)

    def test_never_negative_under_cancellation(self):
        # Nearly identical large-magnitude points trigger cancellation.
        x = np.full((2, 4), 1e8)
        x[1] += 1e-4
        assert (euclidean_distances(x, x) >= 0).all()


class TestKnnLinearScan:
    def test_exactness_vs_bruteforce(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((200, 6))
        queries = rng.standard_normal((7, 6))
        ids, dists = knn_linear_scan(queries, data, k=5)
        full = np.linalg.norm(queries[:, None, :] - data[None, :, :], axis=2)
        for row in range(7):
            expected = np.sort(full[row])[:5]
            assert np.allclose(np.sort(dists[row]), expected)

    def test_sorted_ascending(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((100, 4))
        _, dists = knn_linear_scan(data[:3], data, k=10)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_self_is_first_neighbor(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((50, 4))
        ids, dists = knn_linear_scan(data[:5], data, k=1)
        assert ids.ravel().tolist() == [0, 1, 2, 3, 4]
        assert np.allclose(dists, 0.0)

    def test_ties_broken_by_id(self):
        data = np.zeros((4, 2))  # all identical -> all distances tie
        ids, _ = knn_linear_scan(np.zeros((1, 2)), data, k=3)
        assert ids[0].tolist() == [0, 1, 2]

    def test_k_bounds(self):
        data = np.zeros((4, 2))
        with pytest.raises(ValueError):
            knn_linear_scan(data[:1], data, k=0)
        with pytest.raises(ValueError):
            knn_linear_scan(data[:1], data, k=5)

    def test_blocking_invariant_to_block_size(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((60, 5))
        queries = rng.standard_normal((10, 5))
        ids_a, _ = knn_linear_scan(queries, data, k=4, block_size=3)
        ids_b, _ = knn_linear_scan(queries, data, k=4, block_size=1000)
        assert np.array_equal(ids_a, ids_b)


class TestLinearScanWrapper:
    def test_search_delegates(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((80, 3))
        scan = LinearScan(data)
        assert scan.num_items == 80
        ids, dists = scan.search(data[:2], k=3)
        assert ids.shape == (2, 3)
        assert ids[0, 0] == 0
