"""Equivalence of the closed-form LSH streams with naive simulations.

The QALSH and C2LSH implementations replace their papers' iterative
window-widening loops with an order-statistic formula (see the module
docstrings).  These tests re-implement the naive loops directly from
the papers' descriptions and check the emission order matches on small
instances — the strongest guard against a silent formula bug.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.c2lsh import C2LSH
from repro.index.qalsh import QALSH


def naive_qalsh_rounds(projections, anchors, threshold):
    """Reference: widen every list one item per round; an item is
    emitted at the round its collision count reaches the threshold."""
    n, m = projections.shape
    gaps = np.abs(projections - anchors[np.newaxis, :])
    emission = np.full(n, -1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    # Per-list visit order by gap (stable by id).
    orders = [np.lexsort((np.arange(n), gaps[:, i])) for i in range(m)]
    for round_index in range(n):
        for i in range(m):
            item = orders[i][round_index]
            counts[item] += 1
            if counts[item] == threshold:
                emission[item] = round_index
    return emission


def naive_c2lsh_radii(keys, anchors, threshold):
    """Reference: expand every projection's window by ±1 per round."""
    n, m = keys.shape
    emission = np.full(n, -1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    max_radius = int(np.abs(keys - anchors[np.newaxis, :]).max())
    for radius in range(max_radius + 1):
        newly_covered = np.abs(keys - anchors[np.newaxis, :]) == radius
        counts += newly_covered.sum(axis=1)
        ready = (counts >= threshold) & (emission < 0)
        emission[ready] = radius
    return emission


class TestQALSHEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_emission_rounds_match_naive(self, seed):
        rng = np.random.default_rng(seed)
        n, m, threshold = 40, 5, 3
        data = rng.standard_normal((n, 8))
        index = QALSH(
            data, n_projections=m, collision_threshold=threshold, seed=seed
        )
        query = rng.standard_normal(8)
        fast = index.emission_rounds(query)
        anchors = query @ index._directions
        naive = naive_qalsh_rounds(index._projections, anchors, threshold)
        assert np.array_equal(fast, naive)


class TestC2LSHEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_emission_radii_match_naive(self, seed):
        rng = np.random.default_rng(seed)
        n, m, threshold = 40, 5, 3
        data = rng.standard_normal((n, 8))
        index = C2LSH(
            data,
            n_projections=m,
            bucket_width=0.7,
            collision_threshold=threshold,
            seed=seed,
        )
        query = rng.standard_normal(8)
        fast = index.emission_radii(query)
        anchors = np.floor(
            (query @ index._directions + index._offsets) / index._widths
        ).astype(np.int64)
        naive = naive_c2lsh_radii(index._keys, anchors, threshold)
        assert np.array_equal(fast, naive)
