"""Property-based tests for the tree family."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.linear_scan import knn_linear_scan
from repro.trees.kdtree import KDTree
from repro.trees.kmeans_tree import KMeansTree
from repro.trees.randomized_forest import RandomizedKDForest


datasets = st.tuples(
    st.integers(20, 120),  # n
    st.integers(2, 6),  # d
    st.integers(0, 10_000),  # seed
)


class TestKDTreeProperties:
    @given(datasets, st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_always_exact(self, params, k):
        n, d, seed = params
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, d))
        k = min(k, n)
        tree = KDTree(data, leaf_size=4)
        query = rng.standard_normal(d)
        ids, dists = tree.query(query, k)
        expected_ids, expected_dists = knn_linear_scan(
            query[np.newaxis, :], data, k
        )
        assert np.array_equal(ids, expected_ids[0])
        assert np.allclose(dists, expected_dists[0], atol=1e-9)

    @given(datasets)
    @settings(max_examples=15, deadline=None)
    def test_distances_sorted(self, params):
        n, d, seed = params
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, d))
        tree = KDTree(data)
        _, dists = tree.query(rng.standard_normal(d), min(5, n))
        assert (np.diff(dists) >= -1e-12).all()


class TestApproximateTreeProperties:
    @given(datasets)
    @settings(max_examples=15, deadline=None)
    def test_forest_full_leaves_is_exhaustive(self, params):
        """With an unbounded leaf budget the forest sees every point, so
        its answer equals exact search."""
        n, d, seed = params
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, d))
        forest = RandomizedKDForest(data, n_trees=2, leaf_size=4, seed=seed)
        query = rng.standard_normal(d)
        k = min(5, n)
        ids, _ = forest.query(query, k, max_leaves=10_000)
        expected, _ = knn_linear_scan(query[np.newaxis, :], data, k)
        assert np.array_equal(ids, expected[0])

    @given(datasets)
    @settings(max_examples=10, deadline=None)
    def test_kmeans_tree_full_leaves_is_exhaustive(self, params):
        n, d, seed = params
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, d))
        tree = KMeansTree(data, branching=3, leaf_size=4, seed=seed)
        query = rng.standard_normal(d)
        k = min(5, n)
        ids, _ = tree.query(query, k, max_leaves=10_000)
        expected, _ = knn_linear_scan(query[np.newaxis, :], data, k)
        assert np.array_equal(ids, expected[0])
