"""Tests for classic E2LSH with original Multi-Probe probing."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.index.e2lsh import E2LSH
from repro.index.linear_scan import knn_linear_scan
from repro.search.stream_index import StreamSearchIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1200, 16, n_clusters=10, seed=101)


@pytest.fixture(scope="module")
def index(data):
    return E2LSH(data, n_tables=4, n_components=6, bucket_width=1.0, seed=0)


class TestConstruction:
    def test_validation(self, data):
        with pytest.raises(ValueError):
            E2LSH(data, n_tables=0)
        with pytest.raises(ValueError):
            E2LSH(data, n_components=0)
        with pytest.raises(ValueError):
            E2LSH(data, bucket_width=0)
        with pytest.raises(ValueError):
            E2LSH(np.zeros(5))

    def test_properties(self, index, data):
        assert index.num_items == len(data)
        assert index.n_tables == 4


class TestClassicProbing:
    def test_anchor_only_probes_l_buckets(self, index, data):
        batches = list(index.candidate_stream(data[0], multiprobe=False))
        assert 1 <= len(batches) <= 4

    def test_anchor_buckets_contain_query_point(self, index, data):
        found = np.concatenate(
            list(index.candidate_stream(data[7], multiprobe=False))
        )
        assert 7 in found


class TestMultiProbe:
    def test_no_duplicate_candidates(self, index, data):
        batches = []
        total = 0
        for ids in index.candidate_stream(data[0]):
            batches.extend(ids.tolist())
            total += len(ids)
            if total > 600:
                break
        assert len(batches) == len(set(batches))

    def test_multiprobe_extends_classic(self, index, data):
        """Multi-probe finds strictly more candidates than anchors only."""
        classic = sum(
            len(ids)
            for ids in index.candidate_stream(data[3], multiprobe=False)
        )
        extended = 0
        for ids in index.candidate_stream(data[3], multiprobe=True):
            extended += len(ids)
            if extended > classic + 50:
                break
        assert extended > classic

    def test_early_candidates_are_near(self, index, data):
        query = data[11]
        first = []
        for ids in index.candidate_stream(query):
            first.extend(ids.tolist())
            if len(first) >= 50:
                break
        near = np.linalg.norm(data[first] - query, axis=1).mean()
        overall = np.linalg.norm(data - query, axis=1).mean()
        assert near < overall

    def _first_perturbations(self, index, data, count):
        _, down, up = index._query_state(data[0], 0)
        sequence = index._perturbation_sequence(down, up)
        return [next(sequence) for _ in range(count)]

    def test_perturbations_never_reuse_component(self, index, data):
        """Validity rule: a perturbation set touches each hash component
        at most once."""
        for _, moves in self._first_perturbations(index, data, 200):
            components = [component for component, _ in moves]
            assert len(components) == len(set(components))

    def test_perturbation_scores_non_decreasing(self, index, data):
        scores = [
            score for score, _ in self._first_perturbations(index, data, 100)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_good_recall_with_multiprobe(self, data):
        index = StreamSearchIndex(
            E2LSH(data, n_tables=6, n_components=6, seed=0), data
        )
        truth, _ = knn_linear_scan(data[:15], data, 10)
        hits = 0
        for qi in range(15):
            result = index.search(data[qi], k=10, n_candidates=200)
            hits += len(np.intersect1d(result.ids, truth[qi]))
        assert hits / 150 > 0.5


class TestClassicVsMultiprobeRelationship:
    def test_multiprobe_candidates_superset_of_classic(self, index, data):
        """The anchor buckets come first in both modes, so the classic
        candidate set is a prefix-subset of the multi-probe stream."""
        query = data[21]
        classic = set(
            int(i)
            for ids in index.candidate_stream(query, multiprobe=False)
            for i in ids
        )
        extended = set()
        for ids in index.candidate_stream(query, multiprobe=True):
            extended.update(int(i) for i in ids)
            if classic <= extended:
                break
        assert classic <= extended
