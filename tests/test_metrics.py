"""Tests for recall/precision metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    mean_recall,
    precision,
    recall,
    recall_from_candidates,
)


class TestRecall:
    def test_full_overlap(self):
        assert recall(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial_overlap(self):
        assert recall(np.array([1, 9, 8]), np.array([1, 2, 3])) == pytest.approx(
            1 / 3
        )

    def test_no_overlap(self):
        assert recall(np.array([7, 8]), np.array([1, 2])) == 0.0

    def test_empty_returned(self):
        assert recall(np.array([]), np.array([1, 2])) == 0.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            recall(np.array([1]), np.array([]))

    def test_duplicates_not_double_counted(self):
        assert recall(np.array([1, 1, 1]), np.array([1, 2])) == 0.5


class TestMeanRecall:
    def test_averages(self):
        truth = np.array([[1, 2], [3, 4]])
        returned = [np.array([1, 2]), np.array([3, 9])]
        assert mean_recall(returned, truth) == pytest.approx(0.75)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            mean_recall([np.array([1])], np.array([[1], [2]]))


class TestPrecision:
    def test_values(self):
        assert precision(5, 10) == 0.5
        assert precision(0, 10) == 0.0

    def test_zero_retrieved(self):
        assert precision(3, 0) == 0.0


class TestRecallFromCandidates:
    def test_equals_overlap(self):
        candidates = np.array([4, 5, 6, 7])
        truth = np.array([5, 9])
        assert recall_from_candidates(candidates, truth) == 0.5
