"""Tests for recall/precision and the rank-aware IR metrics.

The MRR@k and NDCG@k cases are pinned against hand-computed values
(worked out from the definitions, not from the implementation) so a
regression in the discount or the ideal-DCG normalisation cannot slip
through as an "equally plausible" number.
"""

import numpy as np
import pytest

from repro.eval.ir_report import format_ir_report, ir_report
from repro.eval.metrics import (
    mean_mrr_at_k,
    mean_ndcg_at_k,
    mean_recall,
    mean_recall_at_k,
    mrr_at_k,
    ndcg_at_k,
    precision,
    recall,
    recall_at_k,
    recall_from_candidates,
)


class TestRecall:
    def test_full_overlap(self):
        assert recall(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial_overlap(self):
        assert recall(np.array([1, 9, 8]), np.array([1, 2, 3])) == pytest.approx(
            1 / 3
        )

    def test_no_overlap(self):
        assert recall(np.array([7, 8]), np.array([1, 2])) == 0.0

    def test_empty_returned(self):
        assert recall(np.array([]), np.array([1, 2])) == 0.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            recall(np.array([1]), np.array([]))

    def test_duplicates_not_double_counted(self):
        assert recall(np.array([1, 1, 1]), np.array([1, 2])) == 0.5


class TestMeanRecall:
    def test_averages(self):
        truth = np.array([[1, 2], [3, 4]])
        returned = [np.array([1, 2]), np.array([3, 9])]
        assert mean_recall(returned, truth) == pytest.approx(0.75)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            mean_recall([np.array([1])], np.array([[1], [2]]))


class TestPrecision:
    def test_values(self):
        assert precision(5, 10) == 0.5
        assert precision(0, 10) == 0.0

    def test_zero_retrieved(self):
        assert precision(3, 0) == 0.0


class TestRecallFromCandidates:
    def test_equals_overlap(self):
        candidates = np.array([4, 5, 6, 7])
        truth = np.array([5, 9])
        assert recall_from_candidates(candidates, truth) == 0.5


class TestRecallAtK:
    def test_only_top_k_counts(self):
        returned = np.array([9, 8, 1, 2])
        truth = np.array([1, 2])
        assert recall_at_k(returned, truth, k=2) == 0.0
        assert recall_at_k(returned, truth, k=4) == 1.0

    def test_k_validated(self):
        with pytest.raises(ValueError, match="k"):
            recall_at_k(np.array([1]), np.array([1]), k=0)


class TestMRRAtK:
    def test_hand_computed_ranks(self):
        truth = np.array([7, 8])
        # First relevant at rank 1 → 1.0.
        assert mrr_at_k(np.array([7, 1, 2]), truth, k=10) == 1.0
        # First relevant at rank 3 → 1/3.
        assert mrr_at_k(
            np.array([1, 2, 8, 7]), truth, k=10
        ) == pytest.approx(1 / 3)
        # Relevant item beyond the cutoff does not count.
        assert mrr_at_k(np.array([1, 2, 8]), truth, k=2) == 0.0

    def test_no_relevant_returns_zero(self):
        assert mrr_at_k(np.array([1, 2, 3]), np.array([9]), k=3) == 0.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError, match="truth"):
            mrr_at_k(np.array([1]), np.array([]), k=1)

    def test_mean_mrr(self):
        truth = np.array([[1], [2]])
        returned = [np.array([1, 5]), np.array([5, 2])]
        # Per-query: 1/1 and 1/2 → mean 0.75.
        assert mean_mrr_at_k(returned, truth, k=2) == pytest.approx(0.75)


class TestNDCGAtK:
    def test_perfect_ordering_is_one(self):
        truth = np.array([3, 1, 2])
        assert ndcg_at_k(np.array([1, 2, 3]), truth, k=3) == pytest.approx(
            1.0
        )

    def test_hand_computed_single_hit_at_rank_two(self):
        # DCG = 1/log2(3) (hit at 0-based position 1); |truth| = 1 so
        # IDCG = 1/log2(2) = 1.  NDCG = 1/log2(3) ≈ 0.63093.
        got = ndcg_at_k(np.array([5, 1, 6]), np.array([1]), k=3)
        assert got == pytest.approx(1.0 / np.log2(3.0))

    def test_hand_computed_two_hits(self):
        # Hits at positions 0 and 2 of [1, 9, 2]; truth = {1, 2}.
        # DCG = 1/log2(2) + 1/log2(4) = 1 + 0.5 = 1.5.
        # IDCG (2 relevant in top-3) = 1/log2(2) + 1/log2(3).
        want = 1.5 / (1.0 + 1.0 / np.log2(3.0))
        got = ndcg_at_k(np.array([1, 9, 2]), np.array([1, 2]), k=3)
        assert got == pytest.approx(want)

    def test_ideal_truncates_to_k(self):
        # 5 relevant items but k=2: a list with 2 hits is perfect.
        truth = np.arange(5)
        assert ndcg_at_k(np.array([0, 1]), truth, k=2) == pytest.approx(1.0)

    def test_no_hits_is_zero(self):
        assert ndcg_at_k(np.array([9, 8]), np.array([1]), k=2) == 0.0

    def test_mean_ndcg_and_recall(self):
        truth = np.array([[1], [2]])
        returned = [np.array([1, 5]), np.array([5, 2])]
        want_ndcg = (1.0 + 1.0 / np.log2(3.0)) / 2
        assert mean_ndcg_at_k(returned, truth, k=2) == pytest.approx(
            want_ndcg
        )
        assert mean_recall_at_k(returned, truth, k=2) == pytest.approx(1.0)
        assert mean_recall_at_k(returned, truth, k=1) == pytest.approx(0.5)


class TestIRReport:
    def test_report_shape_and_values(self):
        truth = np.array([[1], [2]])
        report = ir_report(
            {
                "perfect": [np.array([1, 9]), np.array([2, 9])],
                "offset": [np.array([9, 1]), np.array([9, 2])],
            },
            truth,
            k=2,
        )
        assert set(report) == {"perfect", "offset"}
        assert set(report["perfect"]) == {"mrr@2", "recall@2", "ndcg@2"}
        assert report["perfect"]["mrr@2"] == pytest.approx(1.0)
        assert report["perfect"]["ndcg@2"] == pytest.approx(1.0)
        assert report["offset"]["mrr@2"] == pytest.approx(0.5)
        assert report["offset"]["recall@2"] == pytest.approx(1.0)

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            ir_report({}, np.array([[1]]), k=1)
        with pytest.raises(ValueError):
            format_ir_report({})

    def test_format_renders_all_pipelines(self):
        truth = np.array([[1]])
        report = ir_report(
            {"a": [np.array([1])], "b": [np.array([2])]}, truth, k=1
        )
        text = format_ir_report(report)
        assert "pipeline" in text
        assert "mrr@1" in text
        for name in ("a", "b"):
            assert name in text
