"""Flash-crowd acceptance invariants for the serving front door.

The ISSUE-level contract, pinned deterministically in virtual time on a
seeded 10x flash-crowd trace:

* the front door never raises — every offered request resolves to
  exactly one ``served`` / ``served_degraded`` / ``rejected`` response
  with a machine-readable reason;
* the interactive lane's achieved p99 stays within its declared SLO;
* goodput through the crowd stays at or above 80% of the serial
  capacity (graceful degradation, not collapse);
* every completed request met its deadline (the simulator drops
  infeasible tickets instead of serving them late);
* all shed/degrade/reject decisions are visible in the SLO report and,
  under a telemetry session, as ``repro_serving_*`` series.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.data.workloads import FlashCrowd, traffic_trace
from repro.hashing import ITQ
from repro.search import HashIndex
from repro.serving import (
    REJECT_REASONS,
    SLO_REPORT_SCHEMA,
    STATUSES,
    ServingSimulator,
    default_config,
    format_slo_report,
    measure_serial_cost,
    slo_report,
    validate_slo_report,
)

#: Virtual serial capacity: 800 full-fidelity queries per second.
PER_QUERY_COST = 1.25e-3
CAPACITY_QPS = 1.0 / PER_QUERY_COST
CROWD = FlashCrowd(start=1.5, duration=1.5, multiplier=10.0)
BASE_RATE = 300.0
DURATION = 4.0
SEED = 7


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(600, 16, n_clusters=6, seed=17)


@pytest.fixture(scope="module")
def queries(data):
    return sample_queries(data, 64, seed=3)


@pytest.fixture(scope="module")
def index(data):
    return HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())


@pytest.fixture(scope="module")
def trace(queries):
    return traffic_trace(
        duration=DURATION, base_rate=BASE_RATE, n_distinct=len(queries),
        seed=SEED, flash_crowds=(CROWD,),
    )


@pytest.fixture(scope="module")
def crowd_sim(index, queries, trace):
    """One seeded 10x flash-crowd run, shared by the invariant tests."""
    simulator = ServingSimulator(index, per_query_cost=PER_QUERY_COST)
    plan = index.plan(k=5, n_candidates=100)
    return simulator.run_open(trace, queries, plan)


class TestAcceptanceInvariants:
    def test_every_request_resolves_exactly_once(self, crowd_sim, trace):
        assert len(crowd_sim) == len(trace)
        statuses = crowd_sim.by_status()
        assert sum(statuses.values()) == len(trace)
        assert set(statuses) <= set(STATUSES)
        for reason in crowd_sim.by_reason():
            assert reason in REJECT_REASONS

    def test_crowd_actually_overloads(self, crowd_sim, trace):
        # The trace must offer far beyond capacity inside the crowd —
        # otherwise the invariants below hold vacuously.
        offered = trace.offered_rate(CROWD.start, CROWD.start + CROWD.duration)
        assert offered > 2 * CAPACITY_QPS
        assert crowd_sim.by_status().get("served_degraded", 0) > 0
        assert crowd_sim.by_reason().get("shed", 0) > 0

    def test_interactive_p99_within_slo(self, crowd_sim):
        latencies = crowd_sim.served_latencies("interactive")
        assert len(latencies) > 100
        slo = default_config().lane("interactive").slo
        assert np.percentile(latencies, 99) <= slo.p99_seconds

    def test_crowd_goodput_at_least_80_percent_of_serial(self, crowd_sim):
        goodput = crowd_sim.goodput(CROWD.start, CROWD.start + CROWD.duration)
        assert goodput >= 0.8 * CAPACITY_QPS

    def test_every_completion_met_its_deadline(self, crowd_sim):
        for record in crowd_sim.records:
            if record.response.served:
                assert record.response.deadline_met

    def test_degradation_bought_capacity(self, crowd_sim):
        # Degraded completions ran a genuinely cheaper plan: coverage
        # strictly below 1 and a positive degrade level.
        degraded = [
            r.response for r in crowd_sim.records
            if r.response.status == "served_degraded"
        ]
        assert degraded
        for response in degraded:
            assert 0 < response.coverage < 1
            assert response.degrade_level > 0
            assert response.result.extras["degraded"] is True


class TestDeterminism:
    def test_same_seed_same_outcome(self, index, queries, trace):
        plan = index.plan(k=5, n_candidates=100)

        def outcome():
            simulator = ServingSimulator(
                index, per_query_cost=PER_QUERY_COST
            )
            sim = simulator.run_open(trace, queries, plan)
            return [
                (r.arrival, r.resolved, r.response.status,
                 r.response.reason)
                for r in sim.records
            ]

        assert outcome() == outcome()


class TestSLOReport:
    def test_report_is_valid_and_json_serialisable(self, crowd_sim):
        report = slo_report(
            crowd_sim, serial_capacity_qps=CAPACITY_QPS,
            flash_crowds=(CROWD,),
        )
        validate_slo_report(report)
        assert report["schema"] == SLO_REPORT_SCHEMA
        parsed = json.loads(json.dumps(report))
        assert parsed["offered"] == len(crowd_sim)

    def test_decisions_visible_in_report(self, crowd_sim):
        report = slo_report(
            crowd_sim, serial_capacity_qps=CAPACITY_QPS,
            flash_crowds=(CROWD,),
        )
        assert report["served_degraded"] > 0
        assert report["rejected_by_reason"]["shed"] > 0
        assert report["overload"]["degraded_total"] > 0
        (window,) = report["overload"]["windows"]
        assert window["multiplier"] == CROWD.multiplier
        assert window["goodput_vs_serial"] >= 0.8
        assert report["counters"], "decision counters must be exported"

    def test_declared_vs_achieved_quantiles_per_lane(self, crowd_sim):
        report = slo_report(crowd_sim)
        for lane in ("interactive", "batch"):
            block = report["lanes"][lane]
            for key in ("p50_ms", "p99_ms", "p999_ms"):
                assert block["declared"][key] > 0
                assert block["achieved"][key] is not None
        assert report["lanes"]["interactive"]["slo_met"] is True

    def test_format_renders_every_section(self, crowd_sim):
        report = slo_report(
            crowd_sim, serial_capacity_qps=CAPACITY_QPS,
            flash_crowds=(CROWD,),
        )
        text = format_slo_report(report)
        assert "goodput" in text
        assert "interactive" in text and "batch" in text
        assert "shed" in text
        assert "flash crowd @1.5s x10" in text

    def test_validation_catches_missing_pieces(self, crowd_sim):
        report = slo_report(crowd_sim)
        with pytest.raises(ValueError, match="schema"):
            validate_slo_report({**report, "schema": "other/v0"})
        broken = dict(report)
        del broken["rejected_by_reason"]
        with pytest.raises(ValueError, match="missing top-level"):
            validate_slo_report(broken)
        broken = {**report, "rejected_by_reason": {}}
        with pytest.raises(ValueError, match="rejection-reason"):
            validate_slo_report(broken)
        broken = {**report, "offered": report["offered"] + 1}
        with pytest.raises(ValueError, match="partition"):
            validate_slo_report(broken)


class TestTelemetry:
    def test_serving_series_populated(self, index, queries):
        trace = traffic_trace(
            duration=1.0, base_rate=200.0, n_distinct=len(queries),
            seed=11, flash_crowds=(FlashCrowd(0.3, 0.5, 8.0),),
        )
        plan = index.plan(k=5, n_candidates=100)
        simulator = ServingSimulator(index, per_query_cost=2e-3)
        with obs.telemetry_session() as t:
            sim = simulator.run_open(trace, queries, plan)
            requests = t.registry.get("repro_serving_requests_total")
            served = t.registry.get("repro_serving_served_total")
            total = sum(
                child.value for _, child in requests.samples()
            )
            assert total == len(sim)
            assert sum(
                child.value for _, child in served.samples()
            ) > 0
            report = slo_report(sim, registry=t.registry)
        validate_slo_report(report)
        metrics = {row["metric"] for row in report["counters"]}
        assert "repro_serving_requests_total" in metrics

    def test_silent_without_session(self, crowd_sim):
        # The module fixture ran with telemetry disabled: stats flow
        # through core tallies and nothing crashed.
        assert crowd_sim.core_stats["batches"] > 0


class TestClosedLoop:
    def test_clients_respect_backpressure(self, index, queries):
        simulator = ServingSimulator(index, per_query_cost=1e-3)
        plan = index.plan(k=5, n_candidates=100)
        sim = simulator.run_closed(
            queries, plan, n_clients=4, n_requests=100,
            think_seconds=0.002, seed=0,
        )
        assert len(sim) == 100
        # Four clients with think time offer well under capacity:
        # everything serves, nothing degrades.
        assert sim.by_status() == {"served": 100}
        assert sim.accepted_fraction() == 1.0

    def test_validation(self, index, queries):
        simulator = ServingSimulator(index)
        plan = index.plan(k=5, n_candidates=100)
        with pytest.raises(ValueError, match="positive"):
            simulator.run_closed(queries, plan, n_clients=0, n_requests=5)
        with pytest.raises(ValueError, match="per_query_cost"):
            ServingSimulator(index, per_query_cost=0.0)
        with pytest.raises(ValueError, match="batch_overhead"):
            ServingSimulator(index, batch_overhead=-1.0)


class TestSerialCalibration:
    def test_measured_cost_is_positive_and_finite(self, index, queries):
        plan = index.plan(k=5, n_candidates=100)
        cost = measure_serial_cost(index, plan, queries[:16])
        assert 0 < cost < 1.0

    def test_needs_candidate_budget(self, index, queries):
        with pytest.raises(ValueError, match="candidate budget"):
            measure_serial_cost(
                index, index.plan(k=5, max_buckets=4), queries[:4]
            )
