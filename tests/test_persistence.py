"""Tests for index save/load."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.data import gaussian_mixture
from repro.hashing import (
    ITQ,
    KMeansHashing,
    PCAHashing,
    RandomProjectionLSH,
    SpectralHashing,
)
from repro.io.persistence import load_index, save_index
from repro.probing import HammingRanking, MultiProbeLSH
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(800, 16, n_clusters=8, seed=4)


def roundtrip(index, tmp_path):
    path = save_index(index, tmp_path / "index")
    return load_index(path)


def _rewrite_manifest(path, updates):
    """Patch manifest fields in a saved archive (``None`` deletes)."""
    import json

    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files}
    manifest = json.loads(bytes(arrays["manifest"]).decode())
    for key, value in updates.items():
        if value is None:
            manifest.pop(key, None)
        else:
            manifest[key] = value
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


@pytest.mark.parametrize(
    "hasher_factory",
    [
        lambda: ITQ(code_length=6, seed=0),
        lambda: PCAHashing(code_length=6),
        lambda: RandomProjectionLSH(code_length=6, seed=1),
        lambda: SpectralHashing(code_length=6),
        lambda: KMeansHashing(code_length=8, bits_per_subspace=4, seed=0),
    ],
    ids=["itq", "pcah", "lsh", "sh", "kmh"],
)
def test_roundtrip_preserves_results(tmp_path, data, hasher_factory):
    index = HashIndex(hasher_factory(), data, prober=GQR())
    restored = roundtrip(index, tmp_path)
    query = data[7]
    original = index.search(query, k=10, n_candidates=200)
    rebuilt = restored.search(query, k=10, n_candidates=200)
    assert np.array_equal(original.ids, rebuilt.ids)
    assert np.allclose(original.distances, rebuilt.distances)


class TestManifest:
    def test_metric_preserved(self, tmp_path, data):
        index = HashIndex(ITQ(code_length=6, seed=0), data, metric="angular")
        restored = roundtrip(index, tmp_path)
        assert restored.metric == "angular"

    def test_prober_type_preserved(self, tmp_path, data):
        for prober, cls in [
            (HammingRanking(), HammingRanking),
            (QDRanking(), QDRanking),
            (MultiProbeLSH(), MultiProbeLSH),
        ]:
            index = HashIndex(ITQ(code_length=6, seed=0), data, prober=prober)
            restored = roundtrip(index, tmp_path)
            assert type(restored.prober) is cls

    def test_multi_table_roundtrip(self, tmp_path, data):
        hashers = [ITQ(code_length=6, seed=s) for s in (0, 1)]
        index = HashIndex(hashers, data, prober=GQR())
        restored = roundtrip(index, tmp_path)
        assert restored.num_tables == 2
        query = data[3]
        a = index.search(query, 5, 100)
        b = restored.search(query, 5, 100)
        assert np.array_equal(a.ids, b.ids)

    def test_npz_suffix_added(self, tmp_path, data):
        index = HashIndex(ITQ(code_length=6, seed=0), data)
        path = save_index(index, tmp_path / "myindex")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_early_stop_works_after_restore(self, tmp_path, data):
        """Restored ITQ must still count as a ProjectionHasher."""
        index = HashIndex(ITQ(code_length=6, seed=0), data, prober=GQR())
        restored = roundtrip(index, tmp_path)
        result = restored.search_early_stop(data[0], k=5)
        assert len(result.ids) == 5

    def test_bad_format_version_rejected(self, tmp_path, data):
        index = HashIndex(ITQ(code_length=6, seed=0), data)
        path = save_index(index, tmp_path / "index")
        _rewrite_manifest(path, {"format_version": 999})
        with pytest.raises(ValueError):
            load_index(path)

    def test_multi_table_strategy_preserved(self, tmp_path, data):
        # Regression: the strategy was dropped from the manifest, so a
        # qd_merge index silently came back as round_robin.
        hashers = [ITQ(code_length=6, seed=s) for s in (0, 1)]
        index = HashIndex(
            hashers, data, prober=GQR(), multi_table_strategy="qd_merge"
        )
        restored = roundtrip(index, tmp_path)
        assert restored.multi_table_strategy == "qd_merge"
        query = data[3]
        a = index.search(query, 5, 100)
        b = restored.search(query, 5, 100)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_version1_archive_defaults_to_round_robin(self, tmp_path, data):
        # A pre-PR-5 archive has neither the field nor version 2; it
        # must load with the historical default, not crash.
        index = HashIndex(ITQ(code_length=6, seed=0), data)
        path = save_index(index, tmp_path / "index")
        _rewrite_manifest(
            path, {"format_version": 1, "multi_table_strategy": None}
        )
        restored = load_index(path)
        assert restored.multi_table_strategy == "round_robin"

    def test_future_version_error_names_supported_versions(
        self, tmp_path, data
    ):
        from repro.io.persistence import SUPPORTED_VERSIONS

        index = HashIndex(ITQ(code_length=6, seed=0), data)
        path = save_index(index, tmp_path / "index")
        _rewrite_manifest(path, {"format_version": 999})
        with pytest.raises(ValueError, match="999") as excinfo:
            load_index(path)
        for version in SUPPORTED_VERSIONS:
            assert str(version) in str(excinfo.value)


class TestUnsupportedComponents:
    def test_unsupported_prober_rejected(self, tmp_path, data):
        from repro.core.prober import BucketProber

        class CustomProber(BucketProber):
            def probe(self, table, signature, flip_costs):
                return iter([])

        index = HashIndex(ITQ(code_length=6, seed=0), data,
                          prober=CustomProber())
        with pytest.raises(TypeError):
            save_index(index, tmp_path / "index")

    def test_unfitted_index_components_roundtrip_queries(self, tmp_path, data):
        """Loading must not require refitting: a restored hasher that is
        asked to refit raises instead of silently retraining."""
        index = HashIndex(ITQ(code_length=6, seed=0), data, prober=GQR())
        restored = roundtrip(index, tmp_path)
        hasher = restored._hashers[0]
        assert hasher.is_fitted
        # encode still works without any training data around
        codes = hasher.encode(data[:3])
        assert codes.shape == (3, 6)


class TestSSHPersistence:
    def test_ssh_roundtrips_as_projection_hasher(self, tmp_path, data):
        """SSH has no dedicated manifest kind; it restores as a generic
        projection hasher with identical search behaviour."""
        from repro.hashing.ssh import SemiSupervisedHashing, pairs_from_neighbors

        similar, dissimilar = pairs_from_neighbors(data, n_anchors=20, seed=0)
        ssh = SemiSupervisedHashing(
            code_length=6, similar_pairs=similar, dissimilar_pairs=dissimilar
        )
        index = HashIndex(ssh, data, prober=GQR())
        restored = roundtrip(index, tmp_path)
        query = data[4]
        a = index.search(query, 5, 100)
        b = restored.search(query, 5, 100)
        assert np.array_equal(a.ids, b.ids)
        # Theorem 2 machinery still available on the restored hasher.
        assert restored._hashers[0].spectral_bound() > 0
