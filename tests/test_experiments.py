"""Tests for the programmatic experiment runner."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    list_experiments,
    prober_curves,
    run_experiment,
)


class TestRegistry:
    def test_all_core_exhibits_registered(self):
        expected = {
            "table1", "fig02", "fig06", "fig07", "fig08", "fig09",
            "fig13", "fig15", "fig17", "table2", "fig20",
        }
        assert expected <= set(EXPERIMENTS)

    def test_list_experiments_descriptions(self):
        listing = list_experiments()
        assert all(isinstance(v, str) and v for v in listing.values())

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestContext:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale=0)
        with pytest.raises(ValueError):
            ExperimentContext(k=0)

    def test_workload_memoised(self):
        ctx = ExperimentContext(scale=0.05)
        a = ctx.workload("CIFAR60K")
        b = ctx.workload("CIFAR60K")
        assert a[1] is b[1]

    def test_hasher_memoised(self):
        ctx = ExperimentContext(scale=0.05)
        assert ctx.hasher("CIFAR60K", "itq") is ctx.hasher("CIFAR60K", "itq")

    def test_unknown_hasher_algo(self):
        ctx = ExperimentContext(scale=0.05)
        with pytest.raises(ValueError):
            ctx.hasher("CIFAR60K", "nope")


class TestRunners:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(scale=0.05, k=5)

    def test_table1_report(self, ctx):
        report = run_experiment("table1", context=ctx)
        assert "CIFAR60K" in report and "linear search" in report

    def test_fig02_combinatorics(self, ctx):
        report = run_experiment("fig02", context=ctx)
        assert "184756" in report  # C(20, 10)

    def test_fig07_curves(self, ctx):
        report = run_experiment("fig07", context=ctx)
        for label in ("GQR", "GHR", "HR", "recall"):
            assert label in report

    def test_prober_curves_structure(self, ctx):
        curves = prober_curves(ctx, "CIFAR60K", "itq")
        assert set(curves) == {"GQR", "GHR", "HR"}
        for curve in curves.values():
            assert all(0 <= p.recall <= 1 for p in curve)

    def test_fig20_kmh(self, ctx):
        report = run_experiment("fig20", context=ctx)
        assert "KMH" in report


class TestMoreRunners:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(scale=0.04, k=5)

    def test_fig06_report(self, ctx):
        report = run_experiment("fig06", context=ctx)
        assert "GQR" in report and "QR" in report

    def test_fig08_report(self, ctx):
        report = run_experiment("fig08", context=ctx)
        assert "# items" in report

    def test_fig09_report(self, ctx):
        report = run_experiment("fig09", context=ctx)
        assert "80%" in report

    def test_table2_report(self, ctx):
        report = run_experiment("table2", context=ctx)
        assert "OPQ wall (s)" in report

    def test_fig17_report(self, ctx):
        report = run_experiment("fig17", context=ctx)
        assert "OPQ+IMI" in report and "PCAH+GQR" in report
