"""Tests for the one-call method comparison."""

import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, ground_truth_knn
from repro.eval.comparison import compare_methods
from repro.hashing import ITQ
from repro.probing import GenerateHammingRanking
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_mixture(2000, 16, n_clusters=14,
                            cluster_spread=1.0, seed=141)
    queries = data[:40]
    truth = ground_truth_knn(queries, data, 10)
    hasher = ITQ(code_length=8, seed=0).fit(data)
    indexes = {
        "GQR": HashIndex(hasher, data, prober=GQR()),
        "GHR": HashIndex(hasher, data, prober=GenerateHammingRanking()),
    }
    return queries, truth, indexes


class TestCompareMethods:
    def test_gqr_wins_significantly(self, setup):
        queries, truth, indexes = setup
        comparison = compare_methods(indexes, queries, truth, 10, 120)
        assert comparison.best == "GQR"
        assert comparison.tests["GQR"] is None
        ghr_test = comparison.tests["GHR"]
        assert ghr_test.mean_difference > 0

    def test_per_query_shapes(self, setup):
        queries, truth, indexes = setup
        comparison = compare_methods(indexes, queries, truth, 10, 120)
        for recalls in comparison.per_query.values():
            assert recalls.shape == (len(queries),)
            assert (recalls >= 0).all() and (recalls <= 1).all()

    def test_ci_brackets_mean(self, setup):
        queries, truth, indexes = setup
        comparison = compare_methods(indexes, queries, truth, 10, 120)
        for method in indexes:
            lo, hi = comparison.ci[method]
            assert lo <= comparison.mean(method) <= hi

    def test_to_table_renders(self, setup):
        queries, truth, indexes = setup
        comparison = compare_methods(indexes, queries, truth, 10, 120)
        table = comparison.to_table()
        assert "(best)" in table and "95% CI" in table

    def test_identical_methods_tie(self, setup):
        queries, truth, indexes = setup
        same = {"a": indexes["GQR"], "b": indexes["GQR"]}
        comparison = compare_methods(same, queries, truth, 10, 120)
        loser = "b" if comparison.best == "a" else "a"
        assert not comparison.tests[loser].significant

    def test_validation(self, setup):
        queries, truth, indexes = setup
        with pytest.raises(ValueError):
            compare_methods({}, queries, truth, 10, 100)
        with pytest.raises(ValueError):
            compare_methods(indexes, queries, truth[:3], 10, 100)
