"""Tests for MIH's exact Hamming kNN mode."""

import numpy as np
import pytest

from repro.index.codes import hamming_distance, pack_bits
from repro.index.mih import MultiIndexHashing


@pytest.fixture(scope="module")
def codes():
    rng = np.random.default_rng(5)
    return rng.integers(0, 2, size=(250, 10)).astype(np.uint8)


@pytest.fixture(scope="module")
def mih(codes):
    return MultiIndexHashing(codes, num_blocks=2)


class TestKnnHamming:
    def test_exact_against_bruteforce(self, mih, codes):
        signatures = pack_bits(codes)
        rng = np.random.default_rng(6)
        for _ in range(5):
            query = int(rng.integers(0, 1 << 10))
            ids, dists = mih.knn_hamming(query, k=7)
            brute = hamming_distance(signatures, np.int64(query))
            expected_order = np.lexsort((np.arange(len(brute)), brute))[:7]
            assert np.array_equal(ids, expected_order)
            assert np.array_equal(dists, brute[expected_order])

    def test_distances_non_decreasing(self, mih, codes):
        query = int(pack_bits(codes[0]))
        _, dists = mih.knn_hamming(query, k=20)
        assert (np.diff(dists) >= 0).all()

    def test_k_equals_n(self, mih, codes):
        ids, _ = mih.knn_hamming(0, k=len(codes))
        assert sorted(ids.tolist()) == list(range(len(codes)))

    def test_k_validation(self, mih):
        with pytest.raises(ValueError):
            mih.knn_hamming(0, k=0)
        with pytest.raises(ValueError):
            mih.knn_hamming(0, k=10_000)

    def test_self_code_first(self, mih, codes):
        query = int(pack_bits(codes[3]))
        ids, dists = mih.knn_hamming(query, k=1)
        assert dists[0] == 0
