"""Tests for the code-length tuner."""

import pytest

from repro.data import gaussian_mixture, ground_truth_knn
from repro.eval.tuning import tune_code_length
from repro.hashing import ITQ


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(1500, 16, n_clusters=10,
                            cluster_spread=1.0, seed=91)
    queries = data[:10]
    truth = ground_truth_knn(queries, data, 10)
    return data, queries, truth


class TestTuneCodeLength:
    def test_returns_a_candidate(self, workload):
        data, queries, truth = workload
        result = tune_code_length(
            lambda m: ITQ(code_length=m, seed=0),
            data, queries, truth,
            candidates=[5, 7, 9],
            target_recall=0.8,
        )
        assert result.code_length in (5, 7, 9)
        assert set(result.per_length) == {5, 7, 9}

    def test_best_is_minimum_time(self, workload):
        data, queries, truth = workload
        result = tune_code_length(
            lambda m: ITQ(code_length=m, seed=0),
            data, queries, truth,
            candidates=[5, 9],
            target_recall=0.8,
        )
        assert result.seconds == min(result.per_length.values())

    def test_default_candidates_around_paper_rule(self, workload):
        data, queries, truth = workload
        result = tune_code_length(
            lambda m: ITQ(code_length=m, seed=0),
            data, queries, truth,
            target_recall=0.5,
        )
        # N = 1500 -> base m = round(log2(150)) = 7; candidates 4/7/10.
        assert set(result.per_length) == {4, 7, 10}
