"""Tests for flipping vectors and the Append/Swap generation tree."""

import numpy as np
import pytest

from repro.core.generation_tree import (
    FlippingVectorGenerator,
    SharedGenerationTree,
    append_move,
    mask_cost,
    swap_move,
)


class TestMoves:
    def test_paper_figure5_examples(self):
        """Figure 5's tree with code length 4 (bit 0 = leftmost entry)."""
        root = 0b0001  # (1, 0, 0, 0)
        assert append_move(root) == 0b0011  # (1, 1, 0, 0)
        assert swap_move(root) == 0b0010  # (0, 1, 0, 0)
        assert append_move(0b0011) == 0b0111  # (1, 1, 1, 0)
        assert swap_move(0b0011) == 0b0101  # (1, 0, 1, 0)

    def test_append_adds_one_bit(self):
        for mask in [1, 0b101, 0b0110]:
            assert bin(append_move(mask)).count("1") == bin(mask).count("1") + 1

    def test_swap_preserves_bit_count(self):
        for mask in [1, 0b101, 0b0110]:
            assert bin(swap_move(mask)).count("1") == bin(mask).count("1")

    def test_mask_cost_sums_set_bits(self):
        costs = np.array([0.1, 0.2, 0.4, 0.8])
        assert mask_cost(0b1010, costs) == pytest.approx(0.2 + 0.8)
        assert mask_cost(0, costs) == 0.0
        assert mask_cost(0b1111, costs) == pytest.approx(1.5)


class TestFlippingVectorGenerator:
    def _emit_all(self, costs):
        return list(FlippingVectorGenerator(np.asarray(costs)))

    def test_first_mask_is_zero(self):
        emitted = self._emit_all([0.1, 0.2, 0.3])
        assert emitted[0] == (0, 0.0)

    def test_property1_each_mask_exactly_once(self):
        """Property 1: all 2^m masks appear exactly once."""
        emitted = self._emit_all([0.1, 0.25, 0.3, 0.9])
        masks = [mask for mask, _ in emitted]
        assert sorted(masks) == list(range(16))

    def test_property2_costs_non_decreasing(self):
        """Heap over the tree emits non-decreasing QD."""
        rng = np.random.default_rng(0)
        costs = np.sort(np.abs(rng.standard_normal(10)))
        emitted = list(FlippingVectorGenerator(costs))
        values = [cost for _, cost in emitted]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_emitted_costs_match_mask_cost(self):
        rng = np.random.default_rng(1)
        costs = np.sort(np.abs(rng.standard_normal(8)))
        for mask, cost in FlippingVectorGenerator(costs):
            assert cost == pytest.approx(mask_cost(mask, costs))

    def test_order_matches_full_sort(self):
        """The lazy stream equals sorting all masks by cost."""
        rng = np.random.default_rng(2)
        costs = np.sort(np.abs(rng.standard_normal(7)))
        emitted = [mask for mask, _ in FlippingVectorGenerator(costs)]
        all_costs = [mask_cost(mask, costs) for mask in range(1 << 7)]
        expected = sorted(range(1 << 7), key=lambda mask: (all_costs[mask],))
        # Compare cost sequences (mask ties may legally reorder).
        assert [all_costs[m] for m in emitted] == pytest.approx(
            [all_costs[m] for m in expected]
        )

    def test_duplicate_costs_handled(self):
        emitted = self._emit_all([0.5, 0.5, 0.5])
        masks = [mask for mask, _ in emitted]
        assert sorted(masks) == list(range(8))

    def test_zero_costs_handled(self):
        emitted = self._emit_all([0.0, 0.0, 1.0])
        assert sorted(m for m, _ in emitted) == list(range(8))

    def test_single_bit(self):
        assert self._emit_all([0.3]) == [(0, 0.0), (1, pytest.approx(0.3))]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FlippingVectorGenerator(np.array([0.3, 0.1]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FlippingVectorGenerator(np.array([-0.1, 0.2]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FlippingVectorGenerator(np.zeros((2, 2)))

    def test_single_iteration_only(self):
        gen = FlippingVectorGenerator(np.array([0.1, 0.2]))
        list(gen)
        with pytest.raises(RuntimeError):
            list(gen)

    def test_heap_stays_small(self):
        """The paper: at iteration i the heap holds at most i elements."""
        rng = np.random.default_rng(3)
        costs = np.sort(np.abs(rng.standard_normal(12)))
        gen = FlippingVectorGenerator(costs)
        for i, _ in enumerate(gen):
            assert gen.heap_size <= i + 2


class TestSharedGenerationTree:
    def test_same_stream_as_plain_generator(self):
        rng = np.random.default_rng(4)
        costs = np.sort(np.abs(rng.standard_normal(9)))
        tree = SharedGenerationTree(code_length=9)
        shared = list(tree.generate(costs))
        plain = list(FlippingVectorGenerator(costs))
        assert [m for m, _ in shared] == [m for m, _ in plain]
        assert [c for _, c in shared] == pytest.approx([c for _, c in plain])

    def test_cache_reused_across_queries(self):
        tree = SharedGenerationTree(code_length=6)
        costs_a = np.sort(np.abs(np.random.default_rng(5).standard_normal(6)))
        list(tree.generate(costs_a))
        cached = tree.num_cached_nodes
        assert cached > 0
        costs_b = np.sort(np.abs(np.random.default_rng(6).standard_normal(6)))
        list(tree.generate(costs_b))
        assert tree.num_cached_nodes == cached  # full tree already cached

    def test_children_leaf_marker(self):
        tree = SharedGenerationTree(code_length=3)
        append_child, swap_child, _ = tree.children(0b100)
        assert append_child == -1 and swap_child == -1

    def test_max_nodes_respected(self):
        tree = SharedGenerationTree(code_length=8, max_nodes=5)
        costs = np.sort(np.abs(np.random.default_rng(7).standard_normal(8)))
        list(tree.generate(costs))
        assert tree.num_cached_nodes <= 5

    def test_cost_length_validated(self):
        tree = SharedGenerationTree(code_length=4)
        with pytest.raises(ValueError):
            list(tree.generate(np.zeros(3)))
