"""Tests for the k-means substrate."""

import numpy as np
import pytest

from repro.quantization.kmeans import KMeans, kmeans_plus_plus


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((100, 4))
        centers = kmeans_plus_plus(data, 5, np.random.default_rng(1))
        for center in centers:
            assert (np.linalg.norm(data - center, axis=1) < 1e-12).any()

    def test_handles_duplicate_points(self):
        data = np.zeros((20, 3))
        centers = kmeans_plus_plus(data, 4, np.random.default_rng(0))
        assert centers.shape == (4, 3)


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        truth = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        data = np.concatenate(
            [truth[i] + 0.1 * rng.standard_normal((50, 2)) for i in range(3)]
        )
        km = KMeans(3, seed=0).fit(data)
        found = km.centers[np.argsort(km.centers[:, 0] + 100 * km.centers[:, 1])]
        expected = truth[np.argsort(truth[:, 0] + 100 * truth[:, 1])]
        assert np.allclose(found, expected, atol=0.2)

    def test_labels_match_nearest_center(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((200, 3))
        km = KMeans(6, seed=0).fit(data)
        labels = km.predict(data)
        d2 = km.transform(data)
        assert np.array_equal(labels, d2.argmin(axis=1))

    def test_inertia_decreases_vs_single_iteration(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((300, 4))
        short = KMeans(8, n_iterations=1, seed=3).fit(data)
        long = KMeans(8, n_iterations=30, seed=3).fit(data)
        assert long.inertia <= short.inertia + 1e-9

    def test_k_equals_n(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((10, 2))
        km = KMeans(10, seed=0).fit(data)
        # Every point its own cluster: inertia ~ 0.
        assert km.inertia == pytest.approx(0.0, abs=1e-18)

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(10))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((150, 3))
        a = KMeans(5, seed=11).fit(data)
        b = KMeans(5, seed=11).fit(data)
        assert np.allclose(a.centers, b.centers)

    def test_no_empty_clusters_on_degenerate_data(self):
        """Empty-cluster repair: k=4 on 2 distinct locations still yields
        4 assigned clusters."""
        data = np.concatenate([np.zeros((30, 2)), np.ones((30, 2))])
        data += 1e-6 * np.random.default_rng(5).standard_normal(data.shape)
        km = KMeans(4, seed=0).fit(data)
        labels = km.predict(data)
        assert len(np.unique(labels)) >= 2  # repair keeps clusters usable
