"""The shared-memory process execution mode is bit-identical to serial.

Process mode publishes each engine generation's vectors and bucket
layout into named shared-memory segments and runs the unchanged serial
ordered batch path inside spawned workers.  These tests pin the whole
contract:

* bit-identity with serial execution across every index front-end and
  across rerank/fuse plans (plans the workers cannot express must fall
  back — thread pool or serial — and still match bit-for-bit);
* publish-once-per-generation, with republication on generation bump
  and the stale generation's segments unlinked (never readable again);
* no worker processes or named segments survive shutdown.

One spawned pool is reused across the whole module — workers cost real
wall time to start, and pool reuse is itself part of the contract.
"""

import multiprocessing
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.index.hash_table import HashTable
from repro.index.qalsh import QALSH
from repro.quantization.pq import ProductQuantizer
from repro.search import (
    CompactHashIndex,
    DynamicHashIndex,
    ExactEvaluator,
    FusionSpec,
    HashIndex,
    IMISearchIndex,
    MIHSearchIndex,
    ParallelBatchExecutor,
    QueryEngine,
    QueryPlan,
    RerankSpec,
    StreamSearchIndex,
)

DATA = gaussian_mixture(700, 16, n_clusters=8, seed=31)
QUERIES = sample_queries(DATA, 80, seed=32)


def assert_batches_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert np.array_equal(g.ids, w.ids)
        assert np.array_equal(g.distances, w.distances)
        assert g.n_candidates == w.n_candidates
        assert g.n_buckets_probed == w.n_buckets_probed


@pytest.fixture(scope="module")
def executor():
    ex = ParallelBatchExecutor(n_workers=2, min_batch_size=8, mode="process")
    yield ex
    ex.shutdown()
    assert not multiprocessing.active_children()


def _build_hash():
    return HashIndex(ITQ(code_length=8, seed=0), DATA, prober=GQR())


def _build_mih():
    return MIHSearchIndex(ITQ(code_length=8, seed=0), DATA, num_blocks=2)


def _build_imi():
    coarse = ProductQuantizer(n_subspaces=2, n_centroids=8, seed=0).fit(DATA)
    return IMISearchIndex(coarse, DATA)


def _build_compact():
    probe = ITQ(code_length=6, seed=0).fit(DATA)
    rerank = ITQ(code_length=12, seed=1).fit(DATA)
    return CompactHashIndex(probe, rerank, DATA)


def _build_dynamic():
    hasher = ITQ(code_length=8, seed=0).fit(DATA)
    index = DynamicHashIndex(hasher, DATA.shape[1])
    index.add(DATA)
    return index


def _build_stream():
    return StreamSearchIndex(QALSH(DATA, n_projections=12, seed=0), DATA)


BUILDERS = {
    "hash": _build_hash,
    "mih": _build_mih,
    "imi": _build_imi,
    "compact": _build_compact,
    "dynamic": _build_dynamic,
    "stream": _build_stream,
}

_INDEXES: dict[str, object] = {}


def get_index(name: str):
    if name not in _INDEXES:
        _INDEXES[name] = BUILDERS[name]()
    return _INDEXES[name]


def batch_streams(index, queries, plan):
    """Run the engine's streams batch entry over per-query streams."""
    streams = [index.candidate_stream(q) for q in queries]
    return index.engine.execute_batch_streams(queries, plan, streams)


class TestOrderedPathProcessBitIdentity:
    """The ordered fast path actually crosses the process boundary."""

    def test_plain_plan_matches_serial(self, executor):
        serial = _build_hash()
        parallel = HashIndex(
            ITQ(code_length=8, seed=0), DATA, prober=GQR(), parallel=executor
        )
        assert_batches_equal(
            parallel.search_batch(QUERIES, k=10, n_candidates=200),
            serial.search_batch(QUERIES, k=10, n_candidates=200),
        )
        # The batch was eligible: exactly one publication exists.
        assert len(executor._state.publications) == 1

    @given(
        k=st.integers(1, 30),
        budget=st.integers(1, 400),
    )
    @settings(max_examples=10, deadline=None)
    def test_plans_bit_identical(self, executor, k, budget):
        serial = get_index("hash")
        if "hash-process" not in _INDEXES:
            _INDEXES["hash-process"] = HashIndex(
                ITQ(code_length=8, seed=0),
                DATA,
                prober=GQR(),
                parallel=executor,
            )
        parallel = _INDEXES["hash-process"]
        assert_batches_equal(
            parallel.search_batch(QUERIES, k=k, n_candidates=budget),
            serial.search_batch(QUERIES, k=k, n_candidates=budget),
        )

    def test_exact_rerank_plan_matches_serial(self, executor):
        spec = RerankSpec(mode="exact", pool=40)
        serial = _build_hash()
        parallel = HashIndex(
            ITQ(code_length=8, seed=0), DATA, prober=GQR(), parallel=executor
        )
        assert_batches_equal(
            parallel.search_batch(QUERIES, k=10, n_candidates=200, rerank=spec),
            serial.search_batch(QUERIES, k=10, n_candidates=200, rerank=spec),
        )

    def test_fusion_plan_falls_back_and_matches_serial(self, executor):
        # Fusion needs a partner engine the workers cannot rebuild:
        # process mode must decline and the thread fallback must still
        # be bit-identical.
        partner_a = HashIndex(ITQ(code_length=6, seed=3), DATA)
        partner_b = HashIndex(ITQ(code_length=6, seed=3), DATA)
        serial = _build_hash()
        serial.fuse_with(partner_a)
        parallel = HashIndex(
            ITQ(code_length=8, seed=0), DATA, prober=GQR(), parallel=executor
        )
        parallel.fuse_with(partner_b)
        spec = FusionSpec(weight=0.5, pool=40)
        assert_batches_equal(
            parallel.search_batch(QUERIES, k=10, n_candidates=200, fusion=spec),
            serial.search_batch(QUERIES, k=10, n_candidates=200, fusion=spec),
        )

    def test_code_evaluation_falls_back_and_matches_serial(self, executor):
        # CodeEvaluator has no shared-memory publication; the ordered
        # path must take the thread fallback and still match.
        serial = HashIndex(
            ITQ(code_length=8, seed=0), DATA, prober=GQR(), evaluation="code"
        )
        parallel = HashIndex(
            ITQ(code_length=8, seed=0),
            DATA,
            prober=GQR(),
            evaluation="code",
            parallel=executor,
        )
        assert_batches_equal(
            parallel.search_batch(QUERIES, k=10, n_candidates=200),
            serial.search_batch(QUERIES, k=10, n_candidates=200),
        )


@pytest.mark.parametrize("name", sorted(BUILDERS))
class TestAllIndexTypesBitIdentity:
    """Every front-end's batch execution under a process-mode executor.

    Index types whose batches are not process-eligible (streams-path
    retrieval, non-exact evaluators) must fall back transparently; the
    results must be bit-identical to serial either way.
    """

    def test_batch_matches_serial(self, name, executor):
        index = get_index(name)
        plan = QueryPlan(k=10, n_candidates=200)
        queries = QUERIES[:24]
        want = batch_streams(index, queries, plan)
        engine = index.engine
        assert engine.parallel is None
        engine.parallel = executor
        try:
            got = batch_streams(index, queries, plan)
        finally:
            engine.parallel = None
        assert_batches_equal(got, want)

    def test_reranked_batch_matches_serial(self, name, executor):
        index = get_index(name)
        if "exact" not in index.engine.rerankers:
            pytest.skip(f"{name} registers no exact reranker")
        plan = QueryPlan(
            k=10, n_candidates=200, rerank=RerankSpec(mode="exact", pool=40)
        )
        queries = QUERIES[:24]
        want = batch_streams(index, queries, plan)
        engine = index.engine
        engine.parallel = executor
        try:
            got = batch_streams(index, queries, plan)
        finally:
            engine.parallel = None
        assert_batches_equal(got, want)


def _toy_ordered_setup(vectors):
    """A tiny engine + table + score matrix for engine-level tests."""
    rng = np.random.default_rng(7)
    codes = rng.integers(0, 2, size=(len(vectors), 6))
    table = HashTable(codes)
    signatures = table.dense_layout()[0]
    store = {"vectors": vectors}
    engine = QueryEngine(
        ExactEvaluator(lambda: store["vectors"], "euclidean"), name="genbump"
    )
    engine.rerankers["exact"] = engine.evaluator
    queries = rng.standard_normal((16, vectors.shape[1]))
    scores = rng.random((len(queries), len(signatures)))
    return store, engine, table, queries, scores, signatures


class TestGenerationBump:
    def test_stale_segments_are_never_read(self):
        # Mutate the indexed vectors, bump the generation, and prove
        # the workers answer from the new snapshot — not the segments
        # published for the old generation.
        vectors = np.asarray(
            np.random.default_rng(8).standard_normal((300, 8)),
            dtype=np.float64,
        )
        store, engine, table, queries, scores, signatures = (
            _toy_ordered_setup(vectors)
        )
        plan = QueryPlan(k=5, n_candidates=60)
        with ParallelBatchExecutor(
            n_workers=2, min_batch_size=8, mode="process"
        ) as executor:
            engine.parallel = executor
            first = engine.execute_batch_ordered(
                queries, plan, table, scores, signatures
            )
            engine.parallel = None
            assert_batches_equal(
                first,
                engine.execute_batch_ordered(
                    queries, plan, table, scores, signatures
                ),
            )
            family = str(engine.identity()[0])
            generation_0, _, publication_0 = (
                executor._state.publications[family]
            )
            assert generation_0 == engine.generation

            # Mutate: scale every vector, as a mutable index would on
            # an update, and bump the generation.
            store["vectors"] = vectors * -3.0 + 1.0
            engine.bump_generation()

            engine.parallel = executor
            second = engine.execute_batch_ordered(
                queries, plan, table, scores, signatures
            )
            engine.parallel = None
            assert_batches_equal(
                second,
                engine.execute_batch_ordered(
                    queries, plan, table, scores, signatures
                ),
            )
            # Distances must reflect the mutated vectors, so the two
            # generations cannot agree.
            assert not all(
                np.array_equal(a.distances, b.distances)
                for a, b in zip(first, second)
            )
            generation_1, _, publication_1 = (
                executor._state.publications[family]
            )
            assert generation_1 == engine.generation == generation_0 + 1
            assert publication_1 is not publication_0
            # The stale generation's segments were unlinked: their
            # names can never be attached (hence never read) again.
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(
                    name=publication_0.spec.vectors.name
                )

    def test_publication_reused_within_a_generation(self):
        vectors = np.asarray(
            np.random.default_rng(9).standard_normal((300, 8)),
            dtype=np.float64,
        )
        _, engine, table, queries, scores, signatures = (
            _toy_ordered_setup(vectors)
        )
        plan = QueryPlan(k=5, n_candidates=60)
        with ParallelBatchExecutor(
            n_workers=2, min_batch_size=8, mode="process"
        ) as executor:
            engine.parallel = executor
            engine.execute_batch_ordered(
                queries, plan, table, scores, signatures
            )
            family = str(engine.identity()[0])
            publication = executor._state.publications[family][2]
            engine.execute_batch_ordered(
                queries, plan, table, scores, signatures
            )
            assert executor._state.publications[family][2] is publication


class TestProcessLifecycle:
    def test_shutdown_unlinks_segments_and_reaps_workers(self):
        vectors = np.asarray(
            np.random.default_rng(10).standard_normal((300, 8)),
            dtype=np.float64,
        )
        _, engine, table, queries, scores, signatures = (
            _toy_ordered_setup(vectors)
        )
        plan = QueryPlan(k=5, n_candidates=60)
        executor = ParallelBatchExecutor(
            n_workers=2, min_batch_size=8, mode="process"
        )
        engine.parallel = executor
        engine.execute_batch_ordered(queries, plan, table, scores, signatures)
        family = str(engine.identity()[0])
        spec = executor._state.publications[family][2].spec
        pool_pids = {
            proc.pid
            for proc in executor._state.process_pool._processes.values()
        }
        assert pool_pids
        executor.shutdown()
        survivors = {proc.pid for proc in multiprocessing.active_children()}
        assert not (pool_pids & survivors)
        for array_spec in (
            spec.vectors,
            spec.signatures,
            spec.sizes,
            spec.offsets,
            spec.ids_flat,
        ):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=array_spec.name)
        # Shutdown is a pool teardown, not a poison pill: the next
        # batch republishes and respawns transparently.
        second = engine.execute_batch_ordered(
            queries, plan, table, scores, signatures
        )
        engine.parallel = None
        assert_batches_equal(
            second,
            engine.execute_batch_ordered(
                queries, plan, table, scores, signatures
            ),
        )
        executor.shutdown()
