"""Smoke test: every registered dataset works end-to-end.

Loads all 13 registry entries at tiny scale, builds an ITQ+GQR index on
each, and checks a query round-trips — catching registry entries whose
parameters (dims, clusters, code length) are mutually inconsistent.
"""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import DATASETS, load_dataset
from repro.hashing import ITQ
from repro.search.searcher import HashIndex


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_registry_end_to_end(name):
    dataset = load_dataset(name, scale=0.03)
    m = max(2, min(dataset.code_length, dataset.data.shape[1] - 1))
    index = HashIndex(
        ITQ(code_length=m, seed=0), dataset.data, prober=GQR()
    )
    query = dataset.queries[0]
    result = index.search(query, k=5, n_candidates=len(dataset.data))
    assert len(result.ids) == 5
    # Full budget = exact: verify against a direct scan.
    dists = np.linalg.norm(dataset.data - query, axis=1)
    expected = np.lexsort((np.arange(len(dists)), dists))[:5]
    assert np.array_equal(np.sort(result.ids), np.sort(expected))


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_registry_spec_consistency(name):
    spec = DATASETS[name]
    assert spec.scaled_items < spec.paper_items
    assert spec.scaled_dims <= spec.paper_dims
    assert 1 <= spec.code_length <= 63
    assert spec.n_clusters < spec.scaled_items
