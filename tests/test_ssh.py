"""Tests for semi-supervised hashing."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.hashing.pcah import PCAHashing
from repro.hashing.ssh import SemiSupervisedHashing, pairs_from_neighbors


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1000, 16, n_clusters=8, seed=6)


class TestPairsFromNeighbors:
    def test_shapes(self, data):
        similar, dissimilar = pairs_from_neighbors(
            data, n_anchors=20, n_neighbors=3, seed=0
        )
        assert similar.shape == (60, 2)
        assert dissimilar.shape == (60, 2)

    def test_similar_pairs_closer_than_dissimilar(self, data):
        similar, dissimilar = pairs_from_neighbors(
            data, n_anchors=20, n_neighbors=3, seed=0
        )
        sim_d = np.linalg.norm(
            data[similar[:, 0]] - data[similar[:, 1]], axis=1
        ).mean()
        dis_d = np.linalg.norm(
            data[dissimilar[:, 0]] - data[dissimilar[:, 1]], axis=1
        ).mean()
        assert sim_d < dis_d


class TestSemiSupervisedHashing:
    def test_no_pairs_degenerates_to_pcah(self, data):
        """With η·covariance only, SSH's directions span PCA's."""
        ssh = SemiSupervisedHashing(code_length=4).fit(data)
        pcah = PCAHashing(code_length=4).fit(data)
        # Same eigenvectors up to sign conventions (both anchored).
        assert np.allclose(
            np.abs(ssh.hashing_matrix), np.abs(pcah.hashing_matrix), atol=1e-6
        )

    def test_pairs_change_directions(self, data):
        similar, dissimilar = pairs_from_neighbors(
            data, n_anchors=50, n_neighbors=5, seed=0
        )
        ssh = SemiSupervisedHashing(
            code_length=4, similar_pairs=similar, dissimilar_pairs=dissimilar
        ).fit(data)
        pcah = PCAHashing(code_length=4).fit(data)
        assert not np.allclose(
            np.abs(ssh.hashing_matrix), np.abs(pcah.hashing_matrix), atol=1e-6
        )

    def test_supervision_helps_pair_agreement(self, data):
        """Codes should agree on labelled-similar pairs more often than
        on labelled-dissimilar pairs."""
        similar, dissimilar = pairs_from_neighbors(
            data, n_anchors=60, n_neighbors=5, seed=1
        )
        ssh = SemiSupervisedHashing(
            code_length=8,
            similar_pairs=similar,
            dissimilar_pairs=dissimilar,
            eta=0.5,
        ).fit(data)
        codes = ssh.encode(data)
        sim_agree = (codes[similar[:, 0]] == codes[similar[:, 1]]).mean()
        dis_agree = (codes[dissimilar[:, 0]] == codes[dissimilar[:, 1]]).mean()
        assert sim_agree > dis_agree

    def test_pair_validation(self, data):
        with pytest.raises(ValueError):
            SemiSupervisedHashing(code_length=4, similar_pairs=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            SemiSupervisedHashing(code_length=4, eta=-1.0)
        ssh = SemiSupervisedHashing(
            code_length=4, similar_pairs=np.array([[0, 10_000]])
        )
        with pytest.raises(ValueError):
            ssh.fit(data)

    def test_works_with_gqr(self, data):
        from repro.core.gqr import GQR
        from repro.search.searcher import HashIndex

        similar, dissimilar = pairs_from_neighbors(data, seed=2)
        ssh = SemiSupervisedHashing(
            code_length=7, similar_pairs=similar, dissimilar_pairs=dissimilar
        )
        index = HashIndex(ssh, data, prober=GQR())
        result = index.search(data[0], k=5, n_candidates=200)
        assert len(result.ids) == 5
