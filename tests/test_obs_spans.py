"""Tests for the span timing API."""

import threading

from repro.obs import current_span, span


class TestSpan:
    def test_measures_duration(self):
        with span("stage") as s:
            pass
        assert s.duration >= 0.0

    def test_nesting_builds_a_tree(self):
        with span("query") as root:
            with span("retrieve"):
                pass
            with span("evaluate") as evaluate:
                with span("topk"):
                    pass
        assert [c.name for c in root.children] == ["retrieve", "evaluate"]
        assert [c.name for c in evaluate.children] == ["topk"]

    def test_children_durations_bounded_by_parent(self):
        with span("query") as root:
            with span("retrieve"):
                sum(range(1000))
            with span("evaluate"):
                sum(range(1000))
        child_total = sum(c.duration for c in root.children)
        assert child_total <= root.duration

    def test_child_duration_sums_same_named_children(self):
        with span("query") as root:
            for _ in range(3):
                with span("probe"):
                    pass
        assert root.child_duration("probe") == sum(
            c.duration for c in root.children
        )
        assert root.child_duration("missing") == 0.0

    def test_current_span_tracks_innermost(self):
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_stack_unwinds_on_exception(self):
        try:
            with span("outer"):
                with span("inner"):
                    raise ValueError("boom")
        except ValueError:
            pass
        assert current_span() is None

    def test_to_dict_schema(self):
        with span("query") as root:
            with span("retrieve"):
                pass
        payload = root.to_dict()
        assert payload["name"] == "query"
        assert isinstance(payload["duration_seconds"], float)
        assert payload["children"][0]["name"] == "retrieve"
        assert payload["children"][0]["children"] == []

    def test_span_stacks_are_per_thread(self):
        seen: dict[str, object] = {}

        def worker():
            seen["before"] = current_span()
            with span("thread-stage") as s:
                seen["inside"] = current_span() is s
            seen["after"] = current_span()

        with span("main-stage"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == {"before": None, "inside": True, "after": None}
