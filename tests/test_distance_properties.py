"""Property-based tests for the distance metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index.distance import (
    angular_distances,
    cosine_distances,
    pairwise_distances,
)

finite_vectors = arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(2, 5)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestMetricProperties:
    @given(finite_vectors)
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, x):
        d = pairwise_distances(x, x, "euclidean")
        # The expansion formula's cancellation error scales with
        # ‖x‖·√eps, so the tolerance must be relative to the magnitude.
        tolerance = 1e-5 * (1.0 + np.linalg.norm(x, axis=1).max())
        assert np.allclose(np.diag(d), 0.0, atol=tolerance)
        # Cosine is undefined at the origin (we define it as 1 there),
        # so only check non-zero rows.
        nonzero = np.linalg.norm(x, axis=1) > 1e-9
        if nonzero.any():
            d = pairwise_distances(x[nonzero], x[nonzero], "cosine")
            assert np.allclose(np.diag(d), 0.0, atol=1e-6)

    @given(finite_vectors, finite_vectors)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        if a.shape[1] != b.shape[1]:
            b = np.zeros((len(b), a.shape[1]))
        for metric in ("euclidean", "cosine", "angular"):
            assert np.allclose(
                pairwise_distances(a, b, metric),
                pairwise_distances(b, a, metric).T,
                atol=1e-6,
            )

    @given(finite_vectors)
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, x):
        cos = cosine_distances(x, x)
        assert (cos >= -1e-9).all() and (cos <= 2 + 1e-9).all()
        ang = angular_distances(x, x)
        assert (ang >= -1e-9).all() and (ang <= np.pi + 1e-9).all()

    @given(
        arrays(np.float64, (4, 3), elements=st.floats(-10, 10,
                                                      allow_nan=False)),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_angular_scale_invariance(self, x, scale):
        base = angular_distances(x, x)
        scaled = angular_distances(x * scale, x)
        assert np.allclose(base, scaled, atol=1e-6)

    @given(arrays(np.float64, (5, 3),
                  elements=st.floats(-10, 10, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_angular_triangle_inequality(self, x):
        """The angle is a metric on the sphere (for non-zero vectors)."""
        norms = np.linalg.norm(x, axis=1)
        if (norms < 1e-6).any():
            return
        d = angular_distances(x, x)
        n = len(x)
        for i in range(n):
            for j in range(n):
                for l in range(n):
                    assert d[i, l] <= d[i, j] + d[j, l] + 1e-6
