"""Query-result cache: identity, invalidation, eviction, telemetry.

The serving-layer guarantees under test:

* a hit returns the *same* ``SearchResult`` object the uncached
  execution produced — bit-identical ids and distances by construction;
* mutation (dynamic add/remove, stream append) can never serve a stale
  entry — generation numbers participate in every key;
* time-budgeted plans are never cached;
* hit/miss/eviction counters and the occupancy gauge are visible
  through :mod:`repro.obs`.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.search import (
    DynamicHashIndex,
    HashIndex,
    QueryPlan,
    QueryResultCache,
    StreamSearchIndex,
    cache_token,
    query_fingerprint,
)


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(600, 16, n_clusters=6, seed=11)


@pytest.fixture(scope="module")
def queries(data):
    return sample_queries(data, 8, seed=3)


def make_index(data, cache=None):
    return HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR(), cache=cache)


class TestFingerprint:
    def test_signed_zero_collapses(self):
        a = query_fingerprint(np.array([-0.0, 1.0]))
        b = query_fingerprint(np.array([0.0, 1.0]))
        assert a == b

    def test_sub_precision_noise_collapses(self):
        base = np.array([0.25, 0.5, 0.75])
        noisy = base + 1e-14
        assert query_fingerprint(base) == query_fingerprint(noisy)

    def test_distinct_values_differ(self):
        assert query_fingerprint(np.array([1.0, 2.0])) != query_fingerprint(
            np.array([1.0, 2.5])
        )

    def test_shape_participates(self):
        flat = np.array([1.0, 2.0])
        assert query_fingerprint(flat) != query_fingerprint(
            flat.reshape(1, 2)
        )

    def test_decimals_control_granularity(self):
        a, b = np.array([0.123456]), np.array([0.123457])
        assert query_fingerprint(a, decimals=4) == query_fingerprint(
            b, decimals=4
        )
        assert query_fingerprint(a, decimals=8) != query_fingerprint(
            b, decimals=8
        )


class TestCacheCore:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            QueryResultCache(capacity=0)
        with pytest.raises(ValueError, match="ttl_seconds"):
            QueryResultCache(ttl_seconds=0.0)

    def test_time_budget_plans_not_cacheable(self):
        assert not QueryResultCache.cacheable(QueryPlan(k=1, time_budget=0.1))
        assert QueryResultCache.cacheable(QueryPlan(k=1, n_candidates=10))

    def test_tokens_are_process_unique(self):
        assert cache_token("hash") != cache_token("hash")

    def test_generation_changes_the_key(self):
        cache = QueryResultCache()
        plan = QueryPlan(k=2, n_candidates=10)
        query = np.array([1.0, 2.0])
        old = cache.key_for("t#0", 0, plan, query)
        new = cache.key_for("t#0", 1, plan, query)
        assert old != new

    def test_lru_eviction_order(self):
        cache = QueryResultCache(capacity=2)
        a, b, c = (("t", 0, 1, n, None, "euclidean", "round_robin", b"f")
                   for n in (1, 2, 3))
        cache.store(a, "ra")
        cache.store(b, "rb")
        assert cache.lookup(a) == "ra"  # refresh a; b is now LRU
        cache.store(c, "rc")
        assert cache.lookup(b) is None
        assert cache.lookup(a) == "ra"
        assert cache.lookup(c) == "rc"
        assert cache.stats["evictions"] == 1

    def test_ttl_expiry_with_injected_clock(self):
        clock = [0.0]
        cache = QueryResultCache(ttl_seconds=5.0, clock=lambda: clock[0])
        key = ("t", 0, 1, 1, None, "euclidean", "round_robin", b"f")
        cache.store(key, "r")
        clock[0] = 4.9
        assert cache.lookup(key) == "r"
        clock[0] = 10.0
        assert cache.lookup(key) is None
        stats = cache.stats
        assert stats["evictions"] == 1 and stats["occupancy"] == 0

    def test_invalidate_drops_everything(self):
        cache = QueryResultCache()
        for n in range(4):
            cache.store(("t", 0, 1, n, None, "e", "r", b"f"), n)
        assert cache.invalidate() == 4
        assert len(cache) == 0


class TestIndexIntegration:
    def test_hit_returns_the_stored_object(self, data, queries):
        index = make_index(data, cache=QueryResultCache())
        first = index.search(queries[0], k=5, n_candidates=100)
        second = index.search(queries[0], k=5, n_candidates=100)
        assert second is first
        assert index.cache.stats["hits"] == 1

    def test_cached_results_bit_identical_to_uncached(self, data, queries):
        cached = make_index(data, cache=QueryResultCache())
        plain = make_index(data)
        for query in queries:
            for _ in range(2):  # second pass is all cache hits
                got = cached.search(query, k=10, n_candidates=200)
                want = plain.search(query, k=10, n_candidates=200)
                assert np.array_equal(got.ids, want.ids)
                assert np.array_equal(got.distances, want.distances)
        assert cached.cache.stats["hits"] == len(queries)

    def test_different_plans_do_not_collide(self, data, queries):
        index = make_index(data, cache=QueryResultCache())
        a = index.search(queries[0], k=5, n_candidates=50)
        b = index.search(queries[0], k=5, n_candidates=400)
        assert index.cache.stats["hits"] == 0
        assert b.n_candidates >= a.n_candidates

    def test_time_budget_searches_bypass_the_cache(self, data, queries):
        index = make_index(data, cache=QueryResultCache())
        index.search(queries[0], k=5, time_budget=10.0)
        index.search(queries[0], k=5, time_budget=10.0)
        stats = index.cache.stats
        assert stats["hits"] == stats["misses"] == stats["occupancy"] == 0


class TestMutationInvalidation:
    def build(self, data, cache):
        hasher = ITQ(code_length=8, seed=0).fit(data)
        index = DynamicHashIndex(hasher, dim=data.shape[1], cache=cache)
        index.add(data)
        return index

    def test_add_invalidates(self, data):
        cache = QueryResultCache()
        index = self.build(data[:-1], cache)
        query = data[-1]
        stale = index.search(query, k=3, n_candidates=600)
        # Insert the query point itself: it must show up immediately.
        (new_id,) = index.add(query[None, :])
        fresh = index.search(query, k=3, n_candidates=600)
        assert fresh is not stale
        assert fresh.ids[0] == new_id
        assert fresh.distances[0] == 0.0

    def test_remove_invalidates(self, data):
        cache = QueryResultCache()
        index = self.build(data, cache)
        query = data[0]
        before = index.search(query, k=3, n_candidates=600)
        nearest = int(before.ids[0])
        index.remove(nearest)
        after = index.search(query, k=3, n_candidates=600)
        assert nearest not in after.ids

    def test_unmutated_repeat_still_hits(self, data):
        cache = QueryResultCache()
        index = self.build(data, cache)
        first = index.search(data[0], k=3, n_candidates=100)
        assert index.search(data[0], k=3, n_candidates=100) is first

    def test_stream_append_invalidates(self, data):
        class GrowingSource:
            def __init__(self, n):
                self.n = n

            @property
            def num_items(self):
                return self.n

            def candidate_stream(self, query):
                yield np.arange(self.n, dtype=np.int64)

        source = GrowingSource(len(data) - 1)
        index = StreamSearchIndex(source, data, cache=QueryResultCache())
        query = data[-1]
        stale = index.search(query, k=1, n_candidates=len(data))
        source.n = len(data)  # append: the query point itself is now indexed
        fresh = index.search(query, k=1, n_candidates=len(data))
        assert fresh is not stale
        assert fresh.ids[0] == len(data) - 1
        assert fresh.distances[0] == 0.0


class TestTelemetry:
    def test_counters_and_gauge_exported(self, data, queries):
        index = make_index(data, cache=QueryResultCache(name="hash"))
        with obs.telemetry_session() as t:
            index.search(queries[0], k=5, n_candidates=100)
            index.search(queries[0], k=5, n_candidates=100)
            hits = t.registry.get("repro_cache_hits_total")
            misses = t.registry.get("repro_cache_misses_total")
            occupancy = t.registry.get("repro_cache_occupancy")
            latency = t.registry.get("repro_cache_hit_seconds")
            assert hits.labels(cache="hash").value == 1
            assert misses.labels(cache="hash").value == 1
            assert occupancy.labels(cache="hash").value == 1
            assert latency.labels(cache="hash").count == 1

    def test_silent_without_session(self, data, queries):
        index = make_index(data, cache=QueryResultCache())
        index.search(queries[0], k=5, n_candidates=100)
        index.search(queries[0], k=5, n_candidates=100)
        assert index.cache.stats["hits"] == 1  # no telemetry, no crash

    def test_ttl_eviction_counted_under_telemetry(self):
        # Injected clock + live session: a TTL expiry must surface in
        # the eviction counter and pull the occupancy gauge back down,
        # without any real time passing.
        clock = [0.0]
        cache = QueryResultCache(
            ttl_seconds=5.0, name="ttl", clock=lambda: clock[0]
        )
        key = ("t", 0, 1, 1, None, "euclidean", "round_robin", b"f")
        with obs.telemetry_session() as t:
            cache.store(key, "r")
            clock[0] = 10.0
            assert cache.lookup(key) is None
            evictions = t.registry.get("repro_cache_evictions_total")
            occupancy = t.registry.get("repro_cache_occupancy")
            misses = t.registry.get("repro_cache_misses_total")
            assert evictions.labels(cache="ttl").value == 1
            assert occupancy.labels(cache="ttl").value == 0
            assert misses.labels(cache="ttl").value == 1


class TestShardCache:
    def test_repeat_query_answered_from_coordinator(self, data):
        from repro.distributed.cluster import DistributedHashIndex

        index = DistributedHashIndex(
            ITQ(code_length=8, seed=0),
            data,
            num_workers=4,
            shard_cache=QueryResultCache(name="shard"),
        )
        query = data[5]
        first = index.search(query, k=5, n_candidates=200)
        second = index.search(query, k=5, n_candidates=200)
        assert first.extras["shard_cache_hits"] == 0
        assert second.extras["shard_cache_hits"] == 4
        assert np.array_equal(first.ids, second.ids)
        assert np.array_equal(first.distances, second.distances)
        # Cached partitions charge no compute to the makespan.
        assert (
            second.extras["makespan_seconds"]
            < first.extras["makespan_seconds"]
        )

    def test_matches_uncached_cluster(self, data):
        from repro.distributed.cluster import DistributedHashIndex

        cached = DistributedHashIndex(
            ITQ(code_length=8, seed=0), data, num_workers=4,
            shard_cache=QueryResultCache(),
        )
        plain = DistributedHashIndex(
            ITQ(code_length=8, seed=0), data, num_workers=4,
        )
        for query in data[:4]:
            for _ in range(2):
                got = cached.search(query, k=5, n_candidates=200)
                want = plain.search(query, k=5, n_candidates=200)
                assert np.array_equal(got.ids, want.ids)
                assert np.array_equal(got.distances, want.distances)
