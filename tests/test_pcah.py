"""Tests for PCA hashing."""

import numpy as np
import pytest

from repro.hashing.pcah import PCAHashing, pca_directions


class TestPcaDirections:
    def test_orthonormal(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((200, 10))
        data -= data.mean(axis=0)
        w = pca_directions(data, 4)
        assert np.allclose(w.T @ w, np.eye(4), atol=1e-8)

    def test_ordered_by_variance(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((500, 6)) * np.array([5, 4, 3, 2, 1, 0.5])
        data -= data.mean(axis=0)
        w = pca_directions(data, 6)
        variances = ((data @ w) ** 2).mean(axis=0)
        assert (np.diff(variances) <= 1e-6).all()

    def test_finds_dominant_axis(self):
        rng = np.random.default_rng(2)
        data = np.zeros((300, 5))
        data[:, 2] = rng.standard_normal(300) * 10
        data[:, 0] = rng.standard_normal(300) * 0.1
        w = pca_directions(data - data.mean(axis=0), 1)
        assert abs(w[2, 0]) > 0.99

    def test_rejects_m_larger_than_d(self):
        with pytest.raises(ValueError):
            pca_directions(np.zeros((10, 3)), 4)

    def test_sign_deterministic(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((100, 8))
        data -= data.mean(axis=0)
        assert np.array_equal(pca_directions(data, 3), pca_directions(data, 3))


class TestPCAHashing:
    def test_projection_variance_decreasing(self, small_data):
        hasher = PCAHashing(code_length=6).fit(small_data)
        variances = hasher.project(small_data).var(axis=0)
        assert (np.diff(variances) <= 1e-6).all()

    def test_similar_items_share_codes_more(self, small_data):
        """Similarity preservation: near pairs agree on more bits."""
        hasher = PCAHashing(code_length=8).fit(small_data)
        codes = hasher.encode(small_data)
        near_agree, far_agree = [], []
        dists = np.linalg.norm(small_data - small_data[0], axis=1)
        order = np.argsort(dists)
        for i in order[1:20]:
            near_agree.append((codes[0] == codes[i]).mean())
        for i in order[-20:]:
            far_agree.append((codes[0] == codes[i]).mean())
        assert np.mean(near_agree) > np.mean(far_agree)

    def test_spectral_bound_is_one_for_orthonormal(self, small_data):
        hasher = PCAHashing(code_length=5).fit(small_data)
        assert hasher.spectral_bound() == pytest.approx(1.0, abs=1e-8)
