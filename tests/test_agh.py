"""Tests for anchor graph hashing."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.hashing.agh import AnchorGraphHashing


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1500, 16, n_clusters=10, seed=131)


@pytest.fixture(scope="module")
def agh(data):
    return AnchorGraphHashing(
        code_length=8, n_anchors=48, n_nearest_anchors=3, seed=0
    ).fit(data)


class TestConstruction:
    def test_anchor_count_must_exceed_bits(self):
        with pytest.raises(ValueError):
            AnchorGraphHashing(code_length=16, n_anchors=16)

    def test_nearest_anchor_bounds(self):
        with pytest.raises(ValueError):
            AnchorGraphHashing(code_length=4, n_anchors=16,
                               n_nearest_anchors=0)

    def test_needs_more_items_than_anchors(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AnchorGraphHashing(code_length=4, n_anchors=64).fit(
                rng.standard_normal((32, 4))
            )


class TestEmbedding:
    def test_projection_shape(self, agh, data):
        assert agh.project(data[:20]).shape == (20, 8)

    def test_anchor_weights_row_normalised(self, agh, data):
        z = agh._anchor_weights(data[:50])
        assert np.allclose(z.sum(axis=1), 1.0)
        assert (z >= 0).all()

    def test_anchor_weights_sparse(self, agh, data):
        z = agh._anchor_weights(data[:50])
        assert ((z > 0).sum(axis=1) <= 3).all()

    def test_out_of_sample_extension(self, agh, data):
        """Unseen queries embed consistently: a near-copy of an item
        gets a nearly identical embedding."""
        item = data[7]
        copy = item + 1e-9
        assert np.allclose(
            agh.project(item[np.newaxis, :]), agh.project(copy[np.newaxis, :])
        )

    def test_similarity_preserving(self, agh, data):
        codes = agh.encode(data)
        dists = np.linalg.norm(data - data[3], axis=1)
        order = np.argsort(dists)
        near = np.mean([(codes[3] == codes[i]).mean() for i in order[1:15]])
        far = np.mean([(codes[3] == codes[i]).mean() for i in order[-15:]])
        assert near > far

    def test_nonlinear_no_spectral_bound(self, agh):
        assert agh.spectral_bound() is None


class TestSpectralRotation:
    def test_rotation_reduces_quantization_loss(self, data):
        plain = AnchorGraphHashing(
            code_length=8, n_anchors=48, seed=0
        ).fit(data)
        rotated = AnchorGraphHashing(
            code_length=8, n_anchors=48, spectral_rotation=True, seed=0
        ).fit(data)

        def loss(hasher):
            y = hasher.project(data)
            b = np.where(y >= 0, 1.0, -1.0)
            return float(np.square(b - y).sum())

        assert loss(rotated) <= loss(plain) + 1e-9

    def test_works_with_gqr(self, data):
        from repro.core.gqr import GQR
        from repro.index.linear_scan import knn_linear_scan
        from repro.search.searcher import HashIndex

        hasher = AnchorGraphHashing(
            code_length=8, n_anchors=48, spectral_rotation=True, seed=0
        )
        index = HashIndex(hasher, data, prober=GQR())
        query = data[11]
        result = index.search(query, k=10, n_candidates=len(data))
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))
