"""End-to-end integration tests: the paper's qualitative claims on
small synthetic data.

These assert the *shape* of the paper's results: GQR beats Hamming-based
probing at a fixed candidate budget, QD orders candidates better than
Hamming distance, every querying method converges to exact recall, and
the methods compose with every hasher.
"""

import pytest

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.data import gaussian_mixture, ground_truth_knn, sample_queries
from repro.eval.harness import recall_at_budgets
from repro.hashing import ITQ, KMeansHashing, PCAHashing, SpectralHashing
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def workload():
    data = gaussian_mixture(3000, 32, n_clusters=20, seed=11)
    queries = sample_queries(data, 30, seed=12)
    truth = ground_truth_knn(queries, data, 20)
    return data, queries, truth


def _mean_recall_at(index, queries, truth, budget):
    return recall_at_budgets(index, queries, truth, [budget])[0]


class TestPaperClaims:
    def test_gqr_beats_hamming_at_fixed_budget(self, workload):
        """Figure 8: at the same #retrieved items GQR finds more true
        neighbours than HR/GHR."""
        data, queries, truth = workload
        hasher = ITQ(code_length=9, seed=0).fit(data)
        budget = 150
        gqr = _mean_recall_at(
            HashIndex(hasher, data, prober=GQR()), queries, truth, budget
        )
        ghr = _mean_recall_at(
            HashIndex(hasher, data, prober=GenerateHammingRanking()),
            queries, truth, budget,
        )
        assert gqr > ghr

    def test_gqr_equivalent_to_qr_results(self, workload):
        """Section 5.1 (R1)+(R2): GQR ≡ QR in semantics."""
        data, queries, truth = workload
        hasher = ITQ(code_length=9, seed=0).fit(data)
        gqr_recall = _mean_recall_at(
            HashIndex(hasher, data, prober=GQR()), queries, truth, 200
        )
        qr_recall = _mean_recall_at(
            HashIndex(hasher, data, prober=QDRanking()), queries, truth, 200
        )
        assert gqr_recall == pytest.approx(qr_recall, abs=0.02)

    def test_all_probers_reach_full_recall(self, workload):
        data, queries, truth = workload
        hasher = ITQ(code_length=9, seed=0).fit(data)
        for prober in (
            GQR(), QDRanking(), HammingRanking(), GenerateHammingRanking()
        ):
            index = HashIndex(hasher, data, prober=prober)
            assert _mean_recall_at(
                index, queries, truth, len(data)
            ) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "hasher_factory",
        [
            lambda: ITQ(code_length=8, seed=0),
            lambda: PCAHashing(code_length=8),
            lambda: SpectralHashing(code_length=8),
            lambda: KMeansHashing(code_length=8, bits_per_subspace=4, seed=0),
        ],
        ids=["ITQ", "PCAH", "SH", "KMH"],
    )
    def test_generality_across_hashers(self, workload, hasher_factory):
        """Section 6.4: GQR works with every L2H algorithm, and never
        loses to GHR on the same hash functions."""
        data, queries, truth = workload
        hasher = hasher_factory().fit(data)
        budget = 150
        gqr = _mean_recall_at(
            HashIndex(hasher, data, prober=GQR()), queries, truth, budget
        )
        ghr = _mean_recall_at(
            HashIndex(hasher, data, prober=GenerateHammingRanking()),
            queries, truth, budget,
        )
        assert gqr >= ghr - 0.02

    def test_recall_monotone_in_budget(self, workload):
        data, queries, truth = workload
        index = HashIndex(ITQ(code_length=9, seed=0), data, prober=GQR())
        recalls = recall_at_budgets(
            index, queries, truth, [30, 100, 300, 1000, 3000]
        )
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))

    def test_precision_increases_with_code_length(self, workload):
        """Figure 4a: longer codes retrieve higher-precision candidates
        at the same recall level (HR)."""
        data, queries, truth = workload
        recalls = {}
        for m in (6, 12):
            index = HashIndex(
                ITQ(code_length=m, seed=0), data,
                prober=GenerateHammingRanking(),
            )
            recalls[m] = _mean_recall_at(index, queries, truth, 200)
        assert recalls[12] > recalls[6]
