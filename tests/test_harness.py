"""Tests for the recall-time experiment harness."""

import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, ground_truth_knn
from repro.eval.harness import (
    CurvePoint,
    default_budgets,
    recall_at_budgets,
    speedup_at_recall,
    sweep_budgets,
    time_to_recall,
)
from repro.hashing import ITQ
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_mixture(800, 16, n_clusters=8, seed=0)
    queries = data[:10]
    truth = ground_truth_knn(queries, data, 10)
    index = HashIndex(ITQ(code_length=6, seed=0), data, prober=GQR())
    return data, queries, truth, index


class TestDefaultBudgets:
    def test_strictly_increasing_ending_at_n(self):
        budgets = default_budgets(10_000)
        assert budgets == sorted(set(budgets))
        assert budgets[-1] == 10_000

    def test_small_dataset(self):
        budgets = default_budgets(50)
        assert budgets[-1] == 50


class TestSweepBudgets:
    def test_curve_shape(self, setup):
        _, queries, truth, index = setup
        curve = sweep_budgets(index, queries, truth, k=10, budgets=[50, 200, 800])
        assert len(curve) == 3
        assert all(isinstance(p, CurvePoint) for p in curve)

    def test_recall_monotone_in_budget(self, setup):
        _, queries, truth, index = setup
        curve = sweep_budgets(index, queries, truth, k=10, budgets=[20, 100, 800])
        recalls = [p.recall for p in curve]
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))

    def test_full_budget_recall_one(self, setup):
        data, queries, truth, index = setup
        curve = sweep_budgets(index, queries, truth, k=10, budgets=[len(data)])
        assert curve[0].recall == pytest.approx(1.0)

    def test_truth_alignment_validated(self, setup):
        _, queries, truth, index = setup
        with pytest.raises(ValueError):
            sweep_budgets(index, queries, truth[:3], k=10, budgets=[10])


class TestRecallAtBudgets:
    def test_matches_sweep_recalls(self, setup):
        _, queries, truth, index = setup
        budgets = [50, 200, 800]
        fast = recall_at_budgets(index, queries, truth, budgets)
        slow = [
            p.recall
            for p in sweep_budgets(index, queries, truth, k=10, budgets=budgets)
        ]
        assert fast == pytest.approx(slow, abs=0.08)

    def test_budget_past_stream_end(self, setup):
        data, queries, truth, index = setup
        out = recall_at_budgets(index, queries, truth, [10 * len(data)])
        assert out[0] == pytest.approx(1.0)


class TestTimeToRecall:
    def _curve(self, pairs):
        return [
            CurvePoint(budget=i, seconds=s, recall=r, items=0, buckets=0)
            for i, (s, r) in enumerate(pairs)
        ]

    def test_exact_point(self):
        curve = self._curve([(1.0, 0.5), (2.0, 0.9)])
        assert time_to_recall(curve, 0.9) == 2.0

    def test_interpolation(self):
        curve = self._curve([(1.0, 0.5), (3.0, 0.9)])
        assert time_to_recall(curve, 0.7) == pytest.approx(2.0)

    def test_unreachable_is_inf(self):
        curve = self._curve([(1.0, 0.5)])
        assert time_to_recall(curve, 0.99) == float("inf")

    def test_first_point_already_above(self):
        curve = self._curve([(1.0, 0.95)])
        assert time_to_recall(curve, 0.9) == 1.0

    def test_target_validation(self):
        with pytest.raises(ValueError):
            time_to_recall([], 0.0)


class TestSpeedup:
    def test_ratio(self):
        slow = [CurvePoint(0, 4.0, 0.9, 0, 0)]
        fast = [CurvePoint(0, 1.0, 0.9, 0, 0)]
        assert speedup_at_recall(slow, fast, 0.9) == pytest.approx(4.0)


class TestSpeedupEdgeCases:
    def test_unreachable_method_gives_zero_speedup(self):
        reach = [CurvePoint(0, 1.0, 0.95, 0, 0)]
        plateau = [CurvePoint(0, 1.0, 0.5, 0, 0)]
        assert speedup_at_recall(reach, plateau, 0.9) == 0.0

    def test_unreachable_baseline_gives_inf(self):
        plateau = [CurvePoint(0, 1.0, 0.5, 0, 0)]
        reach = [CurvePoint(0, 1.0, 0.95, 0, 0)]
        assert speedup_at_recall(plateau, reach, 0.9) == float("inf")
