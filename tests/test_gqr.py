"""Tests for generate-to-probe QD ranking (Algorithms 2-4)."""

import numpy as np
import pytest

from repro.core.generation_tree import SharedGenerationTree
from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.core.quantization_distance import quantization_distances


@pytest.fixture()
def probe_inputs(fitted_itq, small_data):
    query = small_data[23]
    signature, costs = fitted_itq.probe_info(query)
    return signature, costs


class TestGQR:
    def test_generates_full_code_space_once(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        buckets = list(GQR().probe(small_table, signature, costs))
        assert sorted(buckets) == list(range(1 << 8))

    def test_first_bucket_is_query_code(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        assert next(GQR().probe(small_table, signature, costs)) == signature

    def test_qd_stream_non_decreasing(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        qds = [qd for _, qd in GQR().probe_scored(small_table, signature, costs)]
        assert all(b >= a - 1e-12 for a, b in zip(qds, qds[1:]))

    def test_scored_qd_matches_definition(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        pairs = list(GQR().probe_scored(small_table, signature, costs))
        buckets = np.asarray([b for b, _ in pairs])
        expected = quantization_distances(signature, buckets, costs)
        assert np.allclose([qd for _, qd in pairs], expected)

    def test_equivalent_to_qd_ranking(self, small_table, probe_inputs):
        """R2: GQR is QD ranking in semantics — same occupied-bucket
        order up to exact-QD ties."""
        signature, costs = probe_inputs
        qr_order = list(QDRanking().probe(small_table, signature, costs))
        gqr_order = [
            b for b in GQR().probe(small_table, signature, costs)
            if b in small_table
        ]
        qr_qds = quantization_distances(signature, np.asarray(qr_order), costs)
        gqr_qds = quantization_distances(signature, np.asarray(gqr_order), costs)
        assert np.allclose(qr_qds, gqr_qds)
        assert sorted(qr_order) == sorted(gqr_order)

    def test_collect_matches_qr_candidates(
        self, small_table, fitted_itq, small_data
    ):
        """Same candidate sets at any budget (modulo QD ties)."""
        for qi in (5, 50, 500):
            signature, costs = fitted_itq.probe_info(small_data[qi])
            gqr_ids = set(
                GQR().collect(small_table, signature, costs, 150).tolist()
            )
            qr_ids = set(
                QDRanking().collect(small_table, signature, costs, 150).tolist()
            )
            # Tie-broken orders may swap equal-QD buckets at the margin;
            # the overwhelming majority of candidates must coincide.
            assert len(gqr_ids & qr_ids) / len(gqr_ids | qr_ids) > 0.9

    def test_flip_cost_length_validated(self, small_table):
        with pytest.raises(ValueError):
            list(GQR().probe(small_table, 0, np.zeros(5)))

    def test_shared_tree_same_order(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        plain = list(GQR().probe(small_table, signature, costs))
        tree = SharedGenerationTree(code_length=8)
        shared = list(GQR(shared_tree=tree).probe(small_table, signature, costs))
        assert plain == shared

    def test_shared_tree_code_length_mismatch(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        tree = SharedGenerationTree(code_length=9)
        with pytest.raises(ValueError):
            list(GQR(shared_tree=tree).probe(small_table, signature, costs))

    def test_cost_transform_changes_multibit_order_only(
        self, small_table, probe_inputs
    ):
        """Squared costs keep single-bit order but may reorder multi-bit
        flips; the stream must still cover the code space exactly once."""
        signature, costs = probe_inputs
        squared = list(
            GQR(cost_transform=np.square).probe(small_table, signature, costs)
        )
        assert sorted(squared) == list(range(1 << 8))

    def test_cost_transform_validated(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        bad = GQR(cost_transform=lambda c: -c)
        with pytest.raises(ValueError):
            list(bad.probe(small_table, signature, costs))

    def test_zero_costs_fine(self, small_table):
        buckets = list(GQR().probe(small_table, 0, np.zeros(8)))
        assert sorted(buckets) == list(range(256))
