"""Tests for QD ranking (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.qd_ranking import QDRanking
from repro.core.quantization_distance import quantization_distances
from repro.index.hash_table import HashTable


@pytest.fixture()
def probe_inputs(fitted_itq, small_data):
    query = small_data[11]
    signature, costs = fitted_itq.probe_info(query)
    return signature, costs


class TestQDRanking:
    def test_probes_every_occupied_bucket_once(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        order = list(QDRanking().probe(small_table, signature, costs))
        assert sorted(order) == sorted(small_table.signatures())

    def test_order_is_ascending_qd(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        order = list(QDRanking().probe(small_table, signature, costs))
        qds = quantization_distances(signature, np.asarray(order), costs)
        assert (np.diff(qds) >= -1e-12).all()

    def test_query_bucket_first_when_occupied(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        if signature in small_table:
            first = next(QDRanking().probe(small_table, signature, costs))
            assert first == signature

    def test_empty_table(self, probe_inputs):
        signature, costs = probe_inputs
        table = HashTable(np.empty((0, 8), dtype=np.uint8))
        assert list(QDRanking().probe(table, signature, costs)) == []

    def test_collect_reaches_budget(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        ids = QDRanking().collect(small_table, signature, costs, 100)
        assert len(ids) >= 100

    def test_collect_all_items(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        ids = QDRanking().collect(
            small_table, signature, costs, small_table.num_items
        )
        assert sorted(ids.tolist()) == list(range(small_table.num_items))

    def test_collect_rejects_zero_budget(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        with pytest.raises(ValueError):
            QDRanking().collect(small_table, signature, costs, 0)
