"""Tests for the related-work LSH baselines: QALSH and C2LSH."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.index.c2lsh import C2LSH
from repro.index.linear_scan import knn_linear_scan
from repro.index.qalsh import QALSH
from repro.search.stream_index import StreamSearchIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1200, 16, n_clusters=10, seed=23)


@pytest.fixture(scope="module")
def truth(data):
    ids, _ = knn_linear_scan(data[:15], data, 10)
    return ids


class TestQALSH:
    def test_parameter_validation(self, data):
        with pytest.raises(ValueError):
            QALSH(data, n_projections=0)
        with pytest.raises(ValueError):
            QALSH(data, n_projections=4, collision_threshold=5)
        with pytest.raises(ValueError):
            QALSH(np.zeros(8))

    def test_stream_covers_all_items_once(self, data):
        index = QALSH(data, n_projections=8, collision_threshold=3, seed=0)
        found = np.concatenate(list(index.candidate_stream(data[0])))
        assert sorted(found.tolist()) == list(range(len(data)))
        assert len(found) == len(data)

    def test_early_candidates_are_projection_neighbors(self, data):
        """The first emitted items collide in many projections, so they
        should be closer than random items on average."""
        index = QALSH(data, n_projections=12, collision_threshold=6, seed=0)
        query = data[7]
        first_batchs = []
        for ids in index.candidate_stream(query):
            first_batchs.extend(ids.tolist())
            if len(first_batchs) >= 30:
                break
        near = np.linalg.norm(data[first_batchs] - query, axis=1).mean()
        overall = np.linalg.norm(data - query, axis=1).mean()
        assert near < overall

    def test_search_full_budget_exact(self, data):
        index = StreamSearchIndex(
            QALSH(data, n_projections=8, collision_threshold=3, seed=0), data
        )
        query = data[3]
        result = index.search(query, k=10, n_candidates=len(data))
        expected, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(expected[0]))

    def test_reasonable_recall_at_budget(self, data, truth):
        index = StreamSearchIndex(
            QALSH(data, n_projections=16, collision_threshold=6, seed=0), data
        )
        hits = 0
        for qi in range(15):
            result = index.search(data[qi], k=10, n_candidates=150)
            hits += len(np.intersect1d(result.ids, truth[qi]))
        assert hits / 150 > 0.5

    def test_threshold_one_emits_fast(self, data):
        index = QALSH(data, n_projections=4, collision_threshold=1, seed=0)
        first = next(iter(index.candidate_stream(data[0])))
        assert len(first) >= 1


class TestC2LSH:
    def test_parameter_validation(self, data):
        with pytest.raises(ValueError):
            C2LSH(data, n_projections=0)
        with pytest.raises(ValueError):
            C2LSH(data, bucket_width=0)
        with pytest.raises(ValueError):
            C2LSH(data, n_projections=4, collision_threshold=9)

    def test_stream_covers_all_items_once(self, data):
        index = C2LSH(data, n_projections=8, collision_threshold=3, seed=0)
        found = np.concatenate(list(index.candidate_stream(data[0])))
        assert sorted(found.tolist()) == list(range(len(data)))
        assert len(found) == len(data)

    def test_search_full_budget_exact(self, data):
        index = StreamSearchIndex(
            C2LSH(data, n_projections=8, collision_threshold=3, seed=0), data
        )
        query = data[5]
        result = index.search(query, k=10, n_candidates=len(data))
        expected, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(expected[0]))

    def test_reasonable_recall_at_budget(self, data, truth):
        index = StreamSearchIndex(
            C2LSH(
                data,
                n_projections=16,
                bucket_width=0.5,
                collision_threshold=6,
                seed=0,
            ),
            data,
        )
        hits = 0
        for qi in range(15):
            result = index.search(data[qi], k=10, n_candidates=150)
            hits += len(np.intersect1d(result.ids, truth[qi]))
        assert hits / 150 > 0.4

    def test_query_far_outside_data_range(self, data):
        """Anchors far outside the key range must still terminate and
        cover everything."""
        index = C2LSH(data, n_projections=6, collision_threshold=2, seed=0)
        far_query = np.full(data.shape[1], 50.0)
        found = np.concatenate(list(index.candidate_stream(far_query)))
        assert sorted(found.tolist()) == list(range(len(data)))


class TestStreamSearchIndex:
    def test_metric_validated(self, data):
        with pytest.raises(KeyError):
            StreamSearchIndex(
                QALSH(data, n_projections=4, collision_threshold=2, seed=0),
                data,
                metric="nope",
            )

    def test_num_items_passthrough(self, data):
        index = StreamSearchIndex(
            QALSH(data, n_projections=4, collision_threshold=2, seed=0), data
        )
        assert index.num_items == len(data)
