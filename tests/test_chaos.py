"""Chaos tests: the coordinator's behaviour under injected faults.

The invariants under test:

* **replication masks faults** — with ``replication_factor=2`` and any
  single-worker crash, results are bit-identical to fault-free search
  and ``coverage == 1.0``;
* **degradation is exact** — an unreplicated crash *returns* (never
  raises) the exact top-k of the reachable partitions, with
  ``coverage`` equal to the reachable item fraction;
* **determinism** — every chaos run is bit-identical given the same
  seeded :class:`FaultPlan` (all timeout / hedge / deadline / backoff
  decisions live on the simulated clock).

``REPRO_CHAOS_SEED`` (CI's chaos matrix) shifts the seeds the
randomised scenarios draw from.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.data import gaussian_mixture
from repro.distributed.cluster import (
    BreakerPolicy,
    DistributedHashIndex,
    HealthTracker,
    NetworkModel,
    RetryPolicy,
    _split_budget,
)
from repro.distributed.faults import FaultPlan, WorkerFaultSpec
from repro.hashing import ITQ

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: CI's chaos job sweeps this (see .github/workflows/ci.yml).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

K = 10
BUDGET = 200


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(900, 12, n_clusters=6, seed=29)


@pytest.fixture(scope="module")
def hasher(data):
    return ITQ(code_length=6, seed=0).fit(data)


def make_index(hasher, data, plan=None, replication=1, workers=4, **kwargs):
    return DistributedHashIndex(
        hasher,
        data,
        num_workers=workers,
        seed=0,
        replication_factor=replication,
        fault_plan=plan,
        **kwargs,
    )


def expected_reachable_merge(index, hasher, query, reachable):
    """The fault-free merge restricted to ``reachable`` partitions.

    Recomputed from the honest primary workers with the same budget
    split the coordinator uses — the ground truth the degraded result
    must match exactly.
    """
    probe_info = hasher.probe_info(query)
    budgets = _split_budget(BUDGET, index.num_partitions)
    merged = []
    for p in reachable:
        partial = index.workers[p].search_local(
            query, K, budgets[p], probe_info
        )
        merged.extend(
            (float(d), int(i))
            for d, i in zip(partial.distances, partial.ids)
        )
    merged.sort()
    del merged[K:]
    ids = np.asarray([i for _, i in merged], dtype=np.int64)
    distances = np.asarray([d for d, _ in merged], dtype=np.float64)
    return ids, distances


def assert_same_answer(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)


class TestReplicationMasksFaults:
    def test_replicated_layout_is_bit_identical_fault_free(
        self, data, hasher
    ):
        base = make_index(hasher, data).search(data[3], K, BUDGET)
        replicated = make_index(hasher, data, replication=2).search(
            data[3], K, BUDGET
        )
        assert_same_answer(base, replicated)
        assert replicated.extras["coverage"] == 1.0
        assert not replicated.extras["degraded"]
        assert replicated.extras["retries"] == 0
        assert replicated.extras["hedges"] == 0

    @pytest.mark.parametrize("crashed", [0, 1, 2, 3])
    def test_single_crash_with_replication_masks(
        self, data, hasher, crashed
    ):
        baseline = make_index(hasher, data).search(data[7], K, BUDGET)
        plan = FaultPlan.crash(crashed, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan, replication=2)
        result = index.search(data[7], K, BUDGET)
        assert_same_answer(baseline, result)
        assert result.extras["coverage"] == 1.0
        assert not result.extras["degraded"]
        assert result.extras["retries"] >= 1  # the crash was seen
        assert result.extras["partitions_lost"] == 0

    def test_replica_crash_is_invisible(self, data, hasher):
        # Worker 4 is partition 0's *replica* (striped layout); the
        # primary answers first, so the fault never even fires.
        plan = FaultPlan.crash(4, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan, replication=2)
        result = index.search(data[7], K, BUDGET)
        assert result.extras["retries"] == 0
        assert result.extras["coverage"] == 1.0


class TestGracefulDegradation:
    def test_unreplicated_crash_returns_exact_reachable_topk(
        self, data, hasher
    ):
        plan = FaultPlan.crash(1, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan)
        result = index.search(data[11], K, BUDGET)  # returns, no raise
        assert result.extras["degraded"]
        sizes = index.shard_sizes()
        expected_cov = (sum(sizes) - sizes[1]) / sum(sizes)
        assert result.extras["coverage"] == pytest.approx(expected_cov)
        assert result.extras["partitions_lost"] == 1
        ids, distances = expected_reachable_merge(
            index, hasher, data[11], [0, 2, 3]
        )
        assert np.array_equal(result.ids, ids)
        assert np.array_equal(result.distances, distances)
        kinds = {e["kind"] for e in result.extras["fault_events"]}
        assert kinds == {"crash"}

    def test_straggler_beyond_timeout_degrades(self, data, hasher):
        plan = FaultPlan.slow(2, 0.2, seed=CHAOS_SEED)  # >> 50ms timeout
        index = make_index(hasher, data, plan=plan)
        result = index.search(data[0], K, BUDGET)
        assert result.extras["degraded"]
        kinds = {e["kind"] for e in result.extras["fault_events"]}
        assert kinds == {"timeout"}

    def test_deadline_stops_retry_chain(self, data, hasher):
        plan = FaultPlan.slow(0, 0.03, seed=CHAOS_SEED)  # below timeout
        index = make_index(hasher, data, plan=plan)
        tight = index.search(data[0], K, BUDGET, deadline_seconds=0.01)
        assert tight.extras["degraded"]
        kinds = {e["kind"] for e in tight.extras["fault_events"]}
        assert "deadline" in kinds
        loose = index.search(data[0], K, BUDGET, deadline_seconds=10.0)
        assert not loose.extras["degraded"]

    def test_policy_default_deadline_applies(self, data, hasher):
        plan = FaultPlan.slow(0, 0.03, seed=CHAOS_SEED)
        index = make_index(
            hasher,
            data,
            plan=plan,
            retry_policy=RetryPolicy(deadline_seconds=0.01),
        )
        result = index.search(data[0], K, BUDGET)
        assert result.extras["degraded"]

    def test_transient_fault_heals_within_query(self, data, hasher):
        baseline = make_index(hasher, data).search(data[5], K, BUDGET)
        plan = FaultPlan.transient(3, failures=1, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan)
        result = index.search(data[5], K, BUDGET)
        assert_same_answer(baseline, result)
        assert result.extras["retries"] == 1
        assert not result.extras["degraded"]

    def test_corruption_detected_and_retried(self, data, hasher):
        baseline = make_index(hasher, data).search(data[5], K, BUDGET)
        plan = FaultPlan.corrupt(2, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan)
        result = index.search(data[5], K, BUDGET)
        assert_same_answer(baseline, result)
        kinds = {e["kind"] for e in result.extras["fault_events"]}
        assert kinds == {"corrupt"}
        assert not result.extras["degraded"]


class TestHedging:
    def test_straggler_with_replica_is_hedged(self, data, hasher):
        baseline = make_index(hasher, data).search(data[9], K, BUDGET)
        plan = FaultPlan.slow(0, 0.03, seed=CHAOS_SEED)  # > 20ms hedge
        index = make_index(hasher, data, plan=plan, replication=2)
        result = index.search(data[9], K, BUDGET)
        assert result.extras["hedges"] == 1
        assert_same_answer(baseline, result)  # replicas hold same data
        assert not result.extras["degraded"]
        events = [
            e for e in result.extras["fault_events"] if e["kind"] == "hedge"
        ]
        assert events and events[0]["worker"] == 0

    def test_no_hedge_without_replica(self, data, hasher):
        plan = FaultPlan.slow(0, 0.03, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan)
        result = index.search(data[9], K, BUDGET)
        assert result.extras["hedges"] == 0
        assert not result.extras["degraded"]  # slow but under timeout

    def test_hedging_can_be_disabled(self, data, hasher):
        plan = FaultPlan.slow(0, 0.03, seed=CHAOS_SEED)
        index = make_index(
            hasher,
            data,
            plan=plan,
            replication=2,
            retry_policy=RetryPolicy(hedge_threshold_seconds=None),
        )
        result = index.search(data[9], K, BUDGET)
        assert result.extras["hedges"] == 0


class TestCircuitBreaker:
    def test_tracker_automaton(self):
        tracker = HealthTracker(
            BreakerPolicy(failure_threshold=2, cooldown_queries=3)
        )
        assert tracker.usable(0, 0)
        tracker.on_failure(0, 0)
        assert tracker.state(0) == "closed"
        tracker.on_failure(0, 0)
        assert tracker.state(0) == "open"
        assert not tracker.usable(0, 1)
        assert tracker.usable(0, 3)  # cooldown elapsed -> half-open trial
        assert tracker.state(0) == "half_open"
        tracker.on_success(0)
        assert tracker.state(0) == "closed"
        assert tracker.states() == {}

    def test_half_open_failure_reopens(self):
        tracker = HealthTracker(
            BreakerPolicy(failure_threshold=2, cooldown_queries=3)
        )
        tracker.on_failure(0, 0)
        tracker.on_failure(0, 0)
        assert tracker.usable(0, 3)
        tracker.on_failure(0, 3)  # the trial fails
        assert tracker.state(0) == "open"
        assert not tracker.usable(0, 4)

    def test_breaker_diverts_traffic_from_crashed_worker(
        self, data, hasher
    ):
        baseline_index = make_index(hasher, data)
        plan = FaultPlan.crash(0, seed=CHAOS_SEED)
        index = make_index(
            hasher,
            data,
            plan=plan,
            replication=2,
            breaker_policy=BreakerPolicy(
                failure_threshold=3, cooldown_queries=50
            ),
        )
        retries = []
        for q in range(6):
            baseline = baseline_index.search(data[q], K, BUDGET)
            result = index.search(data[q], K, BUDGET)
            assert_same_answer(baseline, result)
            retries.append(result.extras["retries"])
        # Three failures trip the breaker; after that the router goes
        # straight to the replica and the crash costs nothing.
        assert retries[:3] == [1, 1, 1]
        assert retries[3:] == [0, 0, 0]
        assert index.breaker_states() == {0: "open"}


class TestDeterminism:
    @pytest.mark.parametrize(
        "seed", [CHAOS_SEED, CHAOS_SEED + 1, CHAOS_SEED + 2]
    )
    def test_random_plan_runs_are_bit_identical(self, data, hasher, seed):
        plan = FaultPlan.random(6, seed=seed, p_crash=0.2, p_slow=0.2)
        runs = []
        for _ in range(2):
            index = make_index(hasher, data, plan=plan, workers=6)
            results = [index.search(data[q], K, BUDGET) for q in range(4)]
            runs.append(results)
        for a, b in zip(*runs):
            assert_same_answer(a, b)
            for key in ("coverage", "degraded", "retries", "hedges",
                        "fault_events", "partitions_lost"):
                assert a.extras[key] == b.extras[key], key


# The spec vocabulary the property test draws from: every fault kind,
# both below and beyond what the default policy can recover from
# (max_attempts=3, attempt timeout 50ms).
_SPEC_OPTIONS = (
    WorkerFaultSpec(),
    WorkerFaultSpec(crashed=True),
    WorkerFaultSpec(transient_failures=1),
    WorkerFaultSpec(transient_failures=2),
    WorkerFaultSpec(transient_failures=3),  # never heals in-budget
    WorkerFaultSpec(corrupt_attempts=1),
    WorkerFaultSpec(corrupt_attempts=3),  # never clean in-budget
    WorkerFaultSpec(slowdown_seconds=0.01),
    WorkerFaultSpec(slowdown_seconds=0.08),  # beyond attempt timeout
)


def _reachable(spec, policy=RetryPolicy()):
    """Independent prediction of whether an unreplicated partition
    survives the retry chain under the default policy."""
    if spec.crashed:
        return False
    if (
        policy.attempt_timeout_seconds is not None
        and spec.slowdown_seconds >= policy.attempt_timeout_seconds
    ):
        return False
    first_clean = max(spec.transient_failures, spec.corrupt_attempts)
    return first_clean < policy.max_attempts


class TestDegradedMergeProperty:
    @given(
        specs=st.lists(
            st.sampled_from(_SPEC_OPTIONS), min_size=3, max_size=3
        ),
        seed=st.integers(0, 9999),
        query_idx=st.integers(0, 49),
    )
    @settings(max_examples=20, deadline=None)
    def test_degraded_merge_is_exact_reachable_topk(
        self, data, hasher, specs, seed, query_idx
    ):
        """For any seeded plan: the merge equals the fault-free top-k
        restricted to reachable partitions, coverage matches the
        reachable item fraction, and reruns are bit-identical."""
        plan = FaultPlan(
            {w: s for w, s in enumerate(specs)}, seed=CHAOS_SEED + seed
        )
        query = data[query_idx]
        index = make_index(hasher, data, plan=plan, workers=3)
        result = index.search(query, K, BUDGET)

        reachable = [
            p for p in range(3) if _reachable(plan.spec(p))
        ]
        ids, distances = expected_reachable_merge(
            index, hasher, query, reachable
        )
        assert np.array_equal(result.ids, ids)
        assert np.array_equal(result.distances, distances)

        sizes = index.shard_sizes()
        expected_cov = sum(sizes[p] for p in reachable) / sum(sizes)
        assert result.extras["coverage"] == pytest.approx(expected_cov)
        assert result.extras["degraded"] == (len(reachable) < 3)

        rerun = make_index(hasher, data, plan=plan, workers=3).search(
            query, K, BUDGET
        )
        assert_same_answer(result, rerun)
        assert rerun.extras["fault_events"] == result.extras["fault_events"]


class TestMakespanUnderFaults:
    def test_retry_overhead_is_serial(self):
        model = NetworkModel(
            latency_seconds=1.0, bandwidth_bytes_per_second=100.0
        )
        span = model.makespan([1.0], 100, retry_seconds=[2.0])
        assert span == pytest.approx(2 * 1.0 + (2.0 + 1.0) + 1.0)

    def test_hedge_branch_races_in_parallel(self):
        model = NetworkModel(latency_seconds=1.0)
        span = model.makespan(
            [5.0], 0, retry_seconds=[0.0], hedge_seconds=[2.0]
        )
        assert span == pytest.approx(2 * 1.0 + 2.0)

    def test_hedge_none_means_serial_chain(self):
        model = NetworkModel(latency_seconds=1.0)
        a = model.makespan([3.0], 0, hedge_seconds=[None])
        b = model.makespan([3.0], 0)
        assert a == b == pytest.approx(2 * 1.0 + 3.0)

    def test_slowest_partition_dominates(self):
        model = NetworkModel(latency_seconds=0.0)
        span = model.makespan(
            [1.0, 1.0],
            0,
            retry_seconds=[0.0, 4.0],
            hedge_seconds=[None, None],
        )
        assert span == pytest.approx(5.0)

    def test_fault_free_defaults_unchanged(self):
        model = NetworkModel(
            latency_seconds=1.0, bandwidth_bytes_per_second=100.0
        )
        assert model.makespan([0.5, 2.0], 200) == pytest.approx(
            2 * 1.0 + 2.0 + 2.0
        )


class TestBudgetSplit:
    def test_remainder_lands_on_first_partitions(self):
        assert _split_budget(100, 8) == [13, 13, 13, 13, 12, 12, 12, 12]
        assert _split_budget(7, 3) == [3, 2, 2]

    def test_totals_preserved(self):
        for n in (8, 97, 100, 1000):
            for targets in (1, 3, 7, 8):
                split = _split_budget(n, targets)
                assert sum(split) == n
                assert len(split) == targets
                assert max(split) - min(split) <= 1

    def test_minimum_one_per_partition(self):
        assert _split_budget(2, 4) == [1, 1, 1, 1]


class TestChaosTelemetry:
    def test_fault_counters_and_coverage_visible(self, data, hasher):
        plan = FaultPlan.crash(0, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan)
        with obs.telemetry_session(
            sampler=obs.TraceSampler(every_n=1)
        ) as state:
            index.search(data[0], K, BUDGET)
            parsed = obs.parse_prometheus_text(
                obs.to_prometheus_text(state.registry)
            )
        assert parsed[("repro_distributed_retries_total", ())] == 3
        assert parsed[("repro_distributed_degraded_total", ())] == 1
        faults = sum(
            v
            for (name, labels), v in parsed.items()
            if name == "repro_shard_faults_total"
            and ("kind", "crash") in labels
        )
        assert faults == 3

    def test_breaker_gauge_reflects_open_state(self, data, hasher):
        plan = FaultPlan.crash(0, seed=CHAOS_SEED)
        index = make_index(
            hasher,
            data,
            plan=plan,
            replication=2,
            breaker_policy=BreakerPolicy(
                failure_threshold=1, cooldown_queries=50
            ),
        )
        with obs.telemetry_session() as state:
            index.search(data[0], K, BUDGET)
            parsed = obs.parse_prometheus_text(
                obs.to_prometheus_text(state.registry)
            )
        key = ("repro_breaker_state", (("worker", "0"),))
        assert parsed[key] == 2.0  # open

    def test_sampled_trace_embeds_fault_events(self, data, hasher):
        plan = FaultPlan.transient(1, failures=1, seed=CHAOS_SEED)
        index = make_index(hasher, data, plan=plan)
        with obs.telemetry_session(
            sampler=obs.TraceSampler(every_n=1)
        ) as state:
            index.search(data[0], K, BUDGET)
            trace = state.sampler.last()
        assert trace is not None
        assert trace.stats["type"] == "distributed"
        assert trace.stats["retries"] == 1
        assert trace.stats["fault_events"][0]["kind"] == "transient"
