"""Tests for the codes-only compact index (short probe / long rerank)."""

import numpy as np
import pytest

from repro.data import correlated_gaussian, ground_truth_knn
from repro.hashing import ITQ
from repro.search.compact_index import CompactHashIndex
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def setup():
    # Unclustered correlated data: neighbourhoods are "metric" rather
    # than cluster-internal, the regime where code-only re-ranking has
    # a fair ceiling (inside tight clusters no code length can rank the
    # k-NN — see the module docstring).
    data = correlated_gaussian(2500, 24, correlation=0.5, seed=151)
    queries = data[:40]
    truth = ground_truth_knn(queries, data, 10)
    probe = ITQ(code_length=8, seed=0).fit(data)
    long = ITQ(code_length=24, seed=1).fit(data)
    return data, queries, truth, probe, long


def mean_recall(index, queries, truth, budget):
    hits = 0
    for query, truth_row in zip(queries, truth):
        result = index.search(query, k=10, n_candidates=budget)
        hits += len(np.intersect1d(result.ids, truth_row))
    return hits / (10 * len(queries))


class TestConstruction:
    def test_requires_fitted_hashers(self, setup):
        data, _, _, probe, _ = setup
        with pytest.raises(ValueError):
            CompactHashIndex(ITQ(code_length=8), probe, data)
        with pytest.raises(ValueError):
            CompactHashIndex(probe, ITQ(code_length=48), data)

    def test_rerank_validated(self, setup):
        data, _, _, probe, long = setup
        with pytest.raises(ValueError):
            CompactHashIndex(probe, long, data, rerank="fuzzy")

    def test_memory_far_below_raw_vectors(self, setup):
        data, _, _, probe, long = setup
        compact = CompactHashIndex(probe, long, data)
        assert compact.memory_bytes() < data.nbytes / 4


class TestRecall:
    def test_longer_rerank_codes_help(self, setup):
        """The compact recall ceiling grows with rerank-code length."""
        data, queries, truth, probe, long = setup
        short_rerank = ITQ(code_length=6, seed=2).fit(data)
        coarse = CompactHashIndex(probe, short_rerank, data)
        fine = CompactHashIndex(probe, long, data)
        budget = 200
        assert mean_recall(fine, queries, truth, budget) > (
            mean_recall(coarse, queries, truth, budget)
        )

    def test_asymmetric_beats_symmetric_when_hamming_ties(self, setup):
        """Few bits per dimension -> frequent Hamming ties -> the QD
        margins pay off (the asymmetric-distance effect)."""
        data, queries, truth, probe, long = setup
        asym = CompactHashIndex(probe, long, data, rerank="asymmetric")
        sym = CompactHashIndex(probe, long, data, rerank="symmetric")
        budget = 400
        assert mean_recall(asym, queries, truth, budget) > (
            mean_recall(sym, queries, truth, budget)
        )

    def test_exact_rerank_upper_bounds_compact(self, setup):
        data, queries, truth, probe, long = setup
        compact = CompactHashIndex(probe, long, data)
        full = HashIndex(probe, data)
        budget = 200
        assert mean_recall(full, queries, truth, budget) >= (
            mean_recall(compact, queries, truth, budget) - 0.02
        )

    def test_compact_recall_reasonable(self, setup):
        data, queries, truth, probe, long = setup
        compact = CompactHashIndex(probe, long, data)
        assert mean_recall(compact, queries, truth, 400) > 0.25


class TestEstimates:
    def test_asymmetric_distances_are_long_code_qd(self, setup):
        from repro.core.quantization_distance import quantization_distance

        data, queries, _, probe, long = setup
        compact = CompactHashIndex(probe, long, data)
        query = queries[0]
        long_sig, long_costs = long.probe_info(query)
        result = compact.search(query, k=5, n_candidates=100)
        for item, estimate in zip(result.ids, result.distances):
            item_sig = int(compact._long_signatures[item])
            assert estimate == pytest.approx(
                quantization_distance(long_sig, item_sig, long_costs)
            )

    def test_symmetric_distances_are_integers(self, setup):
        data, queries, _, probe, long = setup
        compact = CompactHashIndex(probe, long, data, rerank="symmetric")
        result = compact.search(queries[1], k=5, n_candidates=100)
        assert np.allclose(result.distances, np.round(result.distances))

    def test_estimates_ascending(self, setup):
        data, queries, _, probe, long = setup
        compact = CompactHashIndex(probe, long, data)
        result = compact.search(queries[2], k=10, n_candidates=200)
        assert (np.diff(result.distances) >= -1e-12).all()

    def test_empty_result_for_empty_stream(self, setup):
        """A prober that yields nothing gives an empty, well-formed result."""
        from repro.core.prober import BucketProber

        class SilentProber(BucketProber):
            def probe(self, table, signature, flip_costs):
                return iter([])

        data, queries, _, probe, long = setup
        compact = CompactHashIndex(
            probe, long, data, prober=SilentProber()
        )
        result = compact.search(queries[0], k=5, n_candidates=100)
        assert len(result.ids) == 0
