"""Shared fixtures: small synthetic datasets and fitted hashers.

Data sizes are deliberately small — the unit suite exercises logic and
invariants, not throughput (benchmarks own the timing claims).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.index import HashTable


@pytest.fixture(scope="session")
def small_data() -> np.ndarray:
    """Clustered dataset: 1200 points in 24 dims."""
    return gaussian_mixture(1200, 24, n_clusters=10, seed=42)


@pytest.fixture(scope="session")
def small_queries(small_data) -> np.ndarray:
    return sample_queries(small_data, 20, seed=7)


@pytest.fixture(scope="session")
def fitted_itq(small_data) -> ITQ:
    return ITQ(code_length=8, seed=0).fit(small_data)


@pytest.fixture(scope="session")
def small_table(fitted_itq, small_data) -> HashTable:
    return HashTable(fitted_itq.encode(small_data))
