"""Tests for the high-level search indexes."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.data import gaussian_mixture
from repro.hashing import ITQ, SpectralHashing
from repro.index.linear_scan import knn_linear_scan
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.quantization.opq import OptimizedProductQuantizer
from repro.search.searcher import (
    HashIndex,
    IMISearchIndex,
    MIHSearchIndex,
    evaluate_candidates,
)


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1500, 24, n_clusters=12, seed=3)


@pytest.fixture(scope="module")
def index(data):
    return HashIndex(ITQ(code_length=8, seed=0), data)


class TestEvaluateCandidates:
    def test_exact_rerank(self, data):
        query = data[0]
        candidates = np.arange(100, dtype=np.int64)
        ids, dists = evaluate_candidates(query, data, candidates, k=5)
        truth, tdists = knn_linear_scan(query[None, :], data[:100], 5)
        assert np.array_equal(ids, truth[0])
        assert np.allclose(dists, tdists[0])

    def test_empty_candidates(self, data):
        ids, dists = evaluate_candidates(
            data[0], data, np.empty(0, dtype=np.int64), k=5
        )
        assert len(ids) == 0 and len(dists) == 0

    def test_fewer_candidates_than_k(self, data):
        ids, _ = evaluate_candidates(
            data[0], data, np.array([3, 7], dtype=np.int64), k=10
        )
        assert len(ids) == 2

    def test_distances_ascending(self, data):
        ids, dists = evaluate_candidates(
            data[0], data, np.arange(200, dtype=np.int64), k=20
        )
        assert (np.diff(dists) >= 0).all()


class TestHashIndex:
    def test_search_returns_k_results(self, index, data):
        result = index.search(data[10], k=10, n_candidates=300)
        assert len(result.ids) == 10
        assert result.n_candidates >= 300 or result.n_candidates == index.num_items

    def test_full_budget_equals_linear_scan(self, index, data):
        """With budget = N the result must be the exact kNN."""
        query = data[77]
        result = index.search(query, k=10, n_candidates=index.num_items)
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))

    def test_unfitted_hasher_fitted_on_data(self, data):
        hasher = ITQ(code_length=8, seed=1)
        assert not hasher.is_fitted
        HashIndex(hasher, data)
        assert hasher.is_fitted

    def test_prefitted_hasher_reused(self, data):
        hasher = ITQ(code_length=8, seed=1).fit(data)
        weights_before = hasher.hashing_matrix.copy()
        HashIndex(hasher, data)
        assert np.array_equal(hasher.hashing_matrix, weights_before)

    def test_prober_swap(self, index, data):
        index_b = HashIndex(
            ITQ(code_length=8, seed=0), data, prober=HammingRanking()
        )
        index_b.prober = QDRanking()
        assert isinstance(index_b.prober, QDRanking)

    def test_mixed_code_lengths_rejected(self, data):
        with pytest.raises(ValueError):
            HashIndex([ITQ(code_length=8), ITQ(code_length=9)], data)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            HashIndex(ITQ(code_length=4), np.zeros(10))

    def test_rejects_empty_hasher_list(self, data):
        with pytest.raises(ValueError):
            HashIndex([], data)

    def test_works_with_nonlinear_hasher(self, data):
        index = HashIndex(SpectralHashing(code_length=8), data)
        result = index.search(data[4], k=5, n_candidates=200)
        assert len(result.ids) == 5


class TestMultiTable:
    def test_candidate_stream_deduplicates(self, data):
        hashers = [ITQ(code_length=8, seed=s) for s in (0, 1, 2)]
        index = HashIndex(hashers, data, prober=GenerateHammingRanking())
        seen = set()
        total = 0
        for ids in index.candidate_stream(data[0]):
            batch = set(ids.tolist())
            assert not batch & seen
            seen |= batch
            total += len(ids)
            if total > 600:
                break
        assert len(seen) == total

    def test_multi_table_covers_all_items(self, data):
        hashers = [ITQ(code_length=8, seed=s) for s in (0, 1)]
        index = HashIndex(hashers, data, prober=GenerateHammingRanking())
        found = np.concatenate(list(index.candidate_stream(data[0])))
        assert sorted(found.tolist()) == list(range(len(data)))

    def test_multi_table_recall_at_least_single(self, data):
        """More tables can only add candidates at a budget (Fig. 12)."""
        truth, _ = knn_linear_scan(data[:10], data, 10)
        single = HashIndex(
            ITQ(code_length=8, seed=0), data, prober=GenerateHammingRanking()
        )
        multi = HashIndex(
            [ITQ(code_length=8, seed=s) for s in range(3)],
            data,
            prober=GenerateHammingRanking(),
        )
        budget = 150

        def mean_recall(index):
            hits = 0
            for qi in range(10):
                res = index.search(data[qi], 10, budget)
                hits += len(np.intersect1d(res.ids, truth[qi]))
            return hits / 100

        # Not a strict theorem per query, but holds on average.
        assert mean_recall(multi) >= mean_recall(single) - 0.05

    def test_num_tables(self, data):
        index = HashIndex([ITQ(code_length=8, seed=s) for s in range(4)], data)
        assert index.num_tables == 4


class TestEarlyStop:
    def test_early_stop_is_exact(self, data):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        truth, _ = knn_linear_scan(data[:5], data, 10)
        for qi in range(5):
            result = index.search_early_stop(data[qi], k=10)
            assert np.array_equal(np.sort(result.ids), np.sort(truth[qi]))

    def test_early_stop_probes_fewer_than_everything(self, data):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        result = index.search_early_stop(data[3], k=5)
        assert result.n_candidates < index.num_items

    def test_early_stop_requires_gqr(self, data):
        index = HashIndex(
            ITQ(code_length=8, seed=0), data, prober=HammingRanking()
        )
        with pytest.raises(TypeError):
            index.search_early_stop(data[0], k=5)

    def test_early_stop_requires_linear_hasher(self, data):
        index = HashIndex(SpectralHashing(code_length=8), data, prober=GQR())
        with pytest.raises(TypeError):
            index.search_early_stop(data[0], k=5)

    def test_early_stop_rejects_multi_table(self, data):
        index = HashIndex(
            [ITQ(code_length=8, seed=s) for s in (0, 1)], data, prober=GQR()
        )
        with pytest.raises(ValueError):
            index.search_early_stop(data[0], k=5)

    def test_max_candidates_cap(self, data):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        result = index.search_early_stop(data[0], k=5, max_candidates=50)
        assert result.n_candidates <= 50 + 200  # cap + one bucket overshoot


class TestMIHSearchIndex:
    def test_search_matches_exact_at_full_budget(self, data):
        index = MIHSearchIndex(ITQ(code_length=8, seed=0), data, num_blocks=2)
        query = data[9]
        result = index.search(query, k=10, n_candidates=len(data))
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))

    def test_candidate_stream_covers_items(self, data):
        index = MIHSearchIndex(ITQ(code_length=8, seed=0), data)
        found = np.concatenate(list(index.candidate_stream(data[0])))
        assert sorted(found.tolist()) == list(range(len(data)))


class TestIMISearchIndex:
    def test_search_matches_exact_at_full_budget(self, data):
        opq = OptimizedProductQuantizer(
            2, n_centroids=8, n_iterations=2, seed=0
        ).fit(data)
        index = IMISearchIndex(opq, data)
        query = data[14]
        result = index.search(query, k=10, n_candidates=len(data))
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))
