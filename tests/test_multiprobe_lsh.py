"""Tests for the Multi-Probe LSH adapter."""

import numpy as np
import pytest

from repro.probing.multiprobe_lsh import MultiProbeLSH


@pytest.fixture()
def probe_inputs(fitted_itq, small_data):
    query = small_data[40]
    return fitted_itq.probe_info(query)


class TestMultiProbeLSH:
    def test_covers_code_space(self, small_table, probe_inputs):
        signature, costs = probe_inputs
        buckets = list(MultiProbeLSH().probe(small_table, signature, costs))
        assert sorted(buckets) == list(range(1 << 8))

    def test_scores_are_squared_sums_non_decreasing(
        self, small_table, probe_inputs
    ):
        signature, costs = probe_inputs
        scores = [
            s for _, s in MultiProbeLSH().probe_scored(small_table, signature, costs)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_single_bit_flips_ordered_like_gqr(self, small_table, probe_inputs):
        """Squaring is monotone, so the *relative order of single-bit
        flips* matches GQR's (multi-bit flips may interleave differently)."""
        from repro.core.gqr import GQR
        from repro.index.codes import hamming_distance

        signature, costs = probe_inputs

        def single_bit_subsequence(prober):
            return [
                b
                for b in prober.probe(small_table, signature, costs)
                if hamming_distance(signature, b) == 1
            ]

        assert single_bit_subsequence(MultiProbeLSH()) == single_bit_subsequence(
            GQR()
        )

    def test_multibit_order_can_differ_from_gqr(self, small_table):
        """Costs (1, 1, 1.9): QD probes {0,1} (2.0) before {2} is wrong —
        QD gives {2}=1.9 < {0,1}=2.0, squared gives {2}=3.61 > {0,1}=2.0,
        so the two methods disagree — exactly the paper's distinction."""
        from repro.core.gqr import GQR

        costs = np.array([1.0, 1.0, 1.9, 10.0, 10.0, 10.0, 10.0, 10.0])
        gq = list(GQR().probe(small_table, 0, costs))
        mp = list(MultiProbeLSH().probe(small_table, 0, costs))
        mask_two = 0b100  # flip bit 2
        mask_01 = 0b011  # flip bits 0 and 1
        assert gq.index(mask_two) < gq.index(mask_01)
        assert mp.index(mask_01) < mp.index(mask_two)
