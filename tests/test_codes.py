"""Tests for binary code packing and Hamming arithmetic."""

import numpy as np
import pytest

from repro.index.codes import (
    MAX_CODE_LENGTH,
    hamming_distance,
    hamming_weight,
    pack_bits,
    pack_code_words,
    packed_hamming_distances,
    packed_qd_distances,
    qd_cost_tables,
    unpack_bits,
    validate_code_length,
)


class TestValidateCodeLength:
    def test_accepts_valid_lengths(self):
        assert validate_code_length(1) == 1
        assert validate_code_length(MAX_CODE_LENGTH) == MAX_CODE_LENGTH

    def test_accepts_numpy_integers(self):
        assert validate_code_length(np.int64(16)) == 16

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            validate_code_length(0)
        with pytest.raises(ValueError):
            validate_code_length(-3)

    def test_rejects_too_long(self):
        with pytest.raises(ValueError):
            validate_code_length(MAX_CODE_LENGTH + 1)

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            validate_code_length(8.0)


class TestPackBits:
    def test_single_code_little_endian_positions(self):
        assert pack_bits([1, 0, 1]) == 0b101

    def test_all_zeros_and_all_ones(self):
        assert pack_bits([0, 0, 0, 0]) == 0
        assert pack_bits([1, 1, 1, 1]) == 15

    def test_batch_returns_int64_array(self):
        sigs = pack_bits(np.array([[1, 0], [0, 1], [1, 1]]))
        assert sigs.dtype == np.int64
        assert sigs.tolist() == [1, 2, 3]

    def test_single_code_returns_python_int(self):
        result = pack_bits(np.array([0, 1, 0]))
        assert isinstance(result, int)
        assert result == 2

    def test_rejects_non_binary_entries(self):
        with pytest.raises(ValueError):
            pack_bits([0, 2, 1])

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_max_length_roundtrip(self):
        bits = np.ones(MAX_CODE_LENGTH, dtype=np.uint8)
        sig = pack_bits(bits)
        assert sig == (1 << MAX_CODE_LENGTH) - 1


class TestUnpackBits:
    def test_inverse_of_pack(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(50, 17)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 17), bits)

    def test_scalar_input_gives_1d(self):
        assert unpack_bits(5, 4).tolist() == [1, 0, 1, 0]

    def test_rejects_out_of_range_signature(self):
        with pytest.raises(ValueError):
            unpack_bits(16, 4)
        with pytest.raises(ValueError):
            unpack_bits(-1, 4)


class TestHamming:
    def test_weight_scalar(self):
        assert hamming_weight(0b1011) == 3
        assert hamming_weight(0) == 0

    def test_weight_array(self):
        assert hamming_weight(np.array([0, 1, 3, 7])).tolist() == [0, 1, 2, 3]

    def test_distance_scalar(self):
        assert hamming_distance(0b1010, 0b0110) == 2
        assert hamming_distance(5, 5) == 0

    def test_distance_broadcasts(self):
        d = hamming_distance(np.array([0, 1, 2, 3]), 0)
        assert d.tolist() == [0, 1, 1, 2]

    def test_distance_matches_bit_count(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 20, size=100)
        b = rng.integers(0, 1 << 20, size=100)
        expected = [bin(int(x) ^ int(y)).count("1") for x, y in zip(a, b)]
        assert hamming_distance(a, b).tolist() == expected

    def test_distance_symmetry(self):
        assert hamming_distance(37, 91) == hamming_distance(91, 37)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            a, b, c = rng.integers(0, 1 << 16, size=3)
            assert hamming_distance(int(a), int(c)) <= (
                hamming_distance(int(a), int(b)) + hamming_distance(int(b), int(c))
            )


class TestPackCodeWords:
    def test_single_word_agrees_with_pack_bits(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(40, 63))
        words = pack_code_words(bits)
        assert words.shape == (40, 1)
        assert words.dtype == np.uint64
        assert np.array_equal(
            words[:, 0].astype(np.int64), np.asarray(pack_bits(bits))
        )

    def test_multi_word_layout(self):
        # Bit j lands in word j // 64 at position j % 64 — no 63-bit cap.
        bits = np.zeros((1, 130), dtype=np.uint8)
        bits[0, 0] = 1
        bits[0, 64] = 1
        bits[0, 129] = 1
        words = pack_code_words(bits)
        assert words.shape == (1, 3)
        assert words[0].tolist() == [1, 1, 1 << (129 - 128)]

    def test_rejects_non_binary_and_bad_shape(self):
        with pytest.raises(ValueError):
            pack_code_words(np.array([[0, 2]]))
        with pytest.raises(ValueError):
            pack_code_words(np.array([0, 1]))


class TestPackedHammingDistances:
    def test_matches_bitwise_reference(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=(60, 150))
        words = pack_code_words(bits)
        queries = pack_code_words(bits[:5])
        got = packed_hamming_distances(queries, words)
        want = (bits[:5, np.newaxis, :] != bits[np.newaxis, :, :]).sum(axis=2)
        assert got.shape == (5, 60)
        assert np.array_equal(got, want)

    def test_single_query_returns_1d(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(30, 70))
        words = pack_code_words(bits)
        got = packed_hamming_distances(words[3], words)
        assert got.shape == (30,)
        assert got[3] == 0

    def test_rejects_word_count_mismatch(self):
        with pytest.raises(ValueError, match="word-count"):
            packed_hamming_distances(
                np.zeros(2, dtype=np.uint64), np.zeros((4, 1), dtype=np.uint64)
            )


class TestPackedQuantizationDistance:
    def test_matches_naive_definition(self):
        # dist(q, b) = sum_i (c_i(q) xor b_i) * cost_i, bit by bit.
        rng = np.random.default_rng(6)
        m = 20
        sig_bits = rng.integers(0, 2, size=(100, m))
        sigs = np.asarray(pack_bits(sig_bits))
        query_bits = rng.integers(0, 2, size=m)
        query_sig = int(pack_bits(query_bits))
        costs = rng.random(m)
        tables = qd_cost_tables(query_sig, costs)
        got = packed_qd_distances(sigs, tables)
        want = np.zeros(len(sigs))
        for i in range(m):
            want += (sig_bits[:, i] != query_bits[i]) * costs[i]
        assert np.allclose(got, want, rtol=1e-12, atol=1e-14)

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(7)
        m = 33
        sigs = np.asarray(
            pack_bits(rng.integers(0, 2, size=(64, m))), dtype=np.int64
        )
        query_sig = int(pack_bits(rng.integers(0, 2, size=m)))
        costs = rng.random(m)
        first = packed_qd_distances(sigs, qd_cost_tables(query_sig, costs))
        second = packed_qd_distances(sigs, qd_cost_tables(query_sig, costs))
        assert np.array_equal(first, second)

    def test_zero_for_query_bucket(self):
        rng = np.random.default_rng(8)
        m = 16
        query_sig = int(pack_bits(rng.integers(0, 2, size=m)))
        tables = qd_cost_tables(query_sig, rng.random(m))
        assert packed_qd_distances(
            np.array([query_sig], dtype=np.int64), tables
        )[0] == 0.0

    def test_tables_shape_covers_partial_chunk(self):
        tables = qd_cost_tables(0, np.ones(20))
        assert tables.shape == (3, 256)
        # Bits beyond the code length contribute nothing.
        assert tables[2].max() <= 4.0
