"""Tests for the reprolint static-analysis toolchain.

Each rule gets fixture sources proving it fires where it should and
stays quiet where it should not; the suite ends with a self-check that
the shipped source tree is clean under every rule.
"""

import json
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[1]
_TOOLS = str(_REPO_ROOT / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from reprolint.cli import main  # noqa: E402
from reprolint.core import (  # noqa: E402
    PARSE_ERROR,
    all_rules,
    check_source,
    get_rule,
    suppressed_lines,
)

SEARCH_PATH = "src/repro/search/searcher.py"
HOT_PATH = "src/repro/index/dynamic.py"


def rule_ids(violations):
    return [v.rule_id for v in violations]


class TestRegistry:
    def test_all_fifteen_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        expected = {f"RL00{n}" for n in range(1, 10)} | {
            "RL010",
            "RL011",
            "RL012",
            "RL013",
            "RL014",
            "RL015",
        }
        assert expected <= set(ids)

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.name, rule.rule_id
            assert rule.description, rule.rule_id

    def test_get_rule(self):
        assert get_rule("RL001").rule_id == "RL001"


class TestEngineBypassRL001:
    def test_call_in_search_path_fires(self):
        src = "d = pairwise_distances(q, x, 'euclidean')\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL001")])
        assert rule_ids(found) == ["RL001"]

    def test_import_in_search_path_fires(self):
        src = "from repro.index.distance import pairwise_distances\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL001")])
        assert rule_ids(found) == ["RL001"]

    def test_engine_module_is_exempt(self):
        src = "d = pairwise_distances(q, x, 'euclidean')\n"
        found = check_source(
            src, "src/repro/search/engine.py", [get_rule("RL001")]
        )
        assert found == []

    def test_outside_search_path_is_exempt(self):
        src = "d = pairwise_distances(q, x, 'euclidean')\n"
        found = check_source(
            src, "src/repro/eval/harness.py", [get_rule("RL001")]
        )
        assert found == []


class TestImplicitDtypeRL002:
    def test_asarray_without_dtype_fires(self):
        src = "import numpy as np\na = np.asarray(x)\n"
        found = check_source(src, HOT_PATH, [get_rule("RL002")])
        assert rule_ids(found) == ["RL002"]

    def test_explicit_dtype_is_clean(self):
        src = "import numpy as np\na = np.asarray(x, dtype=np.int64)\n"
        found = check_source(src, HOT_PATH, [get_rule("RL002")])
        assert found == []

    def test_positional_dtype_is_clean(self):
        src = "import numpy as np\na = np.zeros(4, np.int64)\n"
        found = check_source(src, HOT_PATH, [get_rule("RL002")])
        assert found == []

    def test_cold_path_is_exempt(self):
        src = "import numpy as np\na = np.empty(3)\n"
        found = check_source(
            src, "src/repro/eval/metrics.py", [get_rule("RL002")]
        )
        assert found == []


class TestBucketEncapsulationRL003:
    def test_foreign_access_fires(self):
        src = "n = len(table._buckets)\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL003")])
        assert rule_ids(found) == ["RL003"]

    def test_self_access_is_clean(self):
        src = (
            "class DynamicHashTable:\n"
            "    def prune(self):\n"
            "        self._buckets.clear()\n"
        )
        found = check_source(src, HOT_PATH, [get_rule("RL003")])
        assert found == []

    def test_owning_module_is_exempt(self):
        src = "n = len(table._buckets)\n"
        found = check_source(
            src, "src/repro/index/hash_table.py", [get_rule("RL003")]
        )
        assert found == []


class TestWallClockTimingRL004:
    def test_time_time_fires(self):
        src = "import time\nstart = time.time()\n"
        found = check_source(src, "benchmarks/bench_x.py", [get_rule("RL004")])
        assert rule_ids(found) == ["RL004"]

    def test_from_time_import_time_fires(self):
        src = "from time import time\n"
        found = check_source(src, "src/repro/eval/latency.py", [get_rule("RL004")])
        assert rule_ids(found) == ["RL004"]

    def test_perf_counter_is_clean(self):
        src = "import time\nstart = time.perf_counter()\n"
        found = check_source(src, "src/repro/eval/latency.py", [get_rule("RL004")])
        assert found == []


class TestBroadExceptRL005:
    def test_bare_except_fires(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL005")])
        assert rule_ids(found) == ["RL005"]

    def test_broad_except_without_reraise_fires(self):
        src = "try:\n    work()\nexcept Exception:\n    log()\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL005")])
        assert rule_ids(found) == ["RL005"]

    def test_broad_except_with_reraise_is_clean(self):
        src = "try:\n    work()\nexcept Exception:\n    log()\n    raise\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL005")])
        assert found == []

    def test_specific_except_is_clean(self):
        src = "try:\n    work()\nexcept ValueError:\n    pass\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL005")])
        assert found == []


class TestAnnotationCompletenessRL006:
    def test_unannotated_public_function_fires(self):
        src = "def search(query, k=10):\n    return None\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL006")])
        assert rule_ids(found) == ["RL006"]
        assert "query" in found[0].message
        assert "return type" in found[0].message

    def test_unannotated_public_method_fires(self):
        src = (
            "class Index:\n"
            "    def search(self, query):\n"
            "        return None\n"
        )
        found = check_source(src, SEARCH_PATH, [get_rule("RL006")])
        assert rule_ids(found) == ["RL006"]

    def test_annotated_function_is_clean(self):
        src = "def search(query: str, k: int = 10) -> None:\n    return None\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL006")])
        assert found == []

    def test_private_function_is_exempt(self):
        src = "def _helper(query):\n    return None\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL006")])
        assert found == []

    def test_outside_src_repro_is_exempt(self):
        src = "def search(query):\n    return None\n"
        found = check_source(src, "tests/test_x.py", [get_rule("RL006")])
        assert found == []


class TestMutableDefaultRL007:
    def test_list_default_fires(self):
        src = "def run(batch=[]):\n    return batch\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL007")])
        assert rule_ids(found) == ["RL007"]

    def test_dict_call_default_fires(self):
        src = "def run(*, options=dict()):\n    return options\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL007")])
        assert rule_ids(found) == ["RL007"]

    def test_lambda_default_fires(self):
        src = "f = lambda acc=[]: acc\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL007")])
        assert rule_ids(found) == ["RL007"]

    def test_none_default_is_clean(self):
        src = "def run(batch=None):\n    return batch or []\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL007")])
        assert found == []

    def test_immutable_defaults_are_clean(self):
        src = "def run(k=10, name='x', dims=(1, 2)):\n    return k\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL007")])
        assert found == []


class TestDunderAllConsistencyRL008:
    def test_phantom_entry_fires(self):
        src = '__all__ = ["missing"]\n'
        found = check_source(src, SEARCH_PATH, [get_rule("RL008")])
        assert rule_ids(found) == ["RL008"]

    def test_duplicate_entry_fires(self):
        src = '__all__ = ["f", "f"]\n\n\ndef f():\n    pass\n'
        found = check_source(src, SEARCH_PATH, [get_rule("RL008")])
        assert rule_ids(found) == ["RL008"]
        assert "duplicate" in found[0].message

    def test_unlisted_public_def_fires(self):
        src = '__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\ndef g():\n    pass\n'
        found = check_source(src, SEARCH_PATH, [get_rule("RL008")])
        assert rule_ids(found) == ["RL008"]
        assert "'g'" in found[0].message

    def test_consistent_module_is_clean(self):
        src = (
            'import os\n\n__all__ = ["f", "os"]\n\n\ndef f():\n    pass\n'
        )
        found = check_source(src, SEARCH_PATH, [get_rule("RL008")])
        assert found == []

    def test_module_without_all_is_skipped(self):
        src = "def f():\n    pass\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL008")])
        assert found == []


class TestSpanTimingRL009:
    def test_time_perf_counter_in_search_fires(self):
        src = "import time\nstart = time.perf_counter()\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL009")])
        assert rule_ids(found) == ["RL009"]

    def test_bare_perf_counter_call_fires(self):
        src = "start = perf_counter()\n"
        found = check_source(src, HOT_PATH, [get_rule("RL009")])
        assert rule_ids(found) == ["RL009"]

    def test_from_time_import_fires(self):
        src = "from time import perf_counter\n"
        found = check_source(
            src, "src/repro/distributed/worker.py", [get_rule("RL009")]
        )
        assert rule_ids(found) == ["RL009"]

    def test_obs_package_is_exempt(self):
        src = "from time import perf_counter\nstart = perf_counter()\n"
        found = check_source(
            src, "src/repro/obs/spans.py", [get_rule("RL009")]
        )
        assert found == []

    def test_eval_harness_is_exempt(self):
        src = "import time\nstart = time.perf_counter()\n"
        found = check_source(
            src, "src/repro/eval/latency.py", [get_rule("RL009")]
        )
        assert found == []

    def test_obs_span_usage_is_clean(self):
        src = (
            "from repro import obs\n"
            "with obs.span('retrieve') as retrieve:\n"
            "    work()\n"
            "deadline = obs.now() + 0.5\n"
        )
        found = check_source(src, SEARCH_PATH, [get_rule("RL009")])
        assert found == []

    def test_suppression_silences_rl009(self):
        src = (
            "import time\n"
            "start = time.perf_counter()  # reprolint: disable=RL009\n"
        )
        found = check_source(src, SEARCH_PATH, [get_rule("RL009")])
        assert found == []


class TestFaultTaxonomyRL010:
    DIST_PATH = "src/repro/distributed/cluster.py"

    def test_swallowing_broad_except_fires(self):
        src = "try:\n    rpc()\nexcept Exception:\n    pass\n"
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert rule_ids(found) == ["RL010"]

    def test_swallowing_bare_except_fires(self):
        src = "try:\n    rpc()\nexcept:\n    result = None\n"
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert rule_ids(found) == ["RL010"]

    def test_reraise_is_clean(self):
        src = "try:\n    rpc()\nexcept Exception:\n    log()\n    raise\n"
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert found == []

    def test_routing_through_taxonomy_is_clean(self):
        src = (
            "try:\n"
            "    rpc()\n"
            "except Exception as err:\n"
            "    raise ShardTransientError(0, str(err)) from err\n"
        )
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert found == []

    def test_qualified_taxonomy_raise_is_clean(self):
        src = (
            "try:\n"
            "    rpc()\n"
            "except Exception as err:\n"
            "    raise faults.ShardError(0, str(err)) from err\n"
        )
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert found == []

    def test_raising_something_else_fires(self):
        src = (
            "try:\n"
            "    rpc()\n"
            "except Exception:\n"
            "    raise ValueError('oops')\n"
        )
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert rule_ids(found) == ["RL010"]

    def test_specific_except_is_exempt(self):
        src = "try:\n    rpc()\nexcept KeyError:\n    pass\n"
        found = check_source(src, self.DIST_PATH, [get_rule("RL010")])
        assert found == []

    def test_outside_distributed_is_exempt(self):
        src = "try:\n    rpc()\nexcept Exception:\n    pass\n"
        found = check_source(src, SEARCH_PATH, [get_rule("RL010")])
        assert found == []


class TestStagePipelineEncapsulationRL011:
    OUTSIDE = "src/repro/distributed/cluster.py"

    def test_stage_class_import_fires(self):
        src = "from repro.search.stages import RerankStage\n"
        found = check_source(src, self.OUTSIDE, [get_rule("RL011")])
        assert rule_ids(found) == ["RL011"]

    def test_assembly_helper_import_fires(self):
        src = "from repro.search.stages import build_pipeline\n"
        found = check_source(src, self.OUTSIDE, [get_rule("RL011")])
        assert rule_ids(found) == ["RL011"]

    def test_wholesale_module_import_fires(self):
        src = "import repro.search.stages\n"
        found = check_source(src, self.OUTSIDE, [get_rule("RL011")])
        assert rule_ids(found) == ["RL011"]

    def test_stage_construction_fires(self):
        src = "stage = TruncateStage(10)\n"
        found = check_source(src, self.OUTSIDE, [get_rule("RL011")])
        assert rule_ids(found) == ["RL011"]

    def test_drain_stream_call_fires(self):
        src = "ids = drain_stream(stream, plan, ctx)\n"
        found = check_source(src, self.OUTSIDE, [get_rule("RL011")])
        assert rule_ids(found) == ["RL011"]

    def test_spec_vocabulary_is_allowed(self):
        src = (
            "from repro.search import (\n"
            "    FusionSpec, IndexFusionPartner, RerankSpec, linear_fusion\n"
            ")\n"
            "spec = RerankSpec(mode='exact', pool=50)\n"
            "fuse = FusionSpec(weight=0.3)\n"
        )
        found = check_source(src, self.OUTSIDE, [get_rule("RL011")])
        assert found == []

    def test_inside_search_is_exempt(self):
        src = (
            "from repro.search.stages import build_pipeline\n"
            "stage = TruncateStage(10)\n"
        )
        found = check_source(src, SEARCH_PATH, [get_rule("RL011")])
        assert found == []


SERVING_PATH = "src/repro/serving/frontdoor.py"


class TestAsyncBlockingRL015:
    def test_time_sleep_in_coroutine_fires(self):
        src = (
            "import time\n"
            "async def drain():\n"
            "    time.sleep(0.1)\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert rule_ids(found) == ["RL015"]

    def test_bare_sleep_in_coroutine_fires(self):
        src = (
            "from time import sleep\n"
            "async def drain():\n"
            "    sleep(0.1)\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert rule_ids(found) == ["RL015"]

    def test_direct_engine_execute_fires(self):
        src = (
            "async def run(engine, query, plan, stream):\n"
            "    return engine.execute(query, plan, stream)\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert rule_ids(found) == ["RL015"]

    def test_direct_search_batch_fires(self):
        src = (
            "async def run(index, queries):\n"
            "    return index.search_batch(queries, 10, 400)\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert rule_ids(found) == ["RL015"]

    def test_asyncio_sleep_is_clean(self):
        src = (
            "import asyncio\n"
            "async def drain():\n"
            "    await asyncio.sleep(0.1)\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert found == []

    def test_run_in_executor_is_clean(self):
        src = (
            "async def run(loop, pool, index, batch):\n"
            "    return await loop.run_in_executor(\n"
            "        pool, execute_batch, index, batch\n"
            "    )\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert found == []

    def test_sync_function_is_exempt(self):
        src = (
            "import time\n"
            "def execute(index, batch):\n"
            "    time.sleep(0.1)\n"
            "    return index.search_batch(batch, 10, 400)\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert found == []

    def test_nested_sync_def_body_is_skipped(self):
        src = (
            "async def run(index, batch):\n"
            "    def blocking():\n"
            "        return index.search_batch(batch, 10, 400)\n"
            "    return blocking\n"
        )
        found = check_source(src, SERVING_PATH, [get_rule("RL015")])
        assert found == []

    def test_outside_serving_is_exempt(self):
        src = (
            "import time\n"
            "async def drain():\n"
            "    time.sleep(0.1)\n"
        )
        found = check_source(src, SEARCH_PATH, [get_rule("RL015")])
        assert found == []


class TestSuppression:
    def test_trailing_directive_silences_own_line(self):
        src = "import numpy as np\na = np.asarray(x)  # reprolint: disable=RL002\n"
        found = check_source(src, HOT_PATH, [get_rule("RL002")])
        assert found == []

    def test_standalone_directive_silences_next_line(self):
        src = (
            "import numpy as np\n"
            "# Deliberately polymorphic.\n"
            "# reprolint: disable=RL002 -- input dtype is range-checked\n"
            "a = np.asarray(x)\n"
        )
        found = check_source(src, HOT_PATH, [get_rule("RL002")])
        assert found == []

    def test_directive_only_silences_named_rule(self):
        src = (
            "import time\n"
            "start = time.time()  # reprolint: disable=RL002\n"
        )
        found = check_source(src, HOT_PATH, [get_rule("RL004")])
        assert rule_ids(found) == ["RL004"]

    def test_multiple_rule_ids_parse(self):
        silenced = suppressed_lines(
            "x = 1  # reprolint: disable=RL002, RL004\n"
        )
        assert silenced == {1: {"RL002", "RL004"}}

    def test_suppression_does_not_leak_to_later_lines(self):
        src = (
            "import numpy as np\n"
            "a = np.asarray(x)  # reprolint: disable=RL002\n"
            "b = np.asarray(y)\n"
        )
        found = check_source(src, HOT_PATH, [get_rule("RL002")])
        assert [v.line for v in found] == [3]


class TestParseErrors:
    def test_syntax_error_reports_rl000(self):
        found = check_source("def broken(:\n", SEARCH_PATH)
        assert rule_ids(found) == [PARSE_ERROR]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path)]) == 1
        assert "RL004" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert main(["--format", "json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["violation_count"] == 1
        assert report["counts_by_rule"] == {"RL004": 1}

    def test_select_limits_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert main(["--select", "RL005", str(tmp_path)]) == 0

    def test_unknown_rule_id_exits_two(self, tmp_path):
        assert main(["--select", "RL999", str(tmp_path)]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 10):
            assert f"RL00{n}" in out
        assert "RL010" in out


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "tools"])
def test_shipped_tree_is_clean(tree, monkeypatch):
    """Self-check: the repository passes its own linter."""
    monkeypatch.chdir(_REPO_ROOT)
    assert main([tree]) == 0
