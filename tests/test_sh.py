"""Tests for spectral hashing."""

import numpy as np
import pytest

from repro.hashing.sh import SpectralHashing


class TestSpectralHashing:
    def test_projection_in_unit_band(self, small_data):
        """Eigenfunction values are sines, bounded to [-1, 1]."""
        hasher = SpectralHashing(code_length=8).fit(small_data)
        projections = hasher.project(small_data)
        assert projections.min() >= -1.0 - 1e-12
        assert projections.max() <= 1.0 + 1e-12

    def test_encode_shape_and_dtype(self, small_data):
        hasher = SpectralHashing(code_length=10).fit(small_data)
        codes = hasher.encode(small_data[:30])
        assert codes.shape == (30, 10)
        assert codes.dtype == np.uint8

    def test_nonlinear_no_spectral_bound(self, small_data):
        hasher = SpectralHashing(code_length=6).fit(small_data)
        assert hasher.spectral_bound() is None

    def test_first_modes_split_dominant_direction(self, small_data):
        """The lowest-frequency eigenfunctions live on the widest PCA axes."""
        hasher = SpectralHashing(code_length=4).fit(small_data)
        # The first selected mode is mode 1 of the widest direction: its
        # single sign change splits the data into two non-trivial sides
        # (mode-1 sinusoids are positive on exactly half the range, but
        # skewed data shifts the balance, so only require both sides hit).
        first_bit = hasher.encode(small_data)[:, 0]
        assert 0.05 < first_bit.mean() < 0.95

    def test_probe_info_costs_match_projection(self, small_data):
        hasher = SpectralHashing(code_length=8).fit(small_data)
        query = small_data[12]
        _, costs = hasher.probe_info(query)
        assert np.allclose(costs, np.abs(hasher.project(query[None, :])[0]))

    def test_n_pca_validation(self, small_data):
        with pytest.raises(ValueError):
            SpectralHashing(code_length=4, n_pca=1000).fit(small_data)

    def test_requires_fit(self, small_data):
        with pytest.raises(RuntimeError):
            SpectralHashing(code_length=4).project(small_data)

    def test_rejects_1d_training_data(self):
        with pytest.raises(ValueError):
            SpectralHashing(code_length=4).fit(np.zeros(10))

    def test_similarity_preserving(self, small_data):
        hasher = SpectralHashing(code_length=8).fit(small_data)
        codes = hasher.encode(small_data)
        dists = np.linalg.norm(small_data - small_data[5], axis=1)
        order = np.argsort(dists)
        near = np.mean([(codes[5] == codes[i]).mean() for i in order[1:15]])
        far = np.mean([(codes[5] == codes[i]).mean() for i in order[-15:]])
        assert near > far
