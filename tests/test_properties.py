"""Property-based tests (hypothesis) for the core invariants.

These cover the paper's formal claims on arbitrary inputs:
Properties 1-2 of the generation tree, Definition 1 identities,
pack/unpack bijection, and prober coverage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generation_tree import FlippingVectorGenerator, mask_cost
from repro.core.gqr import GQR
from repro.core.quantization_distance import (
    quantization_distance,
    quantization_distances,
)
from repro.index.codes import hamming_distance, pack_bits, unpack_bits
from repro.index.hash_table import HashTable


bit_arrays = st.integers(2, 12).flatmap(
    lambda m: st.lists(
        st.lists(st.integers(0, 1), min_size=m, max_size=m),
        min_size=1,
        max_size=30,
    )
)

cost_vectors = st.integers(2, 10).flatmap(
    lambda m: st.lists(
        st.floats(0.0, 10.0, allow_nan=False), min_size=m, max_size=m
    )
)


class TestPackUnpackProperties:
    @given(bit_arrays)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, rows):
        bits = np.asarray(rows, dtype=np.uint8)
        sigs = pack_bits(bits)
        assert np.array_equal(unpack_bits(sigs, bits.shape[1]), bits)

    @given(st.integers(0, (1 << 20) - 1), st.integers(0, (1 << 20) - 1))
    @settings(max_examples=100, deadline=None)
    def test_hamming_equals_xor_popcount(self, a, b):
        assert hamming_distance(a, b) == bin(a ^ b).count("1")


class TestQuantizationDistanceProperties:
    @given(cost_vectors, st.data())
    @settings(max_examples=60, deadline=None)
    def test_identity_and_nonnegativity(self, costs, data):
        costs = np.asarray(costs)
        m = len(costs)
        sig = data.draw(st.integers(0, (1 << m) - 1))
        other = data.draw(st.integers(0, (1 << m) - 1))
        assert quantization_distance(sig, sig, costs) == 0.0
        assert quantization_distance(sig, other, costs) >= 0.0

    @given(cost_vectors, st.data())
    @settings(max_examples=60, deadline=None)
    def test_hamming_sandwich(self, costs, data):
        """HD·min ≤ QD ≤ HD·max for any cost vector."""
        costs = np.asarray(costs)
        m = len(costs)
        a = data.draw(st.integers(0, (1 << m) - 1))
        b = data.draw(st.integers(0, (1 << m) - 1))
        qd = quantization_distance(a, b, costs)
        hd = hamming_distance(a, b)
        assert qd >= hd * costs.min() - 1e-9
        assert qd <= hd * costs.max() + 1e-9

    @given(cost_vectors, st.data())
    @settings(max_examples=40, deadline=None)
    def test_additive_decomposition(self, costs, data):
        """QD(a, b) = Σ over differing bits of cost — so flipping one more
        bit adds exactly that bit's cost."""
        costs = np.asarray(costs)
        m = len(costs)
        a = data.draw(st.integers(0, (1 << m) - 1))
        b = data.draw(st.integers(0, (1 << m) - 1))
        bit = data.draw(st.integers(0, m - 1))
        if (a ^ b) & (1 << bit):
            return  # bit already differs
        flipped = b ^ (1 << bit)
        # Approximate: summation order differs between the two sides.
        assert quantization_distance(a, flipped, costs) == pytest.approx(
            quantization_distance(a, b, costs) + costs[bit], abs=1e-9
        )


class TestGenerationTreeProperties:
    @given(cost_vectors)
    @settings(max_examples=40, deadline=None)
    def test_property1_exactly_once(self, costs):
        sorted_costs = np.sort(np.asarray(costs))
        m = len(sorted_costs)
        masks = [mask for mask, _ in FlippingVectorGenerator(sorted_costs)]
        assert sorted(masks) == list(range(1 << m))

    @given(cost_vectors)
    @settings(max_examples=40, deadline=None)
    def test_property2_non_decreasing(self, costs):
        sorted_costs = np.sort(np.asarray(costs))
        emitted = [cost for _, cost in FlippingVectorGenerator(sorted_costs)]
        assert all(b >= a - 1e-9 for a, b in zip(emitted, emitted[1:]))

    @given(cost_vectors)
    @settings(max_examples=40, deadline=None)
    def test_costs_match_definition(self, costs):
        sorted_costs = np.sort(np.asarray(costs))
        for mask, cost in FlippingVectorGenerator(sorted_costs):
            assert abs(cost - mask_cost(mask, sorted_costs)) < 1e-6


class TestGQRProperties:
    @given(
        st.integers(2, 8).flatmap(
            lambda m: st.tuples(
                st.just(m),
                st.integers(0, (1 << m) - 1),
                st.lists(
                    st.floats(0.0, 5.0, allow_nan=False),
                    min_size=m,
                    max_size=m,
                ),
                st.lists(st.integers(0, (1 << m) - 1), min_size=1, max_size=40),
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_gqr_stream_covers_space_in_qd_order(self, params):
        m, query_sig, costs, item_sigs = params
        costs = np.asarray(costs)
        table = HashTable(np.asarray(item_sigs, dtype=np.int64), code_length=m)
        pairs = list(GQR().probe_scored(table, query_sig, costs))
        buckets = [b for b, _ in pairs]
        assert sorted(buckets) == list(range(1 << m))
        qds = quantization_distances(query_sig, np.asarray(buckets), costs)
        assert np.allclose(qds, [qd for _, qd in pairs], atol=1e-9)
        assert all(
            b >= a - 1e-9
            for a, b in zip([q for _, q in pairs], [q for _, q in pairs][1:])
        )
