"""Tests for the deterministic trace sampler."""

import pytest

from repro.obs import SampledTrace, TraceSampler


class TestDeterminism:
    def test_same_seed_samples_same_queries(self):
        a = TraceSampler(every_n=8, seed=42)
        b = TraceSampler(every_n=8, seed=42)
        picks_a = [a.should_sample() for _ in range(100)]
        picks_b = [b.should_sample() for _ in range(100)]
        assert picks_a == picks_b

    def test_exactly_one_in_every_n(self):
        sampler = TraceSampler(every_n=10, seed=7)
        picks = [sampler.should_sample() for _ in range(200)]
        assert sum(picks) == 20
        selected = [i for i, p in enumerate(picks) if p]
        assert all(i % 10 == selected[0] % 10 for i in selected)

    def test_different_seeds_can_shift_the_phase(self):
        def first_pick(seed):
            sampler = TraceSampler(every_n=16, seed=seed)
            picks = [sampler.should_sample() for _ in range(16)]
            return picks.index(True)

        assert len({first_pick(seed) for seed in range(8)}) > 1

    def test_every_one_samples_everything(self):
        sampler = TraceSampler(every_n=1, seed=0)
        assert all(sampler.should_sample() for _ in range(10))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="every_n"):
            TraceSampler(every_n=0)
        with pytest.raises(ValueError, match="capacity"):
            TraceSampler(capacity=0)


class TestRingBuffer:
    def test_capacity_keeps_most_recent(self):
        sampler = TraceSampler(every_n=1, capacity=3, seed=0)
        for _ in range(10):
            sampler.should_sample()
            sampler.record(spans=None, stats={"seq_check": sampler.seen})
        traces = sampler.traces()
        assert len(traces) == 3
        assert [t.seq for t in traces] == [7, 8, 9]
        assert sampler.last().seq == 9

    def test_empty_sampler(self):
        sampler = TraceSampler()
        assert sampler.traces() == []
        assert sampler.last() is None
        assert sampler.seen == 0

    def test_clear_restarts(self):
        sampler = TraceSampler(every_n=1, seed=0)
        sampler.should_sample()
        sampler.record(spans=None, stats=None)
        sampler.clear()
        assert sampler.traces() == []
        assert sampler.seen == 0


class TestSampledTrace:
    def test_to_dict_schema(self):
        trace = SampledTrace(
            seq=4,
            spans={"name": "query", "duration_seconds": 0.1, "children": []},
            stats={"n_candidates": 10},
            bucket_sizes=[3, 7],
            probe_trace={"schema": "repro.probe_trace/v1", "steps": []},
        )
        payload = trace.to_dict()
        assert payload["schema"] == "repro.sampled_trace/v1"
        assert payload["seq"] == 4
        assert payload["spans"]["name"] == "query"
        assert payload["bucket_sizes"] == [3, 7]
        assert payload["probe_trace"]["schema"] == "repro.probe_trace/v1"
