"""Tests for synthetic data generators, the dataset registry, and truth."""

import numpy as np
import pytest

from repro.data.datasets import (
    APPENDIX_DATASETS,
    DATASETS,
    MAIN_DATASETS,
    default_code_length,
    load_dataset,
)
from repro.data.ground_truth import GroundTruthCache, ground_truth_knn
from repro.data.synthetic import (
    correlated_gaussian,
    gaussian_mixture,
    sample_queries,
    uniform_hypercube,
)
from repro.index.linear_scan import knn_linear_scan


class TestGaussianMixture:
    def test_shape_and_determinism(self):
        a = gaussian_mixture(100, 8, seed=0)
        b = gaussian_mixture(100, 8, seed=0)
        assert a.shape == (100, 8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            gaussian_mixture(50, 4, seed=0), gaussian_mixture(50, 4, seed=1)
        )

    def test_clustered_structure(self):
        """Within-cluster spread far smaller than between-cluster."""
        data = gaussian_mixture(
            500, 6, n_clusters=4, cluster_spread=0.05, seed=0
        )
        from repro.quantization.kmeans import KMeans

        km = KMeans(4, seed=0).fit(data)
        assert km.inertia / len(data) < 0.5

    def test_anisotropic_variance(self):
        data = gaussian_mixture(
            3000, 10, n_clusters=1, anisotropy=10.0, seed=0
        )
        variances = data.var(axis=0)
        assert variances[0] > variances[-1]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            gaussian_mixture(0, 4)
        with pytest.raises(ValueError):
            gaussian_mixture(10, 0)


class TestOtherGenerators:
    def test_correlated_gaussian_correlation(self):
        data = correlated_gaussian(5000, 6, correlation=0.9, seed=0)
        r = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert r > 0.7

    def test_correlated_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            correlated_gaussian(10, 4, correlation=1.0)

    def test_uniform_bounds(self):
        data = uniform_hypercube(200, 5, seed=0)
        assert data.min() >= -1 and data.max() <= 1

    def test_sample_queries_near_data(self):
        data = gaussian_mixture(300, 8, seed=0)
        queries = sample_queries(data, 10, perturbation=0.01, seed=1)
        _, dists = knn_linear_scan(queries, data, 1)
        assert dists.max() < data.std() * 2

    def test_sample_queries_count_validation(self):
        with pytest.raises(ValueError):
            sample_queries(np.zeros((5, 2)), 0)


class TestDefaultCodeLength:
    def test_paper_values(self):
        """Table 1 / Section 6.1: m = 12, 16, 18, 20 for the 4 datasets."""
        assert default_code_length(60_000) == 13 or default_code_length(60_000) == 12
        assert default_code_length(1_000_000) == 17 or default_code_length(1_000_000) == 16
        # The exact paper values use "an integer around log2(N/10)";
        # verify we are within 1 bit.
        for n, m in [(60_000, 12), (1_000_000, 16), (5_000_000, 18), (10_000_000, 20)]:
            assert abs(default_code_length(n) - m) <= 1

    def test_tiny_dataset(self):
        assert default_code_length(5) == 1

    def test_monotone_in_n(self):
        values = [default_code_length(n) for n in (100, 1000, 10_000, 100_000)]
        assert values == sorted(values)


class TestRegistry:
    def test_twelve_paper_datasets_plus_sift1m(self):
        assert len(MAIN_DATASETS) == 4
        assert len(APPENDIX_DATASETS) == 9
        assert set(MAIN_DATASETS) == {"CIFAR60K", "GIST1M", "TINY5M", "SIFT10M"}

    def test_size_ordering_preserved(self):
        """Scaled sizes keep the paper's ordering."""
        sizes = [MAIN_DATASETS[n].scaled_items for n in
                 ("CIFAR60K", "GIST1M", "TINY5M", "SIFT10M")]
        assert sizes == sorted(sizes)

    def test_load_dataset_shapes(self):
        ds = load_dataset("CIFAR60K", scale=0.05)
        assert ds.data.shape[1] == DATASETS["CIFAR60K"].scaled_dims
        assert len(ds.queries) >= 8

    def test_load_dataset_cache(self):
        a = load_dataset("CIFAR60K", scale=0.05)
        b = load_dataset("CIFAR60K", scale=0.05)
        assert a is b

    def test_load_dataset_case_insensitive(self):
        assert load_dataset("cifar60k", scale=0.05).name == "CIFAR60K"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("NOPE")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            load_dataset("CIFAR60K", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("CIFAR60K", scale=1.5)

    def test_code_length_follows_rule(self):
        spec = DATASETS["GIST1M"]
        assert spec.code_length == default_code_length(spec.scaled_items)
        assert spec.paper_code_length == default_code_length(spec.paper_items)


class TestGroundTruth:
    def test_matches_linear_scan(self):
        data = gaussian_mixture(200, 6, seed=0)
        queries = data[:5]
        ids = ground_truth_knn(queries, data, 4)
        expected, _ = knn_linear_scan(queries, data, 4)
        assert np.array_equal(ids, expected)

    def test_cache_slices(self):
        data = gaussian_mixture(200, 6, seed=0)
        cache = GroundTruthCache(data[:5], data)
        ten = cache.knn(10)
        three = cache.knn(3)
        assert np.array_equal(three, ten[:, :3])

    def test_cache_grows_when_needed(self):
        data = gaussian_mixture(200, 6, seed=0)
        cache = GroundTruthCache(data[:5], data)
        cache.knn(2)
        assert cache.knn(8).shape == (5, 8)

    def test_cache_rejects_bad_k(self):
        data = gaussian_mixture(50, 4, seed=0)
        cache = GroundTruthCache(data[:2], data)
        with pytest.raises(ValueError):
            cache.knn(0)
