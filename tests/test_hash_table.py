"""Tests for the bucketed hash-table substrate."""

import numpy as np
import pytest

from repro.index.codes import pack_bits
from repro.index.hash_table import HashTable


def _bits(rows):
    return np.asarray(rows, dtype=np.uint8)


class TestConstruction:
    def test_from_bit_array(self):
        table = HashTable(_bits([[0, 0], [0, 1], [0, 0]]))
        assert table.code_length == 2
        assert table.num_items == 3
        assert table.num_buckets == 2

    def test_from_signatures_requires_code_length(self):
        with pytest.raises(ValueError):
            HashTable(np.array([0, 1, 2]))

    def test_from_signatures(self):
        table = HashTable(np.array([0, 1, 1, 3]), code_length=2)
        assert table.num_buckets == 3
        assert table.get(1).tolist() == [1, 2]

    def test_code_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HashTable(_bits([[0, 1]]), code_length=5)

    def test_explicit_ids(self):
        table = HashTable(_bits([[1], [1]]), ids=np.array([10, 20]))
        assert table.get(1).tolist() == [10, 20]

    def test_misaligned_ids_rejected(self):
        with pytest.raises(ValueError):
            HashTable(_bits([[1], [1]]), ids=np.array([10]))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            HashTable(np.zeros((2, 2, 2), dtype=np.uint8))


class TestLookup:
    def test_items_grouped_by_signature(self):
        bits = _bits([[1, 0], [0, 1], [1, 0], [1, 1]])
        table = HashTable(bits)
        assert table.get(pack_bits([1, 0])).tolist() == [0, 2]
        assert table.get(pack_bits([0, 1])).tolist() == [1]

    def test_missing_bucket_is_empty(self):
        table = HashTable(_bits([[0, 0]]))
        empty = table.get(3)
        assert len(empty) == 0
        assert empty.dtype == np.int64

    def test_contains(self):
        table = HashTable(_bits([[1, 1]]))
        assert 3 in table
        assert 0 not in table

    def test_all_items_recoverable(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(500, 6)).astype(np.uint8)
        table = HashTable(bits)
        recovered = np.concatenate([table.get(s) for s in table.signatures()])
        assert sorted(recovered.tolist()) == list(range(500))

    def test_bucket_sizes_sum_to_items(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(300, 5)).astype(np.uint8)
        table = HashTable(bits)
        assert sum(table.bucket_sizes().values()) == 300


class TestStatistics:
    def test_expected_population(self):
        table = HashTable(_bits([[0, 0], [0, 0], [1, 1], [1, 1]]))
        assert table.expected_population() == 2.0

    def test_repr_mentions_shape(self):
        table = HashTable(_bits([[0, 1]]))
        text = repr(table)
        assert "code_length=2" in text
        assert "items=1" in text
