"""Tests for iterative quantization."""

import numpy as np
import pytest

from repro.hashing.itq import ITQ
from repro.hashing.pcah import PCAHashing


class TestITQ:
    def test_loss_non_increasing(self, small_data):
        hasher = ITQ(code_length=8, n_iterations=20, seed=0).fit(small_data)
        losses = hasher.quantization_loss
        assert len(losses) == 20
        # Alternating minimisation: loss may plateau but must not grow.
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_improves_on_pcah_quantization_loss(self, small_data):
        """ITQ exists to cut binary quantization error below plain PCA."""
        m = 8
        itq = ITQ(code_length=m, n_iterations=30, seed=0).fit(small_data)
        pcah = PCAHashing(code_length=m).fit(small_data)

        def loss(hasher):
            v = hasher.project(small_data)
            b = np.where(v >= 0, 1.0, -1.0)
            return np.square(b - v).sum() / len(small_data)

        assert loss(itq) <= loss(pcah) + 1e-9

    def test_rotation_preserves_spectral_bound(self, small_data):
        """ITQ = PCA + rotation, so σ_max(H) stays 1 (orthonormal rows)."""
        hasher = ITQ(code_length=6, seed=0).fit(small_data)
        assert hasher.spectral_bound() == pytest.approx(1.0, abs=1e-8)

    def test_deterministic_under_seed(self, small_data):
        a = ITQ(code_length=6, n_iterations=5, seed=9).fit(small_data)
        b = ITQ(code_length=6, n_iterations=5, seed=9).fit(small_data)
        assert np.array_equal(a.encode(small_data), b.encode(small_data))

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            ITQ(code_length=4, n_iterations=0)

    def test_code_length_exceeding_dims_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ITQ(code_length=10).fit(rng.standard_normal((50, 4)))

    def test_codes_balanced_on_clustered_data(self, small_data):
        hasher = ITQ(code_length=8, seed=0).fit(small_data)
        means = hasher.encode(small_data).mean(axis=0)
        assert (means > 0.1).all() and (means < 0.9).all()
