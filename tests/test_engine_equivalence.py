"""Engine-vs-oracle equivalence for the unified query pipeline.

The refactor's contract: routing retrieval→evaluation through
:mod:`repro.search.engine` must not change a single result.  The oracle
here re-implements the original per-query loop — drain the candidate
stream to the budget, re-rank exactly, tie-break by id — independently
of the engine, and every prober/table configuration is checked against
it for both ``search`` and ``search_batch``.
"""

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.probing import HammingRanking
from repro.search.searcher import HashIndex

K = 10
BUDGET = 120

PROBERS = {
    "hr": HammingRanking,
    "qr": QDRanking,
    "gqr": GQR,
}


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(800, 16, n_clusters=10, seed=7)


@pytest.fixture(scope="module")
def queries(data):
    return sample_queries(data, 12, seed=8)


def build_index(data, prober_name, n_tables, strategy="round_robin"):
    hashers = [ITQ(code_length=8, seed=s) for s in range(n_tables)]
    return HashIndex(
        hashers if n_tables > 1 else hashers[0],
        data,
        prober=PROBERS[prober_name](),
        multi_table_strategy=strategy,
    )


def oracle_search(index, query, k, budget):
    """The seed per-query loop, written without the engine.

    Drains ``candidate_stream`` until the candidate budget is met, then
    exact-re-ranks with an independent distance formulation and breaks
    ties by id — the evaluation rule of the paper's Algorithm 1.
    """
    collected = []
    total = buckets = 0
    for ids in index.candidate_stream(query):
        buckets += 1
        collected.append(ids)
        total += len(ids)
        if total >= budget:
            break
    if not collected:
        return (np.empty(0, np.int64), np.empty(0, np.float64), 0, 0)
    candidates = np.concatenate(collected)
    dists = np.linalg.norm(index.data[candidates] - query, axis=1)
    order = np.lexsort((candidates, dists))[:k]
    return candidates[order], dists[order], total, buckets


CONFIGS = [
    ("hr", 1, "round_robin"),
    ("qr", 1, "round_robin"),
    ("gqr", 1, "round_robin"),
    ("hr", 2, "round_robin"),
    ("qr", 2, "round_robin"),
    ("gqr", 2, "round_robin"),
    ("gqr", 2, "qd_merge"),
]


@pytest.mark.parametrize(
    "prober_name,n_tables,strategy",
    CONFIGS,
    ids=[f"{p}-{t}table-{s}" for p, t, s in CONFIGS],
)
class TestEngineMatchesOracle:
    def test_search(self, data, queries, prober_name, n_tables, strategy):
        index = build_index(data, prober_name, n_tables, strategy)
        for query in queries:
            result = index.search(query, k=K, n_candidates=BUDGET)
            ids, dists, total, buckets = oracle_search(
                index, query, K, BUDGET
            )
            assert np.array_equal(result.ids, ids)
            assert np.allclose(result.distances, dists)
            assert result.n_candidates == total
            assert result.n_buckets_probed == buckets

    def test_search_batch(self, data, queries, prober_name, n_tables, strategy):
        index = build_index(data, prober_name, n_tables, strategy)
        results = index.search_batch(queries, k=K, n_candidates=BUDGET)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            ids, dists, total, buckets = oracle_search(
                index, query, K, BUDGET
            )
            assert np.array_equal(result.ids, ids)
            assert np.allclose(result.distances, dists)
            assert result.n_candidates == total
            assert result.n_buckets_probed == buckets

    def test_stats_attached(self, data, queries, prober_name, n_tables, strategy):
        index = build_index(data, prober_name, n_tables, strategy)
        for result in [index.search(queries[0], k=K, n_candidates=BUDGET)] + (
            index.search_batch(queries[:3], k=K, n_candidates=BUDGET)
        ):
            stats = result.stats
            assert stats is not None
            assert stats.total_seconds >= 0.0
            assert stats.n_candidates == result.n_candidates


class TestBatchEncodesOncePerTable:
    @pytest.mark.parametrize("n_tables", [1, 2, 3])
    def test_one_probe_info_batch_call_per_table(self, data, queries, n_tables):
        index = build_index(data, "gqr", n_tables)
        with mock.patch.object(
            type(index._hashers[0]),
            "probe_info_batch",
            autospec=True,
            side_effect=type(index._hashers[0]).probe_info_batch,
        ) as batched, mock.patch.object(
            type(index._hashers[0]),
            "probe_info",
            autospec=True,
            side_effect=type(index._hashers[0]).probe_info,
        ) as single:
            index.search_batch(queries, k=K, n_candidates=BUDGET)
        # One encode per table for the whole batch, and no stray
        # per-query projections on any path.
        assert batched.call_count == n_tables
        assert single.call_count == 0


class TestUniformValidation:
    def test_non_finite_query_rejected(self, data):
        index = build_index(data, "gqr", 1)
        bad = np.full(data.shape[1], np.nan)
        with pytest.raises(ValueError, match="non-finite"):
            index.search(bad, k=K, n_candidates=BUDGET)
        with pytest.raises(ValueError, match="non-finite"):
            index.search_batch(np.stack([data[0], bad]), k=K,
                               n_candidates=BUDGET)

    def test_empty_batch_returns_empty_list(self, data):
        index = build_index(data, "gqr", 1)
        assert index.search_batch(
            np.empty((0, data.shape[1])), k=K, n_candidates=BUDGET
        ) == []


class TestQDMergeOrdering:
    """Satellite: the merged multi-table stream is globally QD-sorted."""

    @given(
        seed=st.integers(0, 2**16),
        n_tables=st.integers(2, 3),
        query_index=st.integers(0, 39),
    )
    @settings(max_examples=20, deadline=None)
    def test_stream_qd_non_decreasing(self, seed, n_tables, query_index):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(40, 8))
        index = HashIndex(
            [ITQ(code_length=6, seed=seed + t) for t in range(n_tables)],
            data,
            prober=GQR(),
            multi_table_strategy="qd_merge",
        )
        query = data[query_index]
        qds, seen = [], set()
        for qd, ids in index.scored_stream(query):
            qds.append(qd)
            for item in ids.tolist():
                assert item not in seen  # cross-table dedup invariant
                seen.add(item)
        assert len(qds) > 0
        diffs = np.diff(np.asarray(qds))
        assert np.all(diffs >= -1e-12)
        # The merged stream eventually surfaces every indexed item.
        assert seen == set(range(len(data)))
