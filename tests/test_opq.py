"""Tests for optimized product quantization."""

import numpy as np
import pytest

from repro.quantization.opq import OptimizedProductQuantizer
from repro.quantization.pq import ProductQuantizer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    # Correlated data where a rotation genuinely helps PQ.
    base = rng.standard_normal((400, 8))
    mix = rng.standard_normal((8, 8))
    return base @ mix


@pytest.fixture(scope="module")
def opq(data):
    return OptimizedProductQuantizer(
        n_subspaces=2, n_centroids=8, n_iterations=5, seed=0
    ).fit(data)


class TestRotation:
    def test_rotation_is_orthogonal(self, opq):
        r = opq.rotation
        assert np.allclose(r @ r.T, np.eye(len(r)), atol=1e-8)

    def test_rotate_preserves_norms(self, opq, data):
        rotated = opq.rotate(data[:20])
        assert np.allclose(
            np.linalg.norm(rotated, axis=1), np.linalg.norm(data[:20], axis=1)
        )


class TestTraining:
    def test_error_improves_over_plain_pq(self, data):
        pq = ProductQuantizer(2, n_centroids=8, seed=0).fit(data)
        opq = OptimizedProductQuantizer(
            2, n_centroids=8, n_iterations=8, seed=0
        ).fit(data)
        assert opq.quantization_error(data) <= pq.quantization_error(data) * 1.05

    def test_errors_recorded(self, opq):
        assert len(opq.errors) == 5
        assert all(e >= 0 for e in opq.errors)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            OptimizedProductQuantizer(2).fit(np.zeros(10))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            OptimizedProductQuantizer(2).encode(np.zeros((1, 4)))


class TestEncodeDecode:
    def test_roundtrip_shapes(self, opq, data):
        codes = opq.encode(data[:15])
        assert codes.shape == (15, 2)
        assert opq.decode(codes).shape == (15, data.shape[1])

    def test_reconstruction_close_in_original_space(self, opq, data):
        reconstructed = opq.decode(opq.encode(data))
        error = np.square(data - reconstructed).sum(axis=1).mean()
        assert error == pytest.approx(opq.quantization_error(data))
