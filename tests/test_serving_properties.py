"""Property-based tests (hypothesis) for the serving front door.

Three load-independence properties of the admission/shedding design,
checked on randomly drawn offered loads in deterministic virtual time:

* rising offered load never *increases* the cost-weighted accepted
  fraction (each served request weighted by the budget fraction of the
  plan it actually ran) — the raw accepted *count* is legitimately
  non-monotone, because the degrade ladder trades fidelity for
  quantity: a deeper degrade level makes each query cheaper, so a
  heavier load can be served a *larger share* of cheaper answers.
  Weighting by coverage removes that economy and restores the
  monotone law the controller actually obeys;
* every completed request respects its deadline — the simulator's
  infeasible-drop makes this structural, not statistical;
* degraded responses are bit-identical to running the downgraded plan
  directly — degradation changes *which* plan runs, never how.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, sample_queries
from repro.data.workloads import TrafficTrace, zipfian_stream
from repro.hashing import ITQ
from repro.search import HashIndex
from repro.serving import ServingSimulator, default_config

DURATION = 0.5
#: Virtual serial capacity of 300 q/s: the drawn load multipliers cross
#: from comfortably under capacity to several times over it.
PER_QUERY_COST = 1.0 / 300.0
MULTIPLIERS = (1, 2, 4, 8)
#: Coalescing quantises admissions into batches, so the accepted
#: fraction can wobble by roughly one batch across nearby loads.
MONOTONE_TOLERANCE = 0.02

_DATA = gaussian_mixture(400, 16, n_clusters=5, seed=23)
_QUERIES = sample_queries(_DATA, 32, seed=4)
_INDEX = HashIndex(ITQ(code_length=8, seed=0), _DATA, prober=GQR())
_PLAN = _INDEX.plan(k=5, n_candidates=96)


def uniform_trace(rate: float, seed: int) -> TrafficTrace:
    """Evenly spaced arrivals at ``rate``, all on the interactive lane.

    Deterministic spacing (not Poisson) so a doubled rate is an exact
    refinement of the lighter trace — the cleanest setting in which the
    monotonicity property should hold.
    """
    n = int(rate * DURATION)
    arrivals = (np.arange(n, dtype=np.float64) + 0.5) / rate
    ids = zipfian_stream(len(_QUERIES), n, seed=seed)
    return TrafficTrace(arrivals, ids, ("interactive",) * n)


def run_at(rate: float, seed: int):
    simulator = ServingSimulator(
        _INDEX, default_config(), per_query_cost=PER_QUERY_COST,
        batch_overhead=0.0,
    )
    return simulator.run_open(uniform_trace(rate, seed), _QUERIES, _PLAN)


def weighted_accepted_fraction(sim) -> float:
    """Served share of offered load, cost-weighted by plan fidelity.

    A full-fidelity answer counts 1, a degraded answer counts its
    ``coverage`` (the budget fraction of the downgraded plan) — the
    quantity whose service cost the capacity bound actually limits.
    """
    served_cost = sum(
        record.response.coverage
        for record in sim.records
        if record.response.served
    )
    return served_cost / len(sim.records)


class TestServingProperties:
    @given(
        base_rate=st.integers(min_value=120, max_value=240),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=5, deadline=None)
    def test_load_response_properties(self, base_rate, seed):
        sims = [run_at(base_rate * m, seed) for m in MULTIPLIERS]

        # 1. Cost-weighted accepted fraction is non-increasing as
        #    offered load rises.  The *raw* fraction is not monotone
        #    (regression: base_rate=175 served 73% at 4x but 81% at 8x
        #    — the deeper degrade level made each answer cheaper, so
        #    more of them fit): weight each served request by the
        #    budget fraction it actually consumed.
        fractions = [weighted_accepted_fraction(sim) for sim in sims]
        for lighter, heavier in zip(fractions, fractions[1:]):
            assert heavier <= lighter + MONOTONE_TOLERANCE
        # The heaviest load runs several times over capacity, so
        # admission control must actually have engaged.
        assert sims[-1].accepted_fraction() < 1.0

        # 2. Every completed request respected its deadline.
        deadline = default_config().lane("interactive").deadline_seconds
        for sim in sims:
            for record in sim.records:
                if record.response.served:
                    assert record.response.deadline_met
                    assert record.response.latency_seconds <= deadline

        # 3. Degraded responses are bit-identical to running the
        #    downgraded plan directly against the index.
        checked = 0
        for sim, multiplier in zip(sims, MULTIPLIERS):
            trace = uniform_trace(base_rate * multiplier, seed)
            by_arrival = {
                float(t): int(qid)
                for t, qid in zip(trace.arrivals, trace.query_ids)
            }
            for record in sim.records:
                response = record.response
                if response.status != "served_degraded" or checked >= 24:
                    continue
                effective = response.effective_plan
                direct = _INDEX.search(
                    _QUERIES[by_arrival[record.arrival]],
                    effective.k,
                    n_candidates=effective.n_candidates,
                    rerank=effective.rerank,
                    fusion=effective.fusion,
                )
                assert np.array_equal(response.result.ids, direct.ids)
                assert np.array_equal(
                    response.result.distances, direct.distances
                )
                checked += 1
        # The 8x run overloads by construction; degradation must have
        # produced at least one verifiable response.
        assert checked > 0
