"""Tests for SK-LSH-style prefix ranking."""

import numpy as np
import pytest

from repro.index.hash_table import HashTable
from repro.probing.sklsh import PrefixRanking, common_prefix_length


class TestCommonPrefixLength:
    def test_identical(self):
        assert common_prefix_length(0b1011, 0b1011, 4) == 4

    def test_first_bit_differs(self):
        # MSB differs -> no shared prefix.
        assert common_prefix_length(0b1000, 0b0000, 4) == 0

    def test_last_bit_differs(self):
        assert common_prefix_length(0b1001, 0b1000, 4) == 3

    def test_only_masked_bits_count(self):
        # Same low 3 bits, garbage above m: mask keeps it correct.
        assert common_prefix_length(0b0101, 0b1101, 3) == 3


class TestPrefixRanking:
    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 2, size=(200, 6)).astype(np.uint8)
        return HashTable(codes)

    def test_covers_occupied_buckets_once(self, table):
        order = list(PrefixRanking().probe(table, 0b101010, np.zeros(6)))
        assert sorted(order) == sorted(table.signatures())

    def test_prefix_lengths_non_increasing(self, table):
        signature = 0b110011
        order = PrefixRanking().probe(table, signature, np.zeros(6))
        lengths = [common_prefix_length(b, signature, 6) for b in order]
        assert lengths == sorted(lengths, reverse=True)

    def test_query_bucket_first_when_present(self, table):
        signature = next(iter(table.signatures()))
        first = next(PrefixRanking().probe(table, signature, np.zeros(6)))
        assert first == signature

    def test_underperforms_gqr_on_boundary_queries(self):
        """The prefix order ignores margins: a query projected just past
        the MSB threshold loses the whole shared prefix for GQR's
        cheapest single-bit flip."""
        from repro.core.gqr import GQR

        # All buckets occupied for a 4-bit table.
        table = HashTable(
            np.asarray(
                [[b >> i & 1 for i in range(4)] for b in range(16)],
                dtype=np.uint8,
            )
        )
        signature = 0b0000
        # MSB (bit 3) is the cheapest flip: |p| tiny there.
        costs = np.array([1.0, 1.0, 1.0, 0.01])
        gqr_order = list(GQR().probe(table, signature, costs))
        prefix_order = list(PrefixRanking().probe(table, signature, costs))
        flip_msb = 0b1000
        # GQR probes the across-the-boundary bucket second; prefix
        # ranking relegates it to the last half.
        assert gqr_order.index(flip_msb) == 1
        assert prefix_order.index(flip_msb) >= 8
