"""Stateful property test: DynamicHashTable against a model dict.

Hypothesis drives random add/remove/lookup sequences and checks the
table never diverges from a trivially correct reference model —
covering the tombstone/compaction/recycling interactions that
example-based tests can miss.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.data import gaussian_mixture
from repro.hashing import ITQ
from repro.index.dynamic import DynamicHashTable
from repro.search import DynamicHashIndex

CODE_LENGTH = 4
MAX_SIGNATURE = (1 << CODE_LENGTH) - 1


class DynamicTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = DynamicHashTable(CODE_LENGTH)
        self.model: dict[int, int] = {}  # item_id -> signature
        self.next_id = 0

    @rule(signature=st.integers(0, MAX_SIGNATURE))
    def add_new(self, signature):
        item_id = self.next_id
        self.next_id += 1
        self.table.add(item_id, signature)
        self.model[item_id] = signature

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_existing(self, data):
        item_id = data.draw(st.sampled_from(sorted(self.model)))
        self.table.remove(item_id)
        del self.model[item_id]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), signature=st.integers(0, MAX_SIGNATURE))
    def readd_removed(self, data, signature):
        item_id = data.draw(st.sampled_from(sorted(self.model)))
        self.table.remove(item_id)
        self.table.add(item_id, signature)
        self.model[item_id] = signature

    @rule(signature=st.integers(0, MAX_SIGNATURE))
    def lookup(self, signature):
        expected = sorted(
            item for item, sig in self.model.items() if sig == signature
        )
        assert sorted(self.table.get(signature).tolist()) == expected

    @invariant()
    def counts_match(self):
        assert self.table.num_items == len(self.model)

    @invariant()
    def all_items_recoverable(self):
        recovered = []
        for signature in self.table.signatures():
            recovered.extend(self.table.get(signature).tolist())
        assert sorted(recovered) == sorted(self.model)

    @invariant()
    def bucket_count_matches_live_signatures(self):
        # Regression: counting buckets triggers lazy compaction, which
        # deletes fully-dead buckets; iterating the live dict while
        # compacting raised RuntimeError mid-count.
        assert self.table.num_buckets == len(set(self.model.values()))


DynamicTableMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestDynamicTableStateful = DynamicTableMachine.TestCase


class TestCompactionRegressions:
    def test_num_buckets_survives_compaction_of_dead_bucket(self):
        # All members of a bucket removed: counting must compact the
        # bucket away (not crash on dict mutation) and report 0.
        table = DynamicHashTable(4)
        table.add(0, 5)
        table.add(1, 5)
        table.remove(0)
        table.remove(1)
        assert table.num_buckets == 0

    def test_num_buckets_ignores_tombstone_only_buckets(self):
        table = DynamicHashTable(4)
        table.add(0, 3)
        table.add(1, 9)
        table.remove(1)
        assert table.num_buckets == 1


class TestRemoveThenAddAfterGrowth:
    """Removed items must never resurface after capacity growth.

    ``DynamicHashIndex`` recycles freed ids and reallocates its vector
    storage in ``_grow_to``; a stale slot surviving either path would
    show up as a wrong neighbour.  Pin search against brute force over
    the live set through a remove → grow → re-add cycle.
    """

    def brute_force(self, index, vectors, ids, query, k):
        order = np.lexsort(
            (ids, np.linalg.norm(vectors - query, axis=1))
        )[:k]
        return ids[order]

    def test_search_matches_brute_force_over_live_items(self):
        data = gaussian_mixture(64, 8, n_clusters=4, seed=13)
        extra = gaussian_mixture(200, 8, n_clusters=4, seed=14)
        hasher = ITQ(code_length=6, seed=0).fit(np.vstack([data, extra]))
        index = DynamicHashIndex(hasher, dim=8)

        live = {}  # id -> vector
        ids = index.add(data)
        live.update(zip(ids.tolist(), data))
        # Remove half, then add enough new items to force _grow_to to
        # reallocate storage (and recycle the freed ids).
        for item_id in ids[::2].tolist():
            index.remove(item_id)
            del live[item_id]
        new_ids = index.add(extra)
        live.update(zip(new_ids.tolist(), extra))

        live_ids = np.array(sorted(live), dtype=np.int64)
        live_vecs = np.array([live[i] for i in live_ids.tolist()])
        for query in extra[:5]:
            result = index.search(
                query, k=5, n_candidates=index.num_items
            )
            expected = self.brute_force(
                index, live_vecs, live_ids, query, k=5
            )
            assert np.array_equal(result.ids, expected)

    def test_removed_id_never_returned_after_readd(self):
        data = gaussian_mixture(40, 8, n_clusters=2, seed=15)
        hasher = ITQ(code_length=6, seed=0).fit(data)
        index = DynamicHashIndex(hasher, dim=8)
        ids = index.add(data[:20])
        victim = int(ids[0])
        index.remove(victim)
        recycled = index.add(data[20:])  # reuses freed slots, then grows
        assert victim in recycled.tolist()  # id recycled for a new vector
        result = index.search(data[0], k=20, n_candidates=index.num_items)
        # The recycled id now means a *different* vector; its reported
        # distance must be to the new vector, not the removed one.
        position = np.where(result.ids == victim)[0]
        if len(position):
            new_vector = data[20:][recycled.tolist().index(victim)]
            expected = float(np.linalg.norm(new_vector - data[0]))
            assert result.distances[position[0]] == expected
