"""Stateful property test: DynamicHashTable against a model dict.

Hypothesis drives random add/remove/lookup sequences and checks the
table never diverges from a trivially correct reference model —
covering the tombstone/compaction/recycling interactions that
example-based tests can miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.index.dynamic import DynamicHashTable

CODE_LENGTH = 4
MAX_SIGNATURE = (1 << CODE_LENGTH) - 1


class DynamicTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = DynamicHashTable(CODE_LENGTH)
        self.model: dict[int, int] = {}  # item_id -> signature
        self.next_id = 0

    @rule(signature=st.integers(0, MAX_SIGNATURE))
    def add_new(self, signature):
        item_id = self.next_id
        self.next_id += 1
        self.table.add(item_id, signature)
        self.model[item_id] = signature

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_existing(self, data):
        item_id = data.draw(st.sampled_from(sorted(self.model)))
        self.table.remove(item_id)
        del self.model[item_id]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), signature=st.integers(0, MAX_SIGNATURE))
    def readd_removed(self, data, signature):
        item_id = data.draw(st.sampled_from(sorted(self.model)))
        self.table.remove(item_id)
        self.table.add(item_id, signature)
        self.model[item_id] = signature

    @rule(signature=st.integers(0, MAX_SIGNATURE))
    def lookup(self, signature):
        expected = sorted(
            item for item, sig in self.model.items() if sig == signature
        )
        assert sorted(self.table.get(signature).tolist()) == expected

    @invariant()
    def counts_match(self):
        assert self.table.num_items == len(self.model)

    @invariant()
    def all_items_recoverable(self):
        recovered = []
        for signature in self.table.signatures():
            recovered.extend(self.table.get(signature).tolist())
        assert sorted(recovered) == sorted(self.model)


DynamicTableMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestDynamicTableStateful = DynamicTableMachine.TestCase
