"""Tests for the metrics registry (counters, gauges, histograms)."""

import math
import sys
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter("c_total", labels=("index",))
        counter.labels(index="hash").inc(3)
        counter.labels(index="mih").inc()
        assert counter.labels(index="hash").value == 3
        assert counter.labels(index="mih").value == 1

    def test_children_are_cached(self):
        counter = MetricsRegistry().counter("c_total", labels=("index",))
        assert counter.labels(index="hash") is counter.labels(index="hash")

    def test_wrong_label_names_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("index",))
        with pytest.raises(MetricError, match="takes labels"):
            counter.labels(worker="0")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4


class TestHistogram:
    def test_bucket_counts_sum_to_count(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 0.9, 3.0, 7.0, 100.0, 5.0):
            hist.observe(value)
        child = hist.labels()
        assert sum(child.bucket_counts) == child.count == 6
        # le-semantics: 5.0 lands in the le=5 bucket, 100 overflows.
        assert child.bucket_counts == [2, 2, 1, 1]

    @given(
        st.lists(
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=60,
        )
    )
    def test_bucket_sum_invariant_holds_for_any_sequence(self, values):
        hist = MetricsRegistry().histogram("h", buckets=DEFAULT_COUNT_BUCKETS)
        child = hist.labels()
        for value in values:
            child.observe(value)
        assert sum(child.bucket_counts) == child.count == len(values)
        assert child.cumulative_counts()[-1] == child.count

    def test_sum_and_mean(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        child = hist.labels()
        assert child.sum == 2.0
        assert child.mean == 1.0

    def test_empty_mean_and_quantile_are_nan(self):
        child = MetricsRegistry().histogram("h", buckets=(1.0,)).labels()
        assert math.isnan(child.mean)
        assert math.isnan(child.quantile(0.5))

    def test_quantile_interpolates_within_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(10.0, 20.0))
        for _ in range(10):
            hist.observe(15.0)
        # All mass in (10, 20]; the median interpolates to the middle.
        assert hist.labels().quantile(0.5) == pytest.approx(15.0)

    def test_quantile_out_of_range_rejected(self):
        child = MetricsRegistry().histogram("h", buckets=(1.0,)).labels()
        with pytest.raises(MetricError, match="quantile"):
            child.quantile(1.5)

    def test_overflow_quantile_clamps_to_last_bound(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.labels().quantile(0.99) == 2.0

    @given(
        st.lists(
            st.floats(
                min_value=1e-9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=12, unique=True,
        )
    )
    def test_top_edge_value_lands_in_top_finite_bucket(self, edges):
        # Prometheus `le` semantics at every boundary: a value exactly
        # equal to a bucket's upper bound belongs to that bucket.  In
        # particular the top finite edge must NOT overflow to +Inf.
        buckets = tuple(sorted(edges))
        hist = MetricsRegistry().histogram("h", buckets=buckets)
        child = hist.labels()
        for edge in buckets:
            child.observe(edge)
        counts = child.bucket_counts
        assert counts[-1] == 0  # nothing in +Inf
        assert sum(counts) == child.count == len(buckets)
        # Each edge observation landed exactly in its own bucket.
        assert counts[:-1] == [1] * len(buckets)

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="at least one"):
            registry.histogram("h1", buckets=())
        with pytest.raises(MetricError, match="strictly increasing"):
            registry.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(MetricError, match="finite"):
            registry.histogram("h3", buckets=(1.0, math.inf))


class TestThreadSafety:
    """Regression: unlocked ``+=`` read-modify-write lost updates.

    The parallel batch executor (PR 5) drives metric children from
    several threads at once; with a tiny switch interval the pre-fix
    races reliably drop increments.  Totals must be exact.
    """

    N_THREADS = 8
    N_INCREMENTS = 5_000

    def hammer(self, work):
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [
                threading.Thread(target=work) for _ in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)

    def test_counter_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("c_total")

        def work():
            for _ in range(self.N_INCREMENTS):
                counter.inc()

        self.hammer(work)
        assert counter.value == self.N_THREADS * self.N_INCREMENTS

    def test_histogram_totals_are_exact(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        child = hist.labels()

        def work():
            for _ in range(self.N_INCREMENTS):
                child.observe(1.5)

        self.hammer(work)
        expected = self.N_THREADS * self.N_INCREMENTS
        assert child.count == expected
        assert sum(child.bucket_counts) == expected
        assert child.sum == pytest.approx(1.5 * expected)

    def test_gauge_inc_dec_balance(self):
        gauge = MetricsRegistry().gauge("g")

        def work():
            for _ in range(self.N_INCREMENTS):
                gauge.inc()
                gauge.dec()

        self.hammer(work)
        assert gauge.value == 0


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricError, match="already registered as"):
            registry.gauge("m")

    def test_label_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("index",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("c", labels=("worker",))

    def test_bucket_clash_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="different.*buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(MetricError, match="invalid metric name"):
            MetricsRegistry().counter("bad name")

    def test_invalid_label_name_rejected(self):
        with pytest.raises(MetricError, match="invalid label name"):
            MetricsRegistry().counter("c", labels=("0bad",))

    def test_label_cardinality_cap(self):
        registry = MetricsRegistry(max_label_sets=3)
        counter = registry.counter("c", labels=("q",))
        for i in range(3):
            counter.labels(q=i).inc()
        with pytest.raises(MetricError, match="label-cardinality cap"):
            counter.labels(q="one-too-many")

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        gauge = registry.gauge("g")
        counter.inc()
        hist.observe(0.5)
        gauge.set(9)
        assert counter.value == 0
        assert hist.labels().count == 0
        assert gauge.value == 0

    def test_reenabling_resumes_recording(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc()
        registry.enabled = True
        counter.inc()
        assert counter.value == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", help="help!").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["schema"] == "repro.metrics/v1"
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["c"]["kind"] == "counter"
        assert by_name["c"]["help"] == "help!"
        assert by_name["c"]["samples"][0]["value"] == 1
        hist_sample = by_name["h"]["samples"][0]
        assert hist_sample["count"] == 1
        assert hist_sample["buckets"][-1]["le"] == "+Inf"

    def test_reset_drops_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels=("index",))
        counter.labels(index="hash").inc()
        registry.reset()
        assert counter.labels(index="hash").value == 0

    def test_get_looks_up_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert registry.get("c") is counter
        assert registry.get("missing") is None
