"""Tests for bootstrap statistics."""

import numpy as np
import pytest

from repro.eval.stats import bootstrap_ci, paired_bootstrap_test


class TestBootstrapCI:
    def test_contains_true_mean_for_tight_data(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.8, 0.01, size=200)
        lo, hi = bootstrap_ci(samples, seed=1)
        assert lo <= samples.mean() <= hi
        assert hi - lo < 0.02

    def test_wider_for_noisier_data(self):
        rng = np.random.default_rng(1)
        tight = bootstrap_ci(rng.normal(0.5, 0.01, 100), seed=2)
        wide = bootstrap_ci(rng.normal(0.5, 0.3, 100), seed=2)
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_deterministic_under_seed(self):
        samples = np.linspace(0, 1, 50)
        assert bootstrap_ci(samples, seed=3) == bootstrap_ci(samples, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)


class TestPairedBootstrap:
    def test_detects_clear_difference(self):
        rng = np.random.default_rng(4)
        base = rng.uniform(0.5, 0.9, size=100)
        better = base + 0.1 + rng.normal(0, 0.01, size=100)
        result = paired_bootstrap_test(better, base, seed=5)
        assert result.mean_difference == pytest.approx(0.1, abs=0.02)
        assert result.significant
        assert result.p_value < 0.05

    def test_no_false_positive_on_identical(self):
        rng = np.random.default_rng(6)
        noise = rng.normal(0, 0.05, size=100)
        a = 0.7 + noise
        b = 0.7 + noise  # exactly paired: zero difference
        result = paired_bootstrap_test(a, b, seed=7)
        assert result.mean_difference == 0.0
        assert not result.significant

    def test_pairing_beats_unpaired_variance(self):
        """Shared query difficulty cancels in the paired differences."""
        rng = np.random.default_rng(8)
        difficulty = rng.uniform(0.2, 0.9, size=100)
        a = difficulty + 0.05 + rng.normal(0, 0.01, 100)
        b = difficulty + rng.normal(0, 0.01, 100)
        result = paired_bootstrap_test(a, b, seed=9)
        assert result.significant  # despite sd(difficulty) >> 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test(np.array([1.0]), np.array([1.0, 2.0]))
