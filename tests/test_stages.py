"""Stage-pipeline behaviour: specs, rerank, fusion arithmetic, caching.

The equivalence suite (`test_pipeline_equivalence.py`) proves the
staged engine is bit-identical to the classic path for plain plans;
this file covers what the new stages *add* — rerank correctness and
tie-handling, ADC-vs-exact agreement, linear fusion math, cache-key
sensitivity to stage parameters — plus the IR report built on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_mixture, sample_queries
from repro.hashing import ITQ
from repro.quantization.pq import ProductQuantizer
from repro.search import (
    ADCEvaluator,
    ExactEvaluator,
    FusionSpec,
    HashIndex,
    IndexFusionPartner,
    QueryEngine,
    QueryPlan,
    QueryResultCache,
    RerankSpec,
    linear_fusion,
)


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return gaussian_mixture(800, 16, n_clusters=8, seed=3)


@pytest.fixture(scope="module")
def queries(data) -> np.ndarray:
    return sample_queries(data, 8, seed=4)


def block_stream(candidates: np.ndarray):
    """A deterministic two-bucket candidate stream."""
    half = len(candidates) // 2
    yield np.asarray(candidates[:half], dtype=np.int64)
    yield np.asarray(candidates[half:], dtype=np.int64)


class TestSpecs:
    def test_rerank_spec_validates_mode(self):
        with pytest.raises(ValueError, match="mode"):
            RerankSpec(mode="cosine")

    def test_rerank_spec_validates_pool(self):
        with pytest.raises(ValueError, match="pool"):
            RerankSpec(pool=0)

    def test_fusion_spec_validates_weight(self):
        with pytest.raises(ValueError, match="weight"):
            FusionSpec(weight=1.5)

    def test_fusion_spec_validates_pool(self):
        with pytest.raises(ValueError, match="pool"):
            FusionSpec(pool=-1)

    def test_plan_rejects_wrong_spec_types(self):
        with pytest.raises(TypeError):
            QueryPlan(k=5, n_candidates=10, rerank="exact")
        with pytest.raises(TypeError):
            QueryPlan(k=5, n_candidates=10, fusion=0.5)

    def test_plan_stage_names(self):
        plain = QueryPlan(k=5, n_candidates=10)
        assert plain.stage_names() == (
            "retrieve", "dedup_budget", "evaluate", "truncate"
        )
        full = QueryPlan(
            k=5, n_candidates=10,
            rerank=RerankSpec(), fusion=FusionSpec(),
        )
        assert full.stage_names() == (
            "retrieve", "dedup_budget", "evaluate", "rerank", "fuse",
            "truncate",
        )

    def test_evaluate_keep(self):
        assert QueryPlan(k=5, n_candidates=10).evaluate_keep() == 5
        assert QueryPlan(
            k=5, n_candidates=10, rerank=RerankSpec(pool=50)
        ).evaluate_keep() == 50
        assert QueryPlan(
            k=5, n_candidates=10, rerank=RerankSpec()
        ).evaluate_keep() is None
        assert QueryPlan(
            k=5, n_candidates=10, fusion=FusionSpec(pool=20)
        ).evaluate_keep() == 20
        assert QueryPlan(
            k=5, n_candidates=10, fusion=FusionSpec()
        ).evaluate_keep() == 5


class TestRerank:
    def test_exact_rerank_equals_brute_force_on_pool(self, data, queries):
        """Reranked top-k == exact top-k restricted to the candidate set."""
        pq = ProductQuantizer(n_subspaces=4, seed=0).fit(data)
        engine = QueryEngine(
            ADCEvaluator(pq, pq.encode(data)), name="hash"
        )
        exact = ExactEvaluator(data, "euclidean")
        engine.rerankers["exact"] = exact
        candidates = np.arange(200, dtype=np.int64)
        plan = QueryPlan(k=10, n_candidates=400, rerank=RerankSpec())
        for query in queries:
            result = engine.execute(query, plan, block_stream(candidates))
            want_ids, want_dists = exact.evaluate(query, candidates, 10)
            np.testing.assert_array_equal(result.ids, want_ids)
            np.testing.assert_array_equal(result.distances, want_dists)

    def test_rerank_pool_caps_the_rescored_set(self, data, queries):
        """With pool=p, rerank sees only evaluation's best p survivors."""
        pq = ProductQuantizer(n_subspaces=4, seed=0).fit(data)
        adc = ADCEvaluator(pq, pq.encode(data))
        engine = QueryEngine(adc, name="hash")
        exact = ExactEvaluator(data, "euclidean")
        engine.rerankers["exact"] = exact
        candidates = np.arange(200, dtype=np.int64)
        plan = QueryPlan(k=10, n_candidates=400, rerank=RerankSpec(pool=30))
        query = queries[0]
        result = engine.execute(query, plan, block_stream(candidates))
        pool_ids, _ = adc.evaluate(query, candidates, 30)
        want_ids, want_dists = exact.evaluate(query, pool_ids, 10)
        np.testing.assert_array_equal(result.ids, want_ids)
        np.testing.assert_array_equal(result.distances, want_dists)

    def test_rerank_breaks_ties_by_id(self):
        """Duplicate vectors tie on exact distance; ids order them."""
        base = gaussian_mixture(40, 8, n_clusters=4, seed=5)
        dup = np.vstack([base, base[:10]])  # ids 40..49 duplicate 0..9
        index = HashIndex(ITQ(code_length=4, seed=0), dup)
        query = base[0]
        result = index.search(
            query, k=len(dup), n_candidates=len(dup) * 4,
            rerank=RerankSpec(),
        )
        positions = {int(i): p for p, i in enumerate(result.ids)}
        for original in range(10):
            twin = 40 + original
            if original in positions and twin in positions:
                assert positions[original] < positions[twin]

    def test_adc_rerank_scores_distance_to_reconstruction(self, data):
        """ADC(query, code) is exactly ‖query − decode(code)‖ for PQ."""
        pq = ProductQuantizer(n_subspaces=4, seed=1).fit(data)
        codes = pq.encode(data)
        adc = ADCEvaluator(pq, codes)
        query = data[3] + 0.01
        candidates = np.arange(100, dtype=np.int64)
        ids, scores = adc.evaluate(query, candidates, 100)
        reconstructed = pq.decode(codes[ids])
        want = np.linalg.norm(reconstructed - query, axis=1)
        np.testing.assert_allclose(scores, want, atol=1e-10)

    def test_adc_and_exact_rerank_agree_on_quantizer_fixed_points(self):
        """When candidates sit on their own codewords, ADC == exact, so
        both rerank modes return identical rankings."""
        rng = np.random.default_rng(0)
        centroids = rng.normal(size=(16, 8)) * 10.0
        data = centroids[rng.integers(0, 16, size=120)]
        pq = ProductQuantizer(n_subspaces=1, n_centroids=16, seed=0).fit(
            centroids
        )
        assert pq.quantization_error(data) == pytest.approx(0.0, abs=1e-12)
        index = HashIndex(
            ITQ(code_length=4, seed=0), data,
            rerank_quantizer=pq,
        )
        query = rng.normal(size=8)
        got_exact = index.search(
            query, k=10, n_candidates=480, rerank=RerankSpec(mode="exact")
        )
        got_adc = index.search(
            query, k=10, n_candidates=480, rerank=RerankSpec(mode="adc")
        )
        np.testing.assert_array_equal(got_exact.ids, got_adc.ids)
        np.testing.assert_allclose(
            got_exact.distances, got_adc.distances, atol=1e-8
        )

    def test_unknown_rerank_mode_fails_fast(self, data, queries):
        index = HashIndex(ITQ(code_length=4, seed=0), data)
        with pytest.raises(ValueError, match="adc"):
            index.search(
                queries[0], k=5, n_candidates=50,
                rerank=RerankSpec(mode="adc"),
            )

    def test_stage_stats_record_rerank_facts(self, data, queries):
        index = HashIndex(ITQ(code_length=4, seed=0), data)
        result = index.search(
            queries[0], k=5, n_candidates=50, rerank=RerankSpec(pool=20)
        )
        stats = result.stats.stage_stats["rerank"]
        assert stats["mode"] == "exact"
        assert stats["pool"] <= 20
        assert "rerank" in result.stats.stage_seconds


class TestLinearFusion:
    def test_hand_computed_fusion(self):
        ids_a = np.array([1, 2, 3], dtype=np.int64)
        scores_a = np.array([0.0, 1.0, 2.0])
        ids_b = np.array([2, 3, 4], dtype=np.int64)
        scores_b = np.array([4.0, 0.0, 2.0])
        ids, fused = linear_fusion(ids_a, scores_a, ids_b, scores_b, 0.5)
        # norm_a: 1→0, 2→0.5, 3→1, 4→1 (missing); norm_b: 2→1, 3→0,
        # 4→0.5, 1→1 (missing).  fused = 0.5·a + 0.5·b.
        want = {1: 0.5, 2: 0.75, 3: 0.5, 4: 0.75}
        got = dict(zip(ids.tolist(), fused.tolist()))
        assert got == pytest.approx(want)
        # Ascending by fused score, ties by id: 1, 3 (0.5) then 2, 4.
        assert ids.tolist() == [1, 3, 2, 4]

    def test_weight_extremes_recover_single_lists(self):
        ids_a = np.array([5, 6], dtype=np.int64)
        scores_a = np.array([1.0, 3.0])
        ids_b = np.array([6, 7], dtype=np.int64)
        scores_b = np.array([9.0, 2.0])
        ids_w1, fused_w1 = linear_fusion(
            ids_a, scores_a, ids_b, scores_b, 1.0
        )
        # weight=1: partner contributes nothing; a's members keep their
        # normalised order and b-only members sink to 1.0.
        assert ids_w1.tolist() == [5, 6, 7]
        assert fused_w1.tolist() == pytest.approx([0.0, 1.0, 1.0])

    def test_constant_scores_normalise_to_zero(self):
        ids = np.array([1, 2], dtype=np.int64)
        flat = np.array([7.0, 7.0])
        got_ids, got = linear_fusion(
            ids, flat, np.empty(0, dtype=np.int64), np.empty(0), 0.5
        )
        # constant list → all-zero norms; absent partner list → 1.0.
        assert got_ids.tolist() == [1, 2]
        assert got.tolist() == pytest.approx([0.5, 0.5])

    def test_empty_lists(self):
        empty_i = np.empty(0, dtype=np.int64)
        empty_s = np.empty(0)
        ids, fused = linear_fusion(empty_i, empty_s, empty_i, empty_s, 0.5)
        assert len(ids) == 0 and len(fused) == 0

    def test_fused_search_end_to_end(self, data, queries):
        primary = HashIndex(ITQ(code_length=4, seed=0), data)
        partner = HashIndex(ITQ(code_length=4, seed=9), data)
        primary.fuse_with(partner)
        result = primary.search(
            queries[0], k=10, n_candidates=100,
            fusion=FusionSpec(weight=0.5),
        )
        assert len(result.ids) == 10
        assert "fuse" in result.stats.stage_seconds
        facts = result.stats.stage_stats["fuse"]
        assert facts["weight"] == 0.5
        # Fused scores are normalised ranks, ascending in [0, 1].
        assert (np.diff(result.distances) >= 0).all()
        assert result.distances.min() >= 0.0
        assert result.distances.max() <= 1.0

    def test_fusion_without_partner_fails_fast(self, data, queries):
        index = HashIndex(ITQ(code_length=4, seed=0), data)
        with pytest.raises(ValueError, match="partner"):
            index.search(
                queries[0], k=5, n_candidates=50, fusion=FusionSpec()
            )


class TestCacheStageFingerprint:
    """Satellite 2: cache keys must hash the full serialized stage list.

    The pre-fix key was ``(token, generation, k, n_candidates,
    max_buckets, time_budget, metric, strategy, fingerprint)`` — blind
    to rerank/fusion config, so the two plans below collided and a
    reranked query could be served a candidate-only cached result.
    """

    def test_plans_differing_only_in_rerank_get_distinct_keys(self):
        cache = QueryResultCache(capacity=8)
        query = np.arange(4, dtype=np.float64)
        plain = QueryPlan(k=5, n_candidates=50)
        reranked = QueryPlan(
            k=5, n_candidates=50, rerank=RerankSpec(mode="exact")
        )
        # The legacy flat key fields are identical for the two plans —
        # this is exactly the pair the old scheme collapsed.
        legacy_fields = lambda p: (  # noqa: E731
            p.k, p.n_candidates, p.max_buckets, p.time_budget, p.metric,
            p.multi_table_strategy,
        )
        assert legacy_fields(plain) == legacy_fields(reranked)
        key_plain = cache.key_for("tok", 0, plain, query)
        key_reranked = cache.key_for("tok", 0, reranked, query)
        assert key_plain != key_reranked

    def test_every_stage_parameter_perturbs_the_key(self):
        cache = QueryResultCache(capacity=8)
        query = np.arange(4, dtype=np.float64)
        base = QueryPlan(
            k=5, n_candidates=50,
            rerank=RerankSpec(mode="exact", pool=30),
            fusion=FusionSpec(weight=0.5, pool=20),
        )
        variants = [
            QueryPlan(k=5, n_candidates=50,
                      rerank=RerankSpec(mode="adc", pool=30),
                      fusion=FusionSpec(weight=0.5, pool=20)),
            QueryPlan(k=5, n_candidates=50,
                      rerank=RerankSpec(mode="exact", pool=31),
                      fusion=FusionSpec(weight=0.5, pool=20)),
            QueryPlan(k=5, n_candidates=50,
                      rerank=RerankSpec(mode="exact", pool=30),
                      fusion=FusionSpec(weight=0.25, pool=20)),
            QueryPlan(k=5, n_candidates=50,
                      rerank=RerankSpec(mode="exact", pool=30),
                      fusion=FusionSpec(weight=0.5, pool=21)),
        ]
        base_key = cache.key_for("tok", 0, base, query)
        for variant in variants:
            assert cache.key_for("tok", 0, variant, query) != base_key

    def test_partner_identity_perturbs_the_key(self):
        cache = QueryResultCache(capacity=8)
        query = np.arange(4, dtype=np.float64)
        plan = QueryPlan(k=5, n_candidates=50, fusion=FusionSpec())
        key_a = cache.key_for(
            "tok", 0, plan, query, partner_identity=("index", "p1", 0, None)
        )
        key_b = cache.key_for(
            "tok", 0, plan, query, partner_identity=("index", "p2", 0, None)
        )
        assert key_a != key_b

    def test_cached_reranked_searches_round_trip(self, data, queries):
        index = HashIndex(
            ITQ(code_length=4, seed=0), data,
            cache=QueryResultCache(capacity=32),
        )
        query = queries[0]
        plain = index.search(query, k=5, n_candidates=50)
        reranked = index.search(
            query, k=5, n_candidates=50, rerank=RerankSpec()
        )
        plain_again = index.search(query, k=5, n_candidates=50)
        reranked_again = index.search(
            query, k=5, n_candidates=50, rerank=RerankSpec()
        )
        np.testing.assert_array_equal(plain.ids, plain_again.ids)
        np.testing.assert_array_equal(reranked.ids, reranked_again.ids)
        np.testing.assert_array_equal(
            plain.distances, plain_again.distances
        )
        np.testing.assert_array_equal(
            reranked.distances, reranked_again.distances
        )

    def test_partner_mutation_invalidates_fused_entries(self, data, queries):
        """A fused result must not be served stale after the partner
        index's answers change."""
        primary = HashIndex(
            ITQ(code_length=4, seed=0), data,
            cache=QueryResultCache(capacity=32),
        )
        partner = HashIndex(ITQ(code_length=4, seed=9), data)
        primary.fuse_with(partner)
        query = queries[0]
        plan_kwargs = dict(k=5, n_candidates=50, fusion=FusionSpec())
        first = primary.search(query, **plan_kwargs)
        partner.engine.bump_generation()
        second = primary.search(query, **plan_kwargs)
        np.testing.assert_array_equal(first.ids, second.ids)


class TestIndexFusionPartner:
    def test_identity_tracks_engine_generation(self, data):
        partner_index = HashIndex(ITQ(code_length=4, seed=0), data)
        adapter = IndexFusionPartner(partner_index)
        before = adapter.fusion_identity()
        partner_index.engine.bump_generation()
        after = adapter.fusion_identity()
        assert before != after

    def test_rejects_nonpositive_budget(self, data):
        partner_index = HashIndex(ITQ(code_length=4, seed=0), data)
        with pytest.raises(ValueError, match="n_candidates"):
            IndexFusionPartner(partner_index, n_candidates=0)

    def test_pool_depth_follows_fusion_spec(self, data, queries):
        partner_index = HashIndex(ITQ(code_length=4, seed=0), data)
        adapter = IndexFusionPartner(partner_index)
        plan = QueryPlan(
            k=5, n_candidates=50, fusion=FusionSpec(pool=17)
        )
        ids, scores = adapter.fusion_pool(queries[0], plan)
        assert len(ids) == 17
        assert len(scores) == 17
