"""Tests for plain-text reporting helpers."""

from repro.eval.harness import CurvePoint
from repro.eval.reporting import format_curve_points, format_curves, format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(["name", "n"], [["a", 1], ["b", 22]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "22" in lines[-1]

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text


class TestFormatCurves:
    def _point(self):
        return CurvePoint(budget=100, seconds=0.5, recall=0.85, items=120.0,
                          buckets=3.0)

    def test_curve_points_table(self):
        text = format_curve_points([self._point()])
        assert "budget" in text and "100" in text and "0.85" in text

    def test_named_sections(self):
        text = format_curves({"GQR": [self._point()], "HR": [self._point()]})
        assert "[GQR]" in text and "[HR]" in text
