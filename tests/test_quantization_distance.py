"""Tests for quantization distance (Definition 1, Theorems 1-2)."""

import numpy as np
import pytest

from repro.core.quantization_distance import (
    distance_lower_bound,
    quantization_distance,
    quantization_distances,
    theorem2_mu,
)
from repro.hashing.base import sign_quantize
from repro.index.codes import hamming_distance, pack_bits


class TestDefinition:
    def test_paper_figure3_example(self):
        """Figure 3: p(q1) = (-0.2, -0.8) gives the table's QD values."""
        projections = np.array([-0.2, -0.8])
        query_sig = pack_bits(sign_quantize(projections))  # (0, 0) -> 0
        costs = np.abs(projections)
        assert quantization_distance(query_sig, 0b00, costs) == pytest.approx(0.0)
        assert quantization_distance(query_sig, 0b01, costs) == pytest.approx(0.2)
        assert quantization_distance(query_sig, 0b10, costs) == pytest.approx(0.8)
        assert quantization_distance(query_sig, 0b11, costs) == pytest.approx(1.0)

    def test_own_bucket_distance_zero(self):
        rng = np.random.default_rng(0)
        p = rng.standard_normal(10)
        sig = pack_bits(sign_quantize(p))
        assert quantization_distance(sig, sig, np.abs(p)) == 0.0

    def test_symmetric_in_xor(self):
        """QD depends on signatures only through their XOR."""
        rng = np.random.default_rng(1)
        p = np.abs(rng.standard_normal(8))
        a, b = 0b10110100, 0b01100110
        assert quantization_distance(a, b, p) == pytest.approx(
            quantization_distance(b, a, p)
        )

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(2)
        p = np.abs(rng.standard_normal(12))
        query = 0b101010101010
        buckets = rng.integers(0, 1 << 12, size=50)
        batch = quantization_distances(query, buckets, p)
        for sig, qd in zip(buckets, batch):
            assert qd == pytest.approx(quantization_distance(query, int(sig), p))

    def test_bounded_by_hamming_times_extremes(self):
        """HD·min|p| ≤ QD ≤ HD·max|p|."""
        rng = np.random.default_rng(3)
        p = np.abs(rng.standard_normal(10))
        query = int(rng.integers(0, 1 << 10))
        buckets = rng.integers(0, 1 << 10, size=100)
        qds = quantization_distances(query, buckets, p)
        hds = hamming_distance(buckets, np.int64(query))
        assert (qds >= hds * p.min() - 1e-12).all()
        assert (qds <= hds * p.max() + 1e-12).all()

    def test_distinguishes_same_hamming_ring(self):
        p = np.array([0.1, 0.9])
        qd1 = quantization_distance(0b00, 0b01, p)
        qd2 = quantization_distance(0b00, 0b10, p)
        assert hamming_distance(0b00, 0b01) == hamming_distance(0b00, 0b10)
        assert qd1 != qd2


class TestTheorem2:
    def test_mu_formula(self):
        rng = np.random.default_rng(4)
        h = rng.standard_normal((6, 9))
        sigma = np.linalg.svd(h, compute_uv=False)[0]
        assert theorem2_mu(h) == pytest.approx(1.0 / (sigma * np.sqrt(6)))

    def test_mu_rejects_bad_matrix(self):
        with pytest.raises(ValueError):
            theorem2_mu(np.zeros(5))
        with pytest.raises(ValueError):
            theorem2_mu(np.zeros((3, 4)))

    def test_lower_bound_holds_exhaustively(self, small_data, fitted_itq):
        """For every item o in bucket b: ‖o − q‖ ≥ µ·dist(q, b)."""
        mu = theorem2_mu(fitted_itq.hashing_matrix)
        signatures = np.asarray(fitted_itq.signatures(small_data))
        rng = np.random.default_rng(5)
        for qi in rng.choice(len(small_data), 5, replace=False):
            query = small_data[qi]
            qsig, costs = fitted_itq.probe_info(query)
            qds = quantization_distances(qsig, signatures, costs)
            true = np.linalg.norm(small_data - query, axis=1)
            assert (true >= mu * qds - 1e-9).all()

    def test_distance_lower_bound_scales(self):
        assert distance_lower_bound(2.0, 0.5) == 1.0
        out = distance_lower_bound(np.array([1.0, 4.0]), 0.25)
        assert np.allclose(out, [0.25, 1.0])
