"""Tests for the deterministic fault-injection layer."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.distributed.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultyShardWorker,
    ShardCorruption,
    ShardCrash,
    ShardError,
    ShardTimeout,
    ShardTransientError,
    WorkerFaultSpec,
    corrupt_payload,
    payload_checksum,
    verify_payload,
)
from repro.distributed.worker import ShardWorker
from repro.hashing import ITQ
from repro.search.results import SearchResult


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(800, 12, n_clusters=6, seed=7)


@pytest.fixture(scope="module")
def hasher(data):
    return ITQ(code_length=6, seed=0).fit(data)


@pytest.fixture(scope="module")
def worker(data, hasher):
    return ShardWorker(3, np.arange(200), data, hasher, GQR())


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (ShardCrash, ShardTransientError, ShardTimeout,
                    ShardCorruption):
            assert issubclass(cls, ShardError)
        assert issubclass(ShardError, RuntimeError)

    def test_kinds_are_telemetry_slugs(self):
        kinds = {
            ShardCrash(0, "x").kind,
            ShardTransientError(0, "x").kind,
            ShardCorruption(0, "x").kind,
        }
        assert kinds <= set(FAULT_KINDS)

    def test_carries_worker_id_and_message(self):
        err = ShardCrash(7, "gone")
        assert err.worker_id == 7
        assert "worker 7" in str(err) and "gone" in str(err)


class TestWorkerFaultSpec:
    def test_clean_spec_always_ok(self):
        spec = WorkerFaultSpec()
        assert spec.is_clean
        assert all(spec.outcome(a).kind == "ok" for a in range(5))

    def test_crash_dominates(self):
        spec = WorkerFaultSpec(crashed=True, transient_failures=2)
        assert all(spec.outcome(a).kind == "crash" for a in range(5))

    def test_transient_heals(self):
        spec = WorkerFaultSpec(transient_failures=2)
        kinds = [spec.outcome(a).kind for a in range(4)]
        assert kinds == ["transient", "transient", "ok", "ok"]

    def test_corrupt_then_clean(self):
        spec = WorkerFaultSpec(corrupt_attempts=1)
        assert spec.outcome(0).kind == "corrupt"
        assert spec.outcome(1).kind == "ok"

    def test_slowdown_classified_slow(self):
        spec = WorkerFaultSpec(slowdown_seconds=0.03)
        out = spec.outcome(0)
        assert out.kind == "slow"
        assert out.slowdown_seconds == pytest.approx(0.03)

    def test_outcome_is_pure(self):
        spec = WorkerFaultSpec(transient_failures=1)
        assert spec.outcome(0) == spec.outcome(0)
        assert spec.outcome(3) == spec.outcome(3)


class TestFaultPlan:
    def test_constructors(self):
        assert FaultPlan.none().faulty_workers() == []
        assert FaultPlan.crash(2, 0).faulty_workers() == [0, 2]
        assert FaultPlan.transient(1, failures=2).spec(1).transient_failures == 2
        assert FaultPlan.slow(4, 0.05).spec(4).slowdown_seconds == 0.05
        assert FaultPlan.corrupt(3).spec(3).corrupt_attempts == 1

    def test_unlisted_worker_is_clean(self):
        assert FaultPlan.crash(0).spec(99).is_clean

    def test_random_is_deterministic(self):
        a = FaultPlan.random(16, seed=5)
        b = FaultPlan.random(16, seed=5)
        assert a == b
        assert a != FaultPlan.random(16, seed=6)

    def test_random_validates_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan.random(4, p_crash=-0.1)
        with pytest.raises(ValueError):
            FaultPlan.random(4, p_crash=0.6, p_transient=0.6)

    def test_corruption_seed_is_stable_integer_mix(self):
        plan = FaultPlan.crash(0, seed=11)
        a = plan.corruption_seed(3, 1)
        assert a == plan.corruption_seed(3, 1)
        assert a != plan.corruption_seed(3, 2)
        assert a != plan.corruption_seed(4, 1)
        assert 0 <= a < 2**31

    def test_describe(self):
        assert FaultPlan.none().describe() == "fault-free"
        text = FaultPlan.crash(1).describe()
        assert "w1:crash" in text
        assert "slow" in FaultPlan.slow(0, 0.02).describe()


class TestChecksum:
    def test_roundtrip(self):
        ids = np.array([5, 2, 9], dtype=np.int64)
        dists = np.array([0.1, 0.4, 0.9])
        result = SearchResult(
            ids, dists, extras={"checksum": payload_checksum(ids, dists)}
        )
        assert verify_payload(result, 0) is result

    def test_detects_tampering(self):
        ids = np.array([5, 2, 9], dtype=np.int64)
        dists = np.array([0.1, 0.4, 0.9])
        checksum = payload_checksum(ids, dists)
        tampered = SearchResult(
            ids, dists + 1e-9, extras={"checksum": checksum}
        )
        with pytest.raises(ShardCorruption):
            verify_payload(tampered, 2)

    def test_missing_checksum_passes_through(self):
        result = SearchResult(np.array([1]), np.array([0.5]))
        assert verify_payload(result, 0) is result

    def test_corrupt_payload_fails_verification(self):
        ids = np.arange(10, dtype=np.int64)
        dists = np.linspace(0.0, 1.0, 10)
        honest = SearchResult(
            ids, dists, extras={"checksum": payload_checksum(ids, dists)}
        )
        damaged = corrupt_payload(honest, seed=3)
        with pytest.raises(ShardCorruption):
            verify_payload(damaged, 1)

    def test_corrupt_payload_is_deterministic(self):
        ids = np.arange(10, dtype=np.int64)
        dists = np.linspace(0.0, 1.0, 10)
        honest = SearchResult(
            ids, dists, extras={"checksum": payload_checksum(ids, dists)}
        )
        a = corrupt_payload(honest, seed=3)
        b = corrupt_payload(honest, seed=3)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_empty_payload_still_detectable(self):
        ids = np.array([], dtype=np.int64)
        dists = np.array([], dtype=np.float64)
        honest = SearchResult(
            ids, dists, extras={"checksum": payload_checksum(ids, dists)}
        )
        damaged = corrupt_payload(honest, seed=0)
        with pytest.raises(ShardCorruption):
            verify_payload(damaged, 0)


class TestFaultyShardWorker:
    def test_clean_plan_is_transparent(self, data, worker):
        faulty = FaultyShardWorker(worker, FaultPlan.none())
        honest = worker.search_local(data[10], 5, 50)
        wrapped = faulty.search_local(data[10], 5, 50)
        assert np.array_equal(honest.ids, wrapped.ids)
        assert np.array_equal(honest.distances, wrapped.distances)
        assert verify_payload(wrapped, worker.worker_id) is wrapped

    def test_crash_raises_every_attempt(self, data, worker):
        faulty = FaultyShardWorker(worker, FaultPlan.crash(worker.worker_id))
        for _ in range(3):
            with pytest.raises(ShardCrash):
                faulty.search_local(data[0], 5, 50)

    def test_transient_heals_on_retry(self, data, worker):
        plan = FaultPlan.transient(worker.worker_id, failures=1)
        faulty = FaultyShardWorker(worker, plan)
        with pytest.raises(ShardTransientError):
            faulty.search_local(data[0], 5, 50)
        result = faulty.search_local(data[0], 5, 50)
        assert len(result.ids)

    def test_corrupt_payload_detected_receive_side(self, data, worker):
        plan = FaultPlan.corrupt(worker.worker_id)
        faulty = FaultyShardWorker(worker, plan)
        bad = faulty.search_local(data[0], 5, 50)
        with pytest.raises(ShardCorruption):
            verify_payload(bad, worker.worker_id)
        good = faulty.search_local(data[0], 5, 50)
        assert verify_payload(good, worker.worker_id) is good

    def test_slowdown_attached_not_slept(self, data, worker):
        plan = FaultPlan.slow(worker.worker_id, 0.04)
        faulty = FaultyShardWorker(worker, plan)
        result = faulty.search_local(data[0], 5, 50)
        assert result.extras["simulated_slowdown_seconds"] == pytest.approx(
            0.04
        )
        # Simulated: the measured compute time is NOT inflated.
        assert result.extras["worker_seconds"] < 0.04

    def test_peek_prices_without_executing(self, data, worker):
        plan = FaultPlan.transient(worker.worker_id, failures=1)
        faulty = FaultyShardWorker(worker, plan)
        assert faulty.peek(0).kind == "transient"
        assert faulty.peek(1).kind == "ok"
        # peeking consumed no attempts
        with pytest.raises(ShardTransientError):
            faulty.search_local(data[0], 5, 50)

    def test_explicit_attempt_overrides_counter(self, data, worker):
        plan = FaultPlan.transient(worker.worker_id, failures=2)
        faulty = FaultyShardWorker(worker, plan)
        result = faulty.search_local(data[0], 5, 50, attempt=2)
        assert len(result.ids)
