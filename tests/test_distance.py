"""Tests for the metric registry (euclidean / cosine / angular)."""

import numpy as np
import pytest

from repro.index.distance import (
    METRICS,
    angular_distances,
    cosine_distances,
    knn_exact,
    pairwise_distances,
)


class TestCosine:
    def test_identical_direction_is_zero(self):
        q = np.array([[1.0, 2.0]])
        x = np.array([[2.0, 4.0]])  # same direction, different norm
        assert cosine_distances(q, x)[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_opposite_direction_is_two(self):
        q = np.array([[1.0, 0.0]])
        x = np.array([[-3.0, 0.0]])
        assert cosine_distances(q, x)[0, 0] == pytest.approx(2.0)

    def test_orthogonal_is_one(self):
        q = np.array([[1.0, 0.0]])
        x = np.array([[0.0, 5.0]])
        assert cosine_distances(q, x)[0, 0] == pytest.approx(1.0)

    def test_zero_vector_handled(self):
        q = np.array([[0.0, 0.0]])
        x = np.array([[1.0, 1.0]])
        assert np.isfinite(cosine_distances(q, x)).all()

    def test_range(self):
        rng = np.random.default_rng(0)
        d = cosine_distances(rng.standard_normal((10, 4)),
                             rng.standard_normal((20, 4)))
        assert (d >= -1e-12).all() and (d <= 2 + 1e-12).all()


class TestAngular:
    def test_right_angle(self):
        q = np.array([[1.0, 0.0]])
        x = np.array([[0.0, 1.0]])
        assert angular_distances(q, x)[0, 0] == pytest.approx(np.pi / 2)

    def test_bounded_by_pi(self):
        rng = np.random.default_rng(1)
        d = angular_distances(rng.standard_normal((5, 3)),
                              rng.standard_normal((5, 3)))
        assert (d >= 0).all() and (d <= np.pi + 1e-12).all()


class TestDispatch:
    def test_registry_keys(self):
        assert set(METRICS) == {"euclidean", "cosine", "angular"}

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            pairwise_distances(np.zeros((1, 2)), np.zeros((1, 2)), "manhattan")

    def test_euclidean_dispatch(self):
        q = np.array([[0.0, 0.0]])
        x = np.array([[3.0, 4.0]])
        assert pairwise_distances(q, x, "euclidean")[0, 0] == pytest.approx(5.0)


class TestKnnExact:
    def test_matches_linear_scan_euclidean(self):
        from repro.index.linear_scan import knn_linear_scan

        rng = np.random.default_rng(2)
        data = rng.standard_normal((100, 5))
        ids_a, dists_a = knn_exact(data[:4], data, 7, "euclidean")
        ids_b, dists_b = knn_linear_scan(data[:4], data, 7)
        assert np.array_equal(ids_a, ids_b)
        assert np.allclose(dists_a, dists_b)

    def test_angular_differs_from_euclidean(self):
        rng = np.random.default_rng(3)
        # Scale some points: angular is norm-invariant, euclidean not.
        data = rng.standard_normal((50, 4))
        data[25:] *= 10
        query = data[:1]
        ang, _ = knn_exact(query, data, 10, "angular")
        euc, _ = knn_exact(query, data, 10, "euclidean")
        assert not np.array_equal(ang, euc)

    def test_angular_norm_invariance(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((60, 4))
        scaled = data * rng.uniform(0.1, 10, size=(60, 1))
        q = rng.standard_normal((3, 4))
        ids_a, _ = knn_exact(q, data, 5, "angular")
        ids_b, _ = knn_exact(q, scaled, 5, "angular")
        assert np.array_equal(ids_a, ids_b)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            knn_exact(np.zeros((1, 2)), np.zeros((3, 2)), 4)
