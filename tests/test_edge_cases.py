"""Cross-cutting edge cases and failure-injection tests.

Inputs a production system will eventually see: NaN vectors, tiny
datasets, k larger than the candidate pool, duplicate items, extreme
code lengths, and queries far outside the trained distribution.
"""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.hashing import ITQ, PCAHashing
from repro.index.hash_table import HashTable
from repro.search.searcher import HashIndex


class TestNaNAndInfinity:
    def test_fit_rejects_nan(self):
        data = np.zeros((10, 4))
        data[3, 2] = np.nan
        with pytest.raises(ValueError):
            ITQ(code_length=3).fit(data)

    def test_fit_rejects_infinity(self):
        data = np.zeros((10, 4))
        data[0, 0] = np.inf
        with pytest.raises(ValueError):
            PCAHashing(code_length=3).fit(data)


class TestTinyDatasets:
    def test_index_over_three_items(self):
        data = np.asarray([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        index = HashIndex(ITQ(code_length=1, seed=0), data, prober=GQR())
        result = index.search(np.array([0.1, 0.1]), k=2, n_candidates=3)
        assert len(result.ids) == 2

    def test_k_exceeds_dataset(self):
        data = gaussian_mixture(50, 8, seed=0)
        index = HashIndex(ITQ(code_length=4, seed=0), data)
        result = index.search(data[0], k=100, n_candidates=50)
        # Returns everything it has, not an error.
        assert len(result.ids) == 50


class TestDuplicates:
    def test_all_identical_items(self):
        data = np.ones((100, 6)) + 1e-9 * np.random.default_rng(0).standard_normal((100, 6))
        index = HashIndex(ITQ(code_length=3, seed=0), data, prober=GQR())
        result = index.search(data[0], k=5, n_candidates=100)
        assert len(result.ids) == 5

    def test_duplicate_rows_all_retrievable(self):
        base = gaussian_mixture(100, 6, seed=1)
        data = np.concatenate([base, base])  # every point twice
        index = HashIndex(ITQ(code_length=4, seed=0), data, prober=GQR())
        result = index.search(base[0], k=2, n_candidates=len(data))
        # Both copies of the nearest point come back first.
        assert set(result.ids.tolist()) == {0, 100}


class TestExtremeCodeLengths:
    def test_one_bit_code(self):
        data = gaussian_mixture(200, 8, seed=2)
        index = HashIndex(ITQ(code_length=1, seed=0), data, prober=GQR())
        result = index.search(data[0], k=5, n_candidates=200)
        assert len(result.ids) == 5

    def test_code_length_equal_to_dims(self):
        data = gaussian_mixture(300, 8, seed=3)
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        result = index.search(data[0], k=3, n_candidates=100)
        assert 0 in result.ids


class TestOutOfDistributionQueries:
    def test_far_query_still_answers(self):
        data = gaussian_mixture(500, 8, seed=4)
        index = HashIndex(ITQ(code_length=5, seed=0), data, prober=GQR())
        far = np.full(8, 100.0)
        result = index.search(far, k=5, n_candidates=500)
        assert len(result.ids) == 5
        # Exactness at full budget even off-distribution.
        dists = np.linalg.norm(data - far, axis=1)
        expected = np.lexsort((np.arange(len(data)), dists))[:5]
        assert np.array_equal(np.sort(result.ids), np.sort(expected))

    def test_zero_query_vector(self):
        data = gaussian_mixture(300, 8, seed=5)
        index = HashIndex(ITQ(code_length=5, seed=0), data, prober=GQR())
        result = index.search(np.zeros(8), k=3, n_candidates=300)
        assert len(result.ids) == 3


class TestHashTableDegenerateShapes:
    def test_empty_table_search(self):
        table = HashTable(np.empty((0, 4), dtype=np.uint8))
        assert table.num_items == 0
        assert list(table.signatures()) == []
        assert table.expected_population() == 0.0

    def test_single_item_table(self):
        table = HashTable(np.asarray([[1, 0, 1]], dtype=np.uint8))
        assert table.num_buckets == 1
        assert table.get(0b101).tolist() == [0]
