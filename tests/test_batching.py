"""Tests for batched probe info and batched search."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture
from repro.hashing import ITQ, KMeansHashing, SpectralHashing
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1000, 16, n_clusters=8, seed=81)


class TestProbeInfoBatch:
    @pytest.mark.parametrize(
        "hasher_factory",
        [
            lambda: ITQ(code_length=8, seed=0),
            lambda: SpectralHashing(code_length=8),
            lambda: KMeansHashing(code_length=8, bits_per_subspace=4, seed=0),
        ],
        ids=["itq", "sh", "kmh"],
    )
    def test_matches_single_calls(self, data, hasher_factory):
        hasher = hasher_factory().fit(data)
        queries = data[:8]
        batch = hasher.probe_info_batch(queries)
        for query, (signature, costs) in zip(queries, batch):
            single_sig, single_costs = hasher.probe_info(query)
            assert signature == single_sig
            assert np.allclose(costs, single_costs)

    def test_single_row_input(self, data):
        hasher = ITQ(code_length=8, seed=0).fit(data)
        batch = hasher.probe_info_batch(data[0])
        assert len(batch) == 1

    def test_requires_fit(self, data):
        with pytest.raises(RuntimeError):
            ITQ(code_length=8).probe_info_batch(data[:2])


class TestSearchBatchFastPath:
    def test_matches_per_query_search(self, data):
        index = HashIndex(ITQ(code_length=8, seed=0), data, prober=GQR())
        queries = data[:6]
        batch = index.search_batch(queries, k=5, n_candidates=150)
        for query, result in zip(queries, batch):
            single = index.search(query, k=5, n_candidates=150)
            assert np.array_equal(result.ids, single.ids)
            assert np.allclose(result.distances, single.distances)
            assert result.n_candidates == single.n_candidates

    def test_multi_table_fallback(self, data):
        index = HashIndex(
            [ITQ(code_length=8, seed=s) for s in (0, 1)], data, prober=GQR()
        )
        batch = index.search_batch(data[:3], k=5, n_candidates=100)
        assert len(batch) == 3
        for query, result in zip(data[:3], batch):
            single = index.search(query, k=5, n_candidates=100)
            assert np.array_equal(result.ids, single.ids)
