"""Tests for query workload generators."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.data.workloads import (
    FlashCrowd,
    boundary_margin,
    boundary_queries,
    in_distribution_queries,
    out_of_distribution_queries,
    rate_at,
    traffic_trace,
    zipfian_stream,
)
from repro.hashing import ITQ
from repro.index.linear_scan import knn_linear_scan


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1500, 16, n_clusters=10, seed=51)


@pytest.fixture(scope="module")
def hasher(data):
    return ITQ(code_length=8, seed=0).fit(data)


class TestInDistribution:
    def test_near_data(self, data):
        queries = in_distribution_queries(data, 20, perturbation=0.02, seed=0)
        _, dists = knn_linear_scan(queries, data, 1)
        assert dists.max() < data.std()


class TestOutOfDistribution:
    def test_farther_than_in_distribution(self, data):
        near = in_distribution_queries(data, 20, seed=0)
        far = out_of_distribution_queries(data, 20, shift=3.0, seed=0)
        _, near_d = knn_linear_scan(near, data, 1)
        _, far_d = knn_linear_scan(far, data, 1)
        assert far_d.mean() > 2 * near_d.mean()

    def test_shift_scales_distance(self, data):
        small = out_of_distribution_queries(data, 20, shift=1.0, seed=0)
        large = out_of_distribution_queries(data, 20, shift=4.0, seed=0)
        _, small_d = knn_linear_scan(small, data, 1)
        _, large_d = knn_linear_scan(large, data, 1)
        assert large_d.mean() > small_d.mean()


class TestBoundaryQueries:
    def test_margin_definition(self, data, hasher):
        queries = data[:10]
        margins = boundary_margin(hasher, queries)
        projections = hasher.project(queries)
        assert np.allclose(margins, np.abs(projections).min(axis=1))

    def test_selected_margins_smaller_than_pool(self, data, hasher):
        boundary = boundary_queries(data, hasher, 20, seed=0)
        random_queries = in_distribution_queries(data, 20, seed=1)
        assert (
            boundary_margin(hasher, boundary).mean()
            < boundary_margin(hasher, random_queries).mean()
        )

    def test_count(self, data, hasher):
        assert boundary_queries(data, hasher, 7, seed=0).shape == (
            7,
            data.shape[1],
        )

    def test_validation(self, data, hasher):
        with pytest.raises(ValueError):
            boundary_queries(data, hasher, 0)


class TestZipfianStream:
    def test_deterministic_per_seed(self):
        a = zipfian_stream(50, 500, seed=3)
        b = zipfian_stream(50, 500, seed=3)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, zipfian_stream(50, 500, seed=4))

    def test_indices_in_range(self):
        stream = zipfian_stream(10, 1000, seed=0)
        assert len(stream) == 1000
        assert stream.min() >= 0 and stream.max() < 10

    def test_popular_head_dominates(self):
        stream = zipfian_stream(100, 5000, exponent=1.2, seed=0)
        counts = np.bincount(stream, minlength=100)
        # Rank-frequency skew: the top id beats the median id by a lot.
        assert counts[0] > 10 * np.median(counts)

    def test_higher_exponent_is_more_skewed(self):
        flat = zipfian_stream(100, 5000, exponent=0.5, seed=0)
        steep = zipfian_stream(100, 5000, exponent=1.5, seed=0)
        assert (steep == 0).mean() > (flat == 0).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            zipfian_stream(0, 10)
        with pytest.raises(ValueError):
            zipfian_stream(10, -1)


class TestRateAt:
    def test_flat_base_rate(self):
        times = np.linspace(0.0, 10.0, 5)
        assert np.allclose(rate_at(times, 100.0), 100.0)

    def test_diurnal_modulation_brackets_base(self):
        period = 10.0
        times = np.linspace(0.0, period, 101)
        rate = rate_at(times, 100.0, diurnal_amplitude=0.5,
                       diurnal_period=period)
        assert rate.max() == pytest.approx(150.0, rel=1e-3)
        assert rate.min() == pytest.approx(50.0, rel=1e-3)

    def test_flash_crowd_scales_only_its_window(self):
        crowd = FlashCrowd(start=2.0, duration=1.0, multiplier=10.0)
        times = np.array([1.0, 2.5, 3.5])
        rate = rate_at(times, 100.0, flash_crowds=(crowd,))
        assert np.allclose(rate, [100.0, 1000.0, 100.0])

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError, match="duration"):
            FlashCrowd(start=0.0, duration=0.0, multiplier=2.0)
        with pytest.raises(ValueError, match="multiplier"):
            FlashCrowd(start=0.0, duration=1.0, multiplier=-1.0)


class TestTrafficTrace:
    def test_deterministic_per_seed(self):
        a = traffic_trace(5.0, 100.0, 32, seed=9)
        b = traffic_trace(5.0, 100.0, 32, seed=9)
        assert np.array_equal(a.arrivals, b.arrivals)
        assert np.array_equal(a.query_ids, b.query_ids)
        assert a.lanes == b.lanes

    def test_arrivals_sorted_within_duration(self):
        trace = traffic_trace(5.0, 100.0, 32, seed=0)
        assert np.all(np.diff(trace.arrivals) >= 0)
        assert trace.arrivals.min() >= 0.0
        assert trace.arrivals.max() <= 5.0

    def test_realised_rate_tracks_base_rate(self):
        trace = traffic_trace(10.0, 200.0, 32, seed=1)
        assert trace.offered_rate(0.0, 10.0) == pytest.approx(200.0, rel=0.1)

    def test_flash_crowd_multiplies_realised_rate(self):
        crowd = FlashCrowd(start=2.0, duration=2.0, multiplier=10.0)
        trace = traffic_trace(6.0, 100.0, 32, seed=2, flash_crowds=(crowd,))
        calm = trace.offered_rate(0.0, 2.0)
        crowded = trace.offered_rate(2.0, 4.0)
        assert crowded > 5 * calm

    def test_lane_mix_follows_weights(self):
        trace = traffic_trace(
            10.0, 200.0, 32, seed=3,
            lane_weights={"interactive": 0.8, "batch": 0.2},
        )
        share = trace.lanes.count("interactive") / len(trace)
        assert 0.7 < share < 0.9

    def test_zero_rate_yields_empty_trace(self):
        trace = traffic_trace(5.0, 0.0, 32, seed=0)
        assert len(trace) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="duration"):
            traffic_trace(0.0, 100.0, 32, seed=0)
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            traffic_trace(1.0, 100.0, 32, seed=0, diurnal_amplitude=2.0)
        with pytest.raises(ValueError, match="lane weights"):
            traffic_trace(1.0, 100.0, 32, seed=0,
                          lane_weights={"interactive": 0.0})
