"""Tests for query workload generators."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.data.workloads import (
    boundary_margin,
    boundary_queries,
    in_distribution_queries,
    out_of_distribution_queries,
)
from repro.hashing import ITQ
from repro.index.linear_scan import knn_linear_scan


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1500, 16, n_clusters=10, seed=51)


@pytest.fixture(scope="module")
def hasher(data):
    return ITQ(code_length=8, seed=0).fit(data)


class TestInDistribution:
    def test_near_data(self, data):
        queries = in_distribution_queries(data, 20, perturbation=0.02, seed=0)
        _, dists = knn_linear_scan(queries, data, 1)
        assert dists.max() < data.std()


class TestOutOfDistribution:
    def test_farther_than_in_distribution(self, data):
        near = in_distribution_queries(data, 20, seed=0)
        far = out_of_distribution_queries(data, 20, shift=3.0, seed=0)
        _, near_d = knn_linear_scan(near, data, 1)
        _, far_d = knn_linear_scan(far, data, 1)
        assert far_d.mean() > 2 * near_d.mean()

    def test_shift_scales_distance(self, data):
        small = out_of_distribution_queries(data, 20, shift=1.0, seed=0)
        large = out_of_distribution_queries(data, 20, shift=4.0, seed=0)
        _, small_d = knn_linear_scan(small, data, 1)
        _, large_d = knn_linear_scan(large, data, 1)
        assert large_d.mean() > small_d.mean()


class TestBoundaryQueries:
    def test_margin_definition(self, data, hasher):
        queries = data[:10]
        margins = boundary_margin(hasher, queries)
        projections = hasher.project(queries)
        assert np.allclose(margins, np.abs(projections).min(axis=1))

    def test_selected_margins_smaller_than_pool(self, data, hasher):
        boundary = boundary_queries(data, hasher, 20, seed=0)
        random_queries = in_distribution_queries(data, 20, seed=1)
        assert (
            boundary_margin(hasher, boundary).mean()
            < boundary_margin(hasher, random_queries).mean()
        )

    def test_count(self, data, hasher):
        assert boundary_queries(data, hasher, 7, seed=0).shape == (
            7,
            data.shape[1],
        )

    def test_validation(self, data, hasher):
        with pytest.raises(ValueError):
            boundary_queries(data, hasher, 0)
