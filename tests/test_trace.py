"""Tests for per-query probe tracing."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, ground_truth_knn
from repro.eval.trace import ProbeTrace, trace_query
from repro.hashing import ITQ
from repro.probing import HammingRanking
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_mixture(1000, 16, n_clusters=8,
                            cluster_spread=1.0, seed=71)
    queries = data[:5]
    truth = ground_truth_knn(queries, data, 10)
    index = HashIndex(ITQ(code_length=7, seed=0), data, prober=GQR())
    return data, queries, truth, index


class TestTraceQuery:
    def test_scores_non_decreasing_for_gqr(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[0], truth[0])
        scores = [step.score for step in trace.steps]
        assert all(s is not None for s in scores)
        assert all(b >= a - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_cumulative_recall_monotone_to_one(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[1], truth[1])
        recalls = [step.cumulative_recall for step in trace.steps]
        assert recalls == sorted(recalls)
        assert recalls[-1] == pytest.approx(1.0)

    def test_stops_at_full_recall(self, setup):
        """The trace ends as soon as every true neighbour is found."""
        _, queries, truth, index = setup
        trace = trace_query(index, queries[2], truth[2])
        assert trace.steps[-1].cumulative_recall == pytest.approx(1.0)
        if len(trace.steps) > 1:
            assert trace.steps[-2].cumulative_recall < 1.0

    def test_hits_sum_to_truth_size(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[3], truth[3])
        assert sum(step.n_hits for step in trace.steps) == trace.truth_size

    def test_max_buckets_cap(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[0], truth[0], max_buckets=2)
        assert trace.n_buckets <= 2

    def test_recall_at_items(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[0], truth[0])
        assert trace.recall_at_items(10**9) == pytest.approx(1.0)
        assert 0 <= trace.recall_at_items(1) <= 1

    def test_unscored_prober_gives_none_scores(self, setup):
        data, queries, truth, _ = setup
        index = HashIndex(
            ITQ(code_length=7, seed=0), data, prober=HammingRanking()
        )
        trace = trace_query(index, queries[0], truth[0], max_buckets=3)
        assert all(step.score is None for step in trace.steps)

    def test_to_table_renders(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[0], truth[0])
        table = trace.to_table(max_rows=5)
        assert "bucket" in table and "recall" in table

    def test_empty_truth_rejected(self, setup):
        _, queries, _, index = setup
        with pytest.raises(ValueError):
            trace_query(index, queries[0], np.array([]))

    def test_multi_table_rejected(self, setup):
        data, queries, truth, _ = setup
        index = HashIndex(
            [ITQ(code_length=7, seed=s) for s in (0, 1)], data
        )
        with pytest.raises(ValueError):
            trace_query(index, queries[0], truth[0])


class TestSerialization:
    def test_dict_round_trip(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[0], truth[0])
        payload = trace.to_dict()
        assert payload["schema"] == "repro.probe_trace/v1"
        assert len(payload["steps"]) == trace.n_buckets
        rebuilt = ProbeTrace.from_dict(payload)
        assert rebuilt == trace

    def test_json_round_trip(self, setup):
        _, queries, truth, index = setup
        trace = trace_query(index, queries[1], truth[1])
        rebuilt = ProbeTrace.from_json(trace.to_json(indent=2))
        assert rebuilt == trace

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ProbeTrace.from_dict({"schema": "bogus/v9", "steps": []})

    def test_sampler_accepts_probe_trace_dict(self, setup):
        """The offline trace schema slots into the sampler's field."""
        from repro.obs import TraceSampler

        _, queries, truth, index = setup
        trace = trace_query(index, queries[0], truth[0])
        sampler = TraceSampler(every_n=1, seed=0)
        sampler.should_sample()
        sampler.record(spans=None, stats=None,
                       probe_trace=trace.to_dict())
        stored = sampler.last().to_dict()
        assert stored["probe_trace"]["schema"] == "repro.probe_trace/v1"
        assert ProbeTrace.from_dict(stored["probe_trace"]) == trace
