"""Tests for the tree-based search family (k-d, randomized forest,
k-means tree)."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.index.linear_scan import knn_linear_scan
from repro.trees.kdtree import KDTree
from repro.trees.kmeans_tree import KMeansTree
from repro.trees.randomized_forest import RandomizedKDForest


@pytest.fixture(scope="module")
def low_dim_data():
    return gaussian_mixture(1000, 6, n_clusters=8, seed=41)


@pytest.fixture(scope="module")
def high_dim_data():
    return gaussian_mixture(1000, 48, n_clusters=8, seed=42)


class TestKDTree:
    def test_exactness(self, low_dim_data):
        tree = KDTree(low_dim_data, leaf_size=8)
        truth, tdists = knn_linear_scan(low_dim_data[:10], low_dim_data, 5)
        for qi in range(10):
            ids, dists = tree.query(low_dim_data[qi], 5)
            assert np.array_equal(ids, truth[qi])
            assert np.allclose(dists, tdists[qi], atol=1e-6)

    def test_exact_on_random_queries(self, low_dim_data):
        tree = KDTree(low_dim_data)
        rng = np.random.default_rng(0)
        queries = rng.standard_normal((5, 6)) * 2
        truth, _ = knn_linear_scan(queries, low_dim_data, 8)
        for query, truth_row in zip(queries, truth):
            ids, _ = tree.query(query, 8)
            assert np.array_equal(ids, truth_row)

    def test_prunes_in_low_dimensions(self, low_dim_data):
        tree = KDTree(low_dim_data, leaf_size=8)
        tree.query(low_dim_data[0], 5)
        total_leaves = int(np.ceil(len(low_dim_data) / 8))
        assert tree.last_nodes_visited < total_leaves / 2

    def test_curse_of_dimensionality(self):
        """The paper's related-work claim: pruning collapses as d grows.

        Measured on unclustered Gaussian data (clusters would rescue
        pruning even in high dimensions)."""
        rng = np.random.default_rng(7)
        low = KDTree(rng.standard_normal((1000, 4)), leaf_size=8)
        high = KDTree(rng.standard_normal((1000, 32)), leaf_size=8)
        low.query(rng.standard_normal(4), 10)
        low_visited = low.last_nodes_visited
        high.query(rng.standard_normal(32), 10)
        high_visited = high.last_nodes_visited
        assert high_visited > 2 * low_visited

    def test_duplicate_points(self):
        data = np.zeros((100, 4))
        tree = KDTree(data)
        ids, dists = tree.query(np.zeros(4), 3)
        assert ids.tolist() == [0, 1, 2]
        assert np.allclose(dists, 0)

    def test_validation(self, low_dim_data):
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))
        with pytest.raises(ValueError):
            KDTree(low_dim_data, leaf_size=0)
        tree = KDTree(low_dim_data)
        with pytest.raises(ValueError):
            tree.query(low_dim_data[0], 0)
        with pytest.raises(ValueError):
            tree.query(low_dim_data[:2], 3)


class TestRandomizedKDForest:
    def test_full_leaf_budget_high_recall(self, low_dim_data):
        forest = RandomizedKDForest(low_dim_data, n_trees=4, seed=0)
        truth, _ = knn_linear_scan(low_dim_data[:10], low_dim_data, 10)
        hits = 0
        for qi in range(10):
            ids, _ = forest.query(low_dim_data[qi], 10, max_leaves=64)
            hits += len(np.intersect1d(ids, truth[qi]))
        assert hits / 100 > 0.9

    def test_more_leaves_monotone_recall(self, high_dim_data):
        forest = RandomizedKDForest(high_dim_data, n_trees=4, seed=0)
        truth, _ = knn_linear_scan(high_dim_data[:10], high_dim_data, 10)

        def recall(max_leaves):
            hits = 0
            for qi in range(10):
                ids, _ = forest.query(high_dim_data[qi], 10, max_leaves)
                hits += len(np.intersect1d(ids, truth[qi]))
            return hits / 100

        assert recall(64) >= recall(4) - 0.05

    def test_distances_ascending(self, low_dim_data):
        forest = RandomizedKDForest(low_dim_data, n_trees=2, seed=0)
        _, dists = forest.query(low_dim_data[0], 10, max_leaves=8)
        assert (np.diff(dists) >= 0).all()

    def test_deterministic_under_seed(self, low_dim_data):
        a = RandomizedKDForest(low_dim_data, n_trees=3, seed=7)
        b = RandomizedKDForest(low_dim_data, n_trees=3, seed=7)
        ids_a, _ = a.query(low_dim_data[1], 5, max_leaves=8)
        ids_b, _ = b.query(low_dim_data[1], 5, max_leaves=8)
        assert np.array_equal(ids_a, ids_b)

    def test_validation(self, low_dim_data):
        with pytest.raises(ValueError):
            RandomizedKDForest(low_dim_data, n_trees=0)
        forest = RandomizedKDForest(low_dim_data, n_trees=2, seed=0)
        with pytest.raises(ValueError):
            forest.query(low_dim_data[0], 0)


class TestKMeansTree:
    def test_full_leaf_budget_high_recall(self, low_dim_data):
        tree = KMeansTree(low_dim_data, branching=4, leaf_size=16, seed=0)
        truth, _ = knn_linear_scan(low_dim_data[:10], low_dim_data, 10)
        hits = 0
        for qi in range(10):
            ids, _ = tree.query(low_dim_data[qi], 10, max_leaves=64)
            hits += len(np.intersect1d(ids, truth[qi]))
        assert hits / 100 > 0.85

    def test_first_leaf_contains_query_region(self, low_dim_data):
        tree = KMeansTree(low_dim_data, branching=4, seed=0)
        ids, _ = tree.query(low_dim_data[3], 1, max_leaves=1)
        # With one leaf, the query's own point should usually be found
        # (it lies in the closest cluster at every level).
        assert ids[0] == 3

    def test_branching_validation(self, low_dim_data):
        with pytest.raises(ValueError):
            KMeansTree(low_dim_data, branching=1)
        with pytest.raises(ValueError):
            KMeansTree(low_dim_data, leaf_size=0)

    def test_identical_points_leaf(self):
        data = np.zeros((50, 3))
        tree = KMeansTree(data, branching=4, seed=0)
        ids, _ = tree.query(np.zeros(3), 5)
        assert len(ids) == 5
