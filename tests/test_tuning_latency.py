"""Tests for budget auto-tuning and latency statistics."""

import numpy as np
import pytest

from repro.core.gqr import GQR
from repro.data import gaussian_mixture, ground_truth_knn
from repro.eval.harness import recall_at_budgets
from repro.eval.latency import latency_summary, measure_latencies
from repro.eval.tuning import tune_candidate_budget
from repro.hashing import ITQ
from repro.search.searcher import HashIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_mixture(1200, 16, n_clusters=10,
                            cluster_spread=1.0, seed=61)
    queries = data[:15]
    truth = ground_truth_knn(queries, data, 10)
    index = HashIndex(ITQ(code_length=7, seed=0), data, prober=GQR())
    return data, queries, truth, index


class TestTuneCandidateBudget:
    def test_meets_target(self, setup):
        _, queries, truth, index = setup
        result = tune_candidate_budget(index, queries, truth, 0.9)
        assert result.recall >= 0.9
        achieved = recall_at_budgets(index, queries, truth, [result.budget])[0]
        assert achieved >= 0.9

    def test_budget_is_tightish(self, setup):
        """A budget far below the tuned one must miss the target."""
        _, queries, truth, index = setup
        result = tune_candidate_budget(
            index, queries, truth, 0.95, tolerance=8
        )
        if result.budget > 64:
            below = recall_at_budgets(
                index, queries, truth, [result.budget // 4]
            )[0]
            assert below < 0.95

    def test_easy_target_small_budget(self, setup):
        data, queries, truth, index = setup
        easy = tune_candidate_budget(index, queries, truth, 0.3)
        hard = tune_candidate_budget(index, queries, truth, 0.99)
        assert easy.budget <= hard.budget

    def test_unreachable_target_reports_full_scan(self, setup):
        data, queries, truth, index = setup
        # Truth from a different dataset: unreachable recall.
        wrong_truth = np.full_like(truth, len(data) + 5)
        result = tune_candidate_budget(index, queries, wrong_truth, 0.9)
        assert result.budget == index.num_items
        assert result.recall == 0.0

    def test_validation(self, setup):
        _, queries, truth, index = setup
        with pytest.raises(ValueError):
            tune_candidate_budget(index, queries, truth, 0.0)
        with pytest.raises(ValueError):
            tune_candidate_budget(index, queries, truth, 0.9, tolerance=0)


class TestLatency:
    def test_measure_shape(self, setup):
        _, queries, _, index = setup
        latencies = measure_latencies(index, queries, k=5, n_candidates=100)
        assert latencies.shape == (len(queries),)
        assert (latencies > 0).all()

    def test_summary_ordering(self):
        summary = latency_summary(np.array([1.0, 2.0, 3.0, 10.0]))
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.worst
        assert summary.worst == 10.0

    def test_summary_row_scale(self):
        summary = latency_summary(np.array([0.001, 0.002]))
        row = summary.row()
        assert row[0] == pytest.approx(1.5)  # mean in ms

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_summary(np.array([]))
