"""Tests for reprolint v2: whole-program analysis.

Covers the project index (symbol table + call graph), the RL012/RL013/
RL014 rule families with positive and negative fixtures, cross-file
suppression semantics, the content-hash cache (including invalidation
on edit), multi-process/serial parity, the findings baseline with
``--fail-on-new``, and the SARIF exporter.
"""

import json
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[1]
_TOOLS = str(_REPO_ROOT / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from reprolint.analysis import run_analysis  # noqa: E402
from reprolint.baseline import (  # noqa: E402
    baseline_fingerprints,
    filter_new,
    load_baseline,
    write_baseline,
)
from reprolint.cli import main  # noqa: E402
from reprolint.core import (  # noqa: E402
    Violation,
    check_source,
    get_rule,
)
from reprolint.project import (  # noqa: E402
    ProjectIndex,
    module_name,
    summarize_module,
)
from reprolint.sarif import to_sarif  # noqa: E402

SEARCH_PATH = "src/repro/search/searcher.py"


def rule_ids(violations):
    return [v.rule_id for v in violations]


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def analyze(root: Path, select=None, **kwargs):
    rules = None
    if select is not None:
        rules = [get_rule(rule_id) for rule_id in select]
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("cache_dir", None)
    return run_analysis([root], rules=rules, **kwargs)


# ---------------------------------------------------------------------------
# Project index


class TestProjectIndex:
    def test_module_name(self):
        assert module_name("src/repro/search/engine.py") == (
            "repro.search.engine"
        )
        assert module_name("src/repro/obs/__init__.py") == "repro.obs"
        assert module_name("tools/reprolint/core.py") == "reprolint.core"

    def test_lock_attr_discovery_and_guards(self):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def put(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def bad(self, x):\n"
            "        self._items.append(x)\n"
        )
        summary = summarize_module("src/repro/obs/box.py", source)
        cls = summary.classes["Box"]
        assert cls.lock_attrs == ("_lock",)
        put = summary.functions["repro.obs.box.Box.put"]
        assert put.mutations[0].guards == ("self._lock",)
        bad = summary.functions["repro.obs.box.Box.bad"]
        assert bad.mutations[0].guards == ()

    def test_thread_targets_include_getattr_constant(self):
        source = (
            "def run(pool, table):\n"
            "    layout_fn = getattr(table, 'dense_layout', None)\n"
            "    pool.submit(worker, 1)\n"
            "def worker(x):\n"
            "    return x\n"
        )
        summary = summarize_module("src/repro/search/par.py", source)
        names = {ref.name for ref in summary.thread_targets}
        assert "worker" in names
        run_info = summary.functions["repro.search.par.run"]
        assert any(
            ref.name == "dense_layout" and ref.kind == "attr"
            for ref in run_info.calls
        )

    def test_reachability_chain(self):
        files = {
            "src/repro/search/a.py": (
                "def root():\n"
                "    middle()\n"
                "def middle():\n"
                "    leaf()\n"
                "def leaf():\n"
                "    pass\n"
            ),
        }
        summary = summarize_module(
            "src/repro/search/a.py", files["src/repro/search/a.py"]
        )
        project = ProjectIndex({summary.path: summary})
        root = project.functions["repro.search.a.root"]
        parents = project.reachable_from([root])
        assert "repro.search.a.leaf" in parents
        chain = project.chain(parents, "repro.search.a.leaf")
        assert chain == [
            "repro.search.a.root",
            "repro.search.a.middle",
            "repro.search.a.leaf",
        ]


# ---------------------------------------------------------------------------
# RL012 concurrency discipline


_POOL_MODULE = (
    "class Executor:\n"
    "    def run(self, pool, state):\n"
    "        pool.submit(state.work, 1)\n"
)


class TestConcurrencyRL012:
    def test_thread_reachable_unguarded_mutation_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/pool.py": _POOL_MODULE,
                "src/repro/obs/state.py": (
                    "class State:\n"
                    "    def work(self, x):\n"
                    "        self._count += 1\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert rule_ids(report.violations) == ["RL012"]
        message = report.violations[0].message
        assert "self._count" in message
        assert "Executor.run" not in message  # chain starts at the root
        assert "State.work" in message

    def test_guarded_mutation_is_quiet(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/pool.py": _POOL_MODULE,
                "src/repro/obs/state.py": (
                    "import threading\n"
                    "class State:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._count = 0\n"
                    "    def work(self, x):\n"
                    "        with self._lock:\n"
                    "            self._count += 1\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert report.violations == []

    def test_lock_owning_class_unguarded_mutation_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/index/table.py": (
                    "import threading\n"
                    "class Table:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._rows = {}\n"
                    "    def put(self, k, v):\n"
                    "        self._rows[k] = v\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert rule_ids(report.violations) == ["RL012"]
        assert "owns self._lock" in report.violations[0].message

    def test_distributed_mutations_not_in_scope(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/distributed/sim.py": (
                    "import threading\n"
                    "class Sim:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._t = 0\n"
                    "    def tick(self):\n"
                    "        self._t += 1\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert report.violations == []

    def test_misuse_patterns_fire(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/misuse.py": (
                    "import threading\n"
                    "import time\n"
                    "class Worker:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def bare(self):\n"
                    "        self._lock.acquire()\n"
                    "    def per_call(self):\n"
                    "        guard = threading.Lock()\n"
                    "        return guard\n"
                    "    def nap(self):\n"
                    "        with self._lock:\n"
                    "            time.sleep(0.1)\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        messages = sorted(v.message for v in report.violations)
        assert len(messages) == 3
        assert any("without `with`" in m for m in messages)
        assert any("constructed per call" in m for m in messages)
        assert any("time.sleep while holding" in m for m in messages)

    def test_misuse_outside_repro_is_quiet(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_x.py": (
                    "import threading\n"
                    "def test_thing():\n"
                    "    lock = threading.Lock()\n"
                    "    lock.acquire()\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert report.violations == []

    def test_suppression_at_mutation_site(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/pool.py": _POOL_MODULE,
                "src/repro/obs/state.py": (
                    "class State:\n"
                    "    def work(self, x):\n"
                    "        self._count += 1"
                    "  # reprolint: disable=RL012 -- single-writer\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert report.violations == []


# ---------------------------------------------------------------------------
# RL013 determinism


class TestDeterminismRL013:
    def check(self, source, path=SEARCH_PATH):
        return check_source(source, path, [get_rule("RL013")])

    def test_unseeded_numpy_rng_fires(self):
        found = self.check("import numpy as np\nx = np.random.rand(3)\n")
        assert rule_ids(found) == ["RL013"]

    def test_default_rng_is_quiet(self):
        found = self.check(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
        )
        assert found == []

    def test_bare_random_fires(self):
        found = self.check("import random\nrandom.shuffle(items)\n")
        assert rule_ids(found) == ["RL013"]

    def test_random_instance_is_quiet(self):
        found = self.check(
            "import random\nrng = random.Random(3)\nrng.shuffle(items)\n"
        )
        assert found == []

    def test_set_iteration_fires(self):
        found = self.check(
            "def f(ids):\n"
            "    out = []\n"
            "    for i in set(ids):\n"
            "        out.append(i)\n"
            "    return out\n"
        )
        assert rule_ids(found) == ["RL013"]

    def test_set_name_tracking_fires(self):
        found = self.check(
            "def f(ids):\n"
            "    seen = set(ids)\n"
            "    return list(seen)\n"
        )
        assert rule_ids(found) == ["RL013"]

    def test_sorted_set_is_quiet(self):
        found = self.check(
            "def f(ids):\n"
            "    return sorted(set(ids))\n"
        )
        assert found == []

    def test_sum_over_array_fires(self):
        found = self.check("def f(xs):\n    return sum(xs)\n")
        assert rule_ids(found) == ["RL013"]

    def test_sum_over_generator_is_quiet(self):
        found = self.check(
            "def f(xs):\n    return sum(x * x for x in xs)\n"
        )
        assert found == []

    def test_out_of_scope_path_is_quiet(self):
        found = check_source(
            "import numpy as np\nx = np.random.rand(3)\n",
            "src/repro/eval/plotting.py",
            [get_rule("RL013")],
        )
        assert found == []

    def test_probing_and_distributed_in_scope(self):
        source = "import random\nrandom.random()\n"
        for path in (
            "src/repro/probing/hamming_ball.py",
            "src/repro/distributed/cluster.py",
        ):
            found = check_source(source, path, [get_rule("RL013")])
            assert rule_ids(found) == ["RL013"], path


# ---------------------------------------------------------------------------
# RL014 engine integrity


_ENGINE_MODULE = (
    "def execute(q):\n"
    "    return _probe_prefix(q)\n"
    "def _probe_prefix(q):\n"
    "    return q\n"
    "def drain_stream(stream):\n"
    "    return list(stream)\n"
)


class TestEngineIntegrityRL014:
    def test_direct_internal_call_from_eval_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/engine.py": _ENGINE_MODULE,
                "src/repro/eval/helper.py": (
                    "def shortcut(q):\n"
                    "    return _probe_prefix(q)\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL014"])
        assert rule_ids(report.violations) == ["RL014"]
        violation = report.violations[0]
        assert violation.path.endswith("src/repro/eval/helper.py")
        assert "_probe_prefix" in violation.message

    def test_transitive_internal_reach_fires_with_chain(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/engine.py": _ENGINE_MODULE,
                "src/repro/eval/inner.py": (
                    "def hop(q):\n"
                    "    return drain_stream(q)\n"
                ),
                "src/repro/eval/outer.py": (
                    "def report(q):\n"
                    "    return hop(q)\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL014"])
        by_path = {
            Path(v.path).name: v.message for v in report.violations
        }
        assert set(by_path) == {"inner.py", "outer.py"}
        assert "inner.hop -> engine.drain_stream" in by_path["outer.py"]

    def test_public_api_entry_is_quiet(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/engine.py": _ENGINE_MODULE,
                "src/repro/eval/helper.py": (
                    "def harness(q):\n"
                    "    return execute(q)\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL014"])
        assert report.violations == []

    def test_pairwise_via_out_of_path_helper_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/io/mathutil.py": (
                    "def exact_scores(q, x):\n"
                    "    return pairwise_distances(q, x, 'euclidean')\n"
                ),
                "src/repro/search/searcher.py": (
                    "def score(q, x):\n"
                    "    return exact_scores(q, x)\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL014"])
        assert rule_ids(report.violations) == ["RL014"]
        violation = report.violations[0]
        assert violation.path.endswith("src/repro/search/searcher.py")
        assert "pairwise_distances" in violation.message

    def test_direct_pairwise_is_rl001_business_not_rl014(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/searcher.py": (
                    "def score(q, x):\n"
                    "    return pairwise_distances(q, x, 'euclidean')\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL014"])
        assert report.violations == []


# ---------------------------------------------------------------------------
# Cross-file suppression semantics


class TestCrossFileSuppression:
    FILES = {
        "src/repro/search/engine.py": _ENGINE_MODULE,
        "src/repro/eval/helper.py": (
            "def shortcut(q):\n"
            "    return _probe_prefix(q)\n"
        ),
    }

    def test_suppression_at_definition_site_silences(self, tmp_path):
        files = dict(self.FILES)
        files["src/repro/eval/helper.py"] = (
            "def shortcut(q):"
            "  # reprolint: disable=RL014 -- sanctioned debug helper\n"
            "    return _probe_prefix(q)\n"
        )
        write_tree(tmp_path, files)
        report = analyze(tmp_path, select=["RL014"])
        assert report.violations == []

    def test_suppression_at_callee_site_does_not_silence(self, tmp_path):
        # Cross-file findings anchor at the *caller's* definition;
        # suppressing at the internal function's definition (the
        # "call-site end" of the edge) must not hide the caller.
        files = dict(self.FILES)
        files["src/repro/search/engine.py"] = _ENGINE_MODULE.replace(
            "def _probe_prefix(q):",
            "def _probe_prefix(q):"
            "  # reprolint: disable=RL014 -- not the reported site",
        )
        write_tree(tmp_path, files)
        report = analyze(tmp_path, select=["RL014"])
        assert rule_ids(report.violations) == ["RL014"]

    def test_rl012_suppression_is_per_mutation_site(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/search/pool.py": _POOL_MODULE,
                "src/repro/obs/state.py": (
                    "class State:\n"
                    "    def work(self, x):\n"
                    "        self._a += 1"
                    "  # reprolint: disable=RL012 -- covered\n"
                    "        self._b += 1\n"
                ),
            },
        )
        report = analyze(tmp_path, select=["RL012"])
        assert len(report.violations) == 1
        assert "self._b" in report.violations[0].message


# ---------------------------------------------------------------------------
# Cache and parallel execution


class TestAnalysisCache:
    def test_cache_hit_and_invalidation_on_edit(self, tmp_path):
        root = write_tree(
            tmp_path / "proj",
            {
                "src/repro/search/mod.py": (
                    "import random\nrandom.random()\n"
                ),
            },
        )
        cache = tmp_path / "cache"
        first = run_analysis(
            [root], rules=[get_rule("RL013")], jobs=1, cache_dir=cache
        )
        assert rule_ids(first.violations) == ["RL013"]
        assert first.stats["cache_hits"] == 0

        second = run_analysis(
            [root], rules=[get_rule("RL013")], jobs=1, cache_dir=cache
        )
        assert rule_ids(second.violations) == ["RL013"]
        assert second.stats["cache_hits"] == 1

        # Editing the file invalidates its entry and changes the result.
        (root / "src/repro/search/mod.py").write_text(
            "import random\nrng = random.Random(0)\nrng.random()\n",
            encoding="utf-8",
        )
        third = run_analysis(
            [root], rules=[get_rule("RL013")], jobs=1, cache_dir=cache
        )
        assert third.violations == []
        assert third.stats["cache_hits"] == 0

    def test_cached_project_summaries_feed_project_rules(self, tmp_path):
        root = write_tree(
            tmp_path / "proj",
            {
                "src/repro/search/engine.py": _ENGINE_MODULE,
                "src/repro/eval/helper.py": (
                    "def shortcut(q):\n"
                    "    return _probe_prefix(q)\n"
                ),
            },
        )
        cache = tmp_path / "cache"
        rules = [get_rule("RL014")]
        first = run_analysis([root], rules=rules, jobs=1, cache_dir=cache)
        second = run_analysis([root], rules=rules, jobs=1, cache_dir=cache)
        assert rule_ids(first.violations) == ["RL014"]
        assert rule_ids(second.violations) == ["RL014"]
        assert second.stats["cache_hits"] == second.stats["files"]

    def test_parallel_serial_parity(self, tmp_path):
        root = write_tree(
            tmp_path / "proj",
            {
                "src/repro/search/engine.py": _ENGINE_MODULE,
                "src/repro/eval/helper.py": (
                    "def shortcut(q):\n"
                    "    return _probe_prefix(q)\n"
                ),
                "src/repro/search/rng.py": (
                    "import random\nrandom.random()\n"
                ),
                "src/repro/obs/state.py": (
                    "import threading\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._n = 0\n"
                    "    def bump(self):\n"
                    "        self._n += 1\n"
                ),
            },
        )
        serial = run_analysis([root], jobs=1, cache_dir=None)
        parallel = run_analysis([root], jobs=2, cache_dir=None)
        assert [v.as_dict() for v in serial.violations] == [
            v.as_dict() for v in parallel.violations
        ]
        assert serial.violations  # fixture actually produces findings


# ---------------------------------------------------------------------------
# Baseline / --fail-on-new


class TestBaseline:
    def _violation(self, path, line, rule="RL013"):
        return Violation(
            rule_id=rule, message="m", path=str(path), line=line, column=1
        )

    def test_fingerprints_survive_line_drift(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nrandom.random()\n")
        old = baseline_fingerprints([self._violation(target, 2)])
        # Insert a line above: same content, new line number.
        target.write_text(
            "import os\nimport random\nrandom.random()\n"
        )
        new = baseline_fingerprints([self._violation(target, 3)])
        assert old == new

    def test_fingerprints_change_when_line_edited(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("random.random()\n")
        old = baseline_fingerprints([self._violation(target, 1)])
        target.write_text("random.random()  # changed\n")
        new = baseline_fingerprints([self._violation(target, 1)])
        assert old != new

    def test_duplicate_lines_get_distinct_fingerprints(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("random.random()\nrandom.random()\n")
        prints = baseline_fingerprints(
            [self._violation(target, 1), self._violation(target, 2)]
        )
        assert len(set(prints)) == 2

    def test_write_load_filter_roundtrip(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("a()\nb()\n")
        known = self._violation(target, 1)
        fresh = self._violation(target, 2)
        baseline_file = tmp_path / "baseline.json"
        assert write_baseline(baseline_file, [known]) == 1
        accepted = load_baseline(baseline_file)
        assert filter_new([known, fresh], accepted) == [fresh]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else", "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)


# ---------------------------------------------------------------------------
# Regions, SARIF and JSON output


class TestRegions:
    def test_violation_dict_has_end_positions(self):
        found = check_source(
            "import random\nrandom.random()\n",
            SEARCH_PATH,
            [get_rule("RL013")],
        )
        record = found[0].as_dict()
        assert record["line"] == 2
        assert record["column"] == 1
        assert record["end_line"] == 2
        # Exclusive end past "random.random" (the attribute node).
        assert record["end_col"] > record["column"]

    def test_columns_are_one_based(self):
        found = check_source(
            "def f():\n    return sum(xs)\n",
            SEARCH_PATH,
            [get_rule("RL013")],
        )
        assert found[0].column == 12  # "sum" starts at column 12, 1-based

    def test_region_normalises_unknown_ends(self):
        violation = Violation(
            rule_id="RL001", message="m", path="x.py", line=3, column=5
        )
        assert violation.region == (3, 5, 3, 5)


class TestSarif:
    def test_sarif_structure(self):
        found = check_source(
            "import random\nrandom.random()\n",
            SEARCH_PATH,
            [get_rule("RL013")],
        )
        log = to_sarif(found)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_meta = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rule_meta] == ["RL013"]
        result = run["results"][0]
        assert result["ruleId"] == "RL013"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] == 1
        assert region["endColumn"] > 1

    def test_empty_sarif_is_valid(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# CLI


class TestCliV2:
    def _tree(self, tmp_path):
        return write_tree(
            tmp_path,
            {
                "src/repro/search/mod.py": (
                    "import random\nrandom.random()\n"
                ),
            },
        )

    def test_sarif_format_to_output_file(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        out = tmp_path / "report.sarif"
        code = main(
            [
                str(root / "src"),
                "--format",
                "sarif",
                "--output",
                str(out),
                "--no-cache",
            ]
        )
        assert code == 1
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "RL013"

    def test_write_baseline_then_fail_on_new(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = [str(root / "src"), "--baseline", str(baseline), "--no-cache"]
        assert main([*args, "--write-baseline"]) == 0
        # Accepted debt: clean under --fail-on-new.
        assert main([*args, "--fail-on-new"]) == 0
        # A new finding still fails.
        (root / "src/repro/search/extra.py").write_text(
            "import random\nrandom.shuffle(x)\n"
        )
        assert main([*args, "--fail-on-new"]) == 1
        output = capsys.readouterr().out
        assert "extra.py" in output
        assert "mod.py" not in output  # baselined finding not re-shown

    def test_fail_on_new_with_empty_baseline_reports_all(
        self, tmp_path, capsys
    ):
        root = self._tree(tmp_path)
        baseline = tmp_path / "missing.json"
        code = main(
            [
                str(root / "src"),
                "--baseline",
                str(baseline),
                "--fail-on-new",
                "--no-cache",
            ]
        )
        assert code == 1

    def test_stats_flag_writes_stderr(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        main([str(root / "src"), "--no-cache", "--stats"])
        err = capsys.readouterr().err
        assert "files" in err and "cached" in err

    def test_jobs_flag_parallel_run(self, tmp_path):
        root = self._tree(tmp_path)
        (root / "src/repro/search/other.py").write_text("x = 1\n")
        code = main([str(root / "src"), "--no-cache", "--jobs", "2"])
        assert code == 1
