"""Tests for the LSB-forest (Z-order) index."""

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.index.linear_scan import knn_linear_scan
from repro.index.lsb import LSBForest, interleave_bits
from repro.search.stream_index import StreamSearchIndex


class TestInterleaveBits:
    def test_known_pattern(self):
        # Two dims, 2 bits, coords (x=0b11, y=0b01).  Positions:
        # x bit0 -> 1, x bit1 -> 3; y bit0 -> 0, y bit1 -> 2.
        # x contributes 0b1010, y contributes 0b0001 -> 0b1011.
        z = interleave_bits(np.array([[0b11, 0b01]]), bits_per_dim=2)
        assert z[0] == 0b1011

    def test_zero(self):
        assert interleave_bits(np.zeros((3, 4), dtype=int), 4).tolist() == [
            0, 0, 0,
        ]

    def test_order_preserved_on_shared_prefix(self):
        """Points equal in high bits but differing in low bits have
        closer Z-values than points differing in high bits."""
        near = interleave_bits(np.array([[0b1000, 0b1000],
                                         [0b1001, 0b1000]]), 4)
        far = interleave_bits(np.array([[0b1000, 0b1000],
                                        [0b0000, 0b1000]]), 4)
        assert abs(near[1] - near[0]) < abs(far[1] - far[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave_bits(np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            interleave_bits(np.array([[4]]), 2)  # out of range
        with pytest.raises(ValueError):
            interleave_bits(np.zeros((1, 32), dtype=int), 2)  # > 62 bits


@pytest.fixture(scope="module")
def data():
    return gaussian_mixture(1200, 16, n_clusters=10, seed=121)


@pytest.fixture(scope="module")
def forest(data):
    return LSBForest(data, n_trees=4, n_components=6, bits_per_dim=6, seed=0)


class TestLSBForest:
    def test_validation(self, data):
        with pytest.raises(ValueError):
            LSBForest(data, n_trees=0)
        with pytest.raises(ValueError):
            LSBForest(data, n_components=16, bits_per_dim=8)  # 128 > 62
        with pytest.raises(ValueError):
            LSBForest(np.zeros(5))

    def test_stream_covers_all_items_once(self, forest, data):
        found = np.concatenate(list(forest.candidate_stream(data[0])))
        assert sorted(found.tolist()) == list(range(len(data)))
        assert len(found) == len(data)

    def test_early_candidates_are_near(self, forest, data):
        query = data[5]
        first = []
        for ids in forest.candidate_stream(query):
            first.extend(ids.tolist())
            if len(first) >= 40:
                break
        near = np.linalg.norm(data[first] - query, axis=1).mean()
        overall = np.linalg.norm(data - query, axis=1).mean()
        assert near < overall

    def test_full_budget_exact(self, forest, data):
        index = StreamSearchIndex(forest, data)
        query = data[9]
        result = index.search(query, k=10, n_candidates=len(data))
        truth, _ = knn_linear_scan(query[None, :], data, 10)
        assert np.array_equal(np.sort(result.ids), np.sort(truth[0]))

    def test_reasonable_recall_at_budget(self, data):
        forest = LSBForest(
            data, n_trees=6, n_components=6, bits_per_dim=6, seed=0
        )
        index = StreamSearchIndex(forest, data)
        truth, _ = knn_linear_scan(data[:15], data, 10)
        hits = 0
        for qi in range(15):
            result = index.search(data[qi], k=10, n_candidates=200)
            hits += len(np.intersect1d(result.ids, truth[qi]))
        assert hits / 150 > 0.4

    def test_more_trees_help(self, data):
        truth, _ = knn_linear_scan(data[:15], data, 10)

        def recall(n_trees):
            forest = LSBForest(
                data, n_trees=n_trees, n_components=6, bits_per_dim=6, seed=0
            )
            index = StreamSearchIndex(forest, data)
            hits = 0
            for qi in range(15):
                result = index.search(data[qi], k=10, n_candidates=150)
                hits += len(np.intersect1d(result.ids, truth[qi]))
            return hits / 150

        assert recall(6) >= recall(1) - 0.05
