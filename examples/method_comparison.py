"""Grand tour: every hasher x every querying method on one dataset.

Shows the package's full surface — four L2H algorithms (ITQ, PCAH, SH,
KMH), LSH, the OPQ+IMI vector-quantization pipeline, and five querying
methods — on a single workload, reporting recall at a fixed candidate
budget.  Reproduces the paper's generality claim (Section 6.4) in one
table.

Run:  python examples/method_comparison.py
"""

import numpy as np

from repro import (
    GQR,
    ITQ,
    AnchorGraphHashing,
    GenerateHammingRanking,
    HammingRanking,
    HashIndex,
    IMISearchIndex,
    KMeansHashing,
    MultiProbeLSH,
    OptimizedProductQuantizer,
    PCAHashing,
    QDRanking,
    RandomProjectionLSH,
    SemiSupervisedHashing,
    SpectralHashing,
)
from repro.data import gaussian_mixture, ground_truth_knn, sample_queries
from repro.eval import compare_methods, format_table
from repro.hashing import pairs_from_neighbors

K = 20
BUDGET = 300


def mean_recall(index, queries, truth):
    hits = 0
    for query, truth_row in zip(queries, truth):
        result = index.search(query, k=K, n_candidates=BUDGET)
        hits += len(np.intersect1d(result.ids, truth_row))
    return hits / (K * len(queries))


def main() -> None:
    data = gaussian_mixture(8_000, 48, n_clusters=32,
                            cluster_spread=1.0, seed=5)
    queries = sample_queries(data, 60, perturbation=0.1, seed=6)
    truth = ground_truth_knn(queries, data, K)
    m = 10  # log2(8000 / 10) ≈ 9.6

    print(f"dataset: {data.shape}, m = {m}, k = {K}, budget = {BUDGET}\n")

    similar, dissimilar = pairs_from_neighbors(data, seed=7)
    hashers = {
        "ITQ": ITQ(code_length=m, seed=0),
        "PCAH": PCAHashing(code_length=m),
        "SH": SpectralHashing(code_length=m),
        "SSH": SemiSupervisedHashing(
            code_length=m, similar_pairs=similar, dissimilar_pairs=dissimilar
        ),
        "AGH": AnchorGraphHashing(code_length=m, n_anchors=4 * m, seed=0),
        "KMH": KMeansHashing(code_length=8, bits_per_subspace=4, seed=0),
        "LSH": RandomProjectionLSH(code_length=m, seed=0),
    }
    probers = {
        "HR": HammingRanking,
        "GHR": GenerateHammingRanking,
        "QR": QDRanking,
        "GQR": GQR,
        "MP-LSH": MultiProbeLSH,
    }

    rows = []
    for hasher_name, hasher in hashers.items():
        hasher.fit(data)
        row = [hasher_name]
        for prober_factory in probers.values():
            index = HashIndex(hasher, data, prober=prober_factory())
            row.append(f"{mean_recall(index, queries, truth):.3f}")
        rows.append(row)

    # The VQ comparator has its own querying method (IMI).
    opq = OptimizedProductQuantizer(
        n_subspaces=2, n_centroids=28, n_iterations=4, seed=0
    ).fit(data)
    rows.append(
        ["OPQ"] + ["-"] * 3
        + [f"{mean_recall(IMISearchIndex(opq, data), queries, truth):.3f}"]
        + ["-"]
    )

    print(format_table(
        ["hasher \\ prober"] + list(probers), rows,
    ))
    print("\n(OPQ row: recall under its native IMI probing, shown in the "
          "GQR column for comparison.)")
    print("Read down the GQR column: every L2H algorithm improves over "
          "its HR/GHR columns — the paper's generality claim.")

    # Is the headline gap statistically solid?  Paired bootstrap on the
    # best hasher (ITQ) with GQR vs GHR over the same queries:
    itq = hashers["ITQ"]
    comparison = compare_methods(
        {
            "ITQ+GQR": HashIndex(itq, data, prober=GQR()),
            "ITQ+GHR": HashIndex(itq, data, prober=GenerateHammingRanking()),
        },
        queries, truth, K, BUDGET,
    )
    print("\nsignificance of the ITQ GQR-vs-GHR gap:")
    print(comparison.to_table())


if __name__ == "__main__":
    main()
