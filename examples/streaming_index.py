"""Streaming ingestion: a mutable index under insert/expire churn.

Production similarity-search services (recommendation feeds, log
de-duplication) never rebuild from scratch: items arrive and expire
continuously.  This example drives a
:class:`~repro.search.dynamic_index.DynamicHashIndex` through a sliding
window workload — train the hash functions once on a historical sample,
then stream batches in, expire the oldest, and query throughout —
checking recall against exact search over the live window at each step.

Run:  python examples/streaming_index.py
"""

from collections import deque

import numpy as np

from repro import GQR, ITQ, DynamicHashIndex
from repro.data import gaussian_mixture
from repro.index import knn_linear_scan

WINDOW = 4_000
BATCH = 500
K = 10


def main() -> None:
    # One long stream of clustered 32-d events.
    stream = gaussian_mixture(20_000, 32, n_clusters=40,
                              cluster_spread=1.0, seed=3)

    # Hash functions are trained once, on a historical sample — the
    # standard L2H deployment pattern (retraining would invalidate all
    # stored codes).
    hasher = ITQ(code_length=9, seed=0).fit(stream[:WINDOW])
    index = DynamicHashIndex(hasher, dim=32, prober=GQR())

    window: deque[tuple[int, np.ndarray]] = deque()  # (id, vector)
    cursor = 0
    recalls = []

    for step in range(24):
        # Ingest a batch.
        batch = stream[cursor : cursor + BATCH]
        cursor += BATCH
        for item_id, row in zip(index.add(batch), batch):
            window.append((int(item_id), row))
        # Expire beyond the window.
        while len(window) > WINDOW:
            old_id, _ = window.popleft()
            index.remove(old_id)

        # Query the live window and compare with exact search over it.
        query = batch[0] + 0.05 * np.random.default_rng(step).standard_normal(32)
        result = index.search(query, k=K, n_candidates=400)
        live_rows = np.asarray([row for _, row in window])
        live_ids = np.asarray([item_id for item_id, _ in window])
        truth_local, _ = knn_linear_scan(query[np.newaxis, :], live_rows, K)
        truth_ids = live_ids[truth_local[0]]
        recall = len(np.intersect1d(result.ids, truth_ids)) / K
        recalls.append(recall)
        if step % 6 == 5:
            print(
                f"step {step:2d}: live items {index.num_items}, "
                f"recall@{K} = {recall:.0%}"
            )

    print(f"\nmean recall across the stream: {np.mean(recalls):.1%} "
          f"(no rebuilds, {cursor} items ingested, "
          f"{cursor - index.num_items} expired)")


if __name__ == "__main__":
    main()
