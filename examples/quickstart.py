"""Quickstart: index a dataset with ITQ + GQR and run a kNN query.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GQR, ITQ, HashIndex
from repro.data import gaussian_mixture, sample_queries
from repro.index import knn_linear_scan


def main() -> None:
    # 1. A dataset: 10,000 synthetic 64-d descriptors in 30 clusters.
    data = gaussian_mixture(
        10_000, 64, n_clusters=30, cluster_spread=1.0, seed=0
    )
    queries = sample_queries(data, 5, seed=1)

    # 2. Build the index: learn 10-bit ITQ codes (the paper's rule
    #    m = log2(N/10)), hash every item into a bucket table, and use
    #    generate-to-probe QD ranking as the querying method.
    index = HashIndex(ITQ(code_length=10, seed=0), data, prober=GQR())
    print(f"indexed {index.num_items} items into "
          f"{index.tables[0].num_buckets} buckets "
          f"({index.tables[0].expected_population():.1f} items/bucket)")

    # 3. Query: probe the best buckets until 500 candidates are found,
    #    then re-rank them exactly and keep the top 10.
    for i, query in enumerate(queries):
        result = index.search(query, k=10, n_candidates=500)
        truth, _ = knn_linear_scan(query[np.newaxis, :], data, 10)
        recall = len(np.intersect1d(result.ids, truth[0])) / 10
        print(
            f"query {i}: probed {result.n_buckets_probed} buckets, "
            f"evaluated {result.n_candidates} items "
            f"({result.n_candidates / len(data):.1%} of data), "
            f"recall@10 = {recall:.0%}"
        )

    # 4. Bonus: the Theorem 2 early stop returns *exact* neighbours
    #    without scanning everything.  It shines when the neighbour is
    #    close — e.g. looking up a near-copy of an indexed item.
    near_copy = data[42] + 0.01 * np.random.default_rng(2).standard_normal(64)
    result = index.search_early_stop(near_copy, k=1)
    assert result.ids[0] == 42
    print(
        f"early stop: found the exact nearest neighbour of a near-copy "
        f"after evaluating only {result.n_candidates} items "
        f"({result.n_candidates / len(data):.1%} of the data)"
    )


if __name__ == "__main__":
    main()
