"""Operations walkthrough: tune, persist, reload, measure tails.

The lifecycle a deployment actually runs: auto-tune the code length and
the candidate budget on a validation sample, save the trained index to
disk, reload it in a "serving process", and report per-query latency
percentiles plus a probe trace for one query.

Run:  python examples/operations.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import GQR, ITQ, HashIndex, load_index, save_index
from repro.data import gaussian_mixture, ground_truth_knn, sample_queries
from repro.eval import format_table, latency_summary, measure_latencies
from repro.eval.trace import trace_query
from repro.eval.tuning import tune_candidate_budget, tune_code_length


def main() -> None:
    data = gaussian_mixture(12_000, 32, n_clusters=48,
                            cluster_spread=1.0, seed=4)
    validation = sample_queries(data, 30, seed=5)
    truth = ground_truth_knn(validation, data, 10)

    # 1. Tune the code length around the paper's rule.
    print("tuning code length ...")
    length_result = tune_code_length(
        lambda m: ITQ(code_length=m, seed=0),
        data, validation, truth, target_recall=0.9,
    )
    per_length = {m: f"{s:.3f}s" for m, s in length_result.per_length.items()}
    print(f"  time-to-90% per m: {per_length} -> m = "
          f"{length_result.code_length}")

    # 2. Build the index and tune the candidate budget for recall 0.95.
    index = HashIndex(
        ITQ(code_length=length_result.code_length, seed=0), data, prober=GQR()
    )
    budget_result = tune_candidate_budget(
        index, validation, truth, target_recall=0.95
    )
    print(f"  budget for 95% recall: {budget_result.budget} candidates "
          f"({budget_result.recall:.1%} on validation, "
          f"{budget_result.evaluations} probes)")

    # 3. Persist and reload (e.g. into a serving replica).
    with tempfile.TemporaryDirectory() as tmp:
        path = save_index(index, Path(tmp) / "prod_index")
        size_mb = path.stat().st_size / 1e6
        serving = load_index(path)
        print(f"  saved {size_mb:.1f} MB -> reloaded "
              f"{serving.num_items} items, m={serving.code_length}")

    # 4. Serving-side latency percentiles at the tuned budget.
    live_queries = sample_queries(data, 100, seed=6)
    latencies = measure_latencies(
        serving, live_queries, k=10, n_candidates=budget_result.budget
    )
    summary = latency_summary(latencies)
    print(format_table(
        ["mean ms", "p50", "p95", "p99", "worst"], [summary.row()]
    ))

    # 5. Explain one query: which buckets were probed, with what QD?
    trace = trace_query(serving, validation[0], truth[0])
    print("\nprobe trace of one query:")
    print(trace.to_table(max_rows=6))

    # Sanity: the reloaded index still returns correct neighbours.
    result = serving.search(validation[0], 10, budget_result.budget)
    overlap = len(np.intersect1d(result.ids, truth[0]))
    print(f"\nreloaded-index recall on the traced query: {overlap}/10")


if __name__ == "__main__":
    main()
