"""Distributed GQR: scatter-gather search over sharded workers.

The paper's conclusion plans a distributed GQR on data-parallel systems
(LoSHa, Husky).  This example runs the simulated cluster: the dataset is
sharded, hash functions are broadcast, each worker probes its own
buckets with GQR, and the coordinator merges partial top-k lists.  With
k-means ("locality") sharding, queries can be routed to just the
nearest shards, cutting network traffic at a small recall cost.

Run:  python examples/distributed_search.py
"""

import numpy as np

from repro import ITQ, NetworkModel
from repro.data import gaussian_mixture, ground_truth_knn, sample_queries
from repro.distributed import DistributedHashIndex
from repro.eval import format_table

K = 10


def recall_and_makespan(index, queries, truth, budget, fanout=None):
    hits = 0
    makespans = []
    for query, truth_row in zip(queries, truth):
        result = index.search(query, k=K, n_candidates=budget, fanout=fanout)
        hits += len(np.intersect1d(result.ids, truth_row))
        makespans.append(result.extras["makespan_seconds"])
    return hits / (K * len(queries)), float(np.mean(makespans))


def main() -> None:
    data = gaussian_mixture(30_000, 32, n_clusters=60,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, 40, perturbation=0.1, seed=1)
    truth = ground_truth_knn(queries, data, K)
    hasher = ITQ(code_length=11, seed=0).fit(data)
    network = NetworkModel(latency_seconds=0.5e-3)
    budget = 1200

    # Scaling: more workers shrink per-worker shards and the makespan.
    rows = []
    for workers in (1, 2, 4, 8):
        index = DistributedHashIndex(
            hasher, data, num_workers=workers, seed=0, network=network
        )
        recall, makespan = recall_and_makespan(index, queries, truth, budget)
        rows.append([workers, f"{recall:.3f}", f"{1000 * makespan:.2f}ms"])
    print("random sharding, full fan-out:")
    print(format_table(["workers", f"recall@{K}", "est. makespan"], rows))

    # Locality sharding with partial fan-out: fewer workers contacted.
    index = DistributedHashIndex(
        hasher, data, num_workers=8, partitioning="cluster", seed=0,
        network=network,
    )
    rows = []
    for fanout in (8, 4, 2, 1):
        recall, makespan = recall_and_makespan(
            index, queries, truth, budget, fanout=fanout
        )
        rows.append([fanout, f"{recall:.3f}", f"{1000 * makespan:.2f}ms"])
    print("\nk-means sharding, 8 workers, routed fan-out:")
    print(format_table(["fan-out", f"recall@{K}", "est. makespan"], rows))
    print(
        "\nWith locality shards, routing concentrates the shared candidate"
        "\nbudget on the shards that actually hold the neighbours: moderate"
        "\nfan-out beats contacting everyone (which wastes budget on"
        "\nirrelevant shards), while fan-out 1 starts missing neighbours"
        "\nthat fall across shard boundaries — the trade a LoSHa-style"
        "\ndeployment would tune."
    )


if __name__ == "__main__":
    main()
