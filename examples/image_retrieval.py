"""Similar-image retrieval: the paper's motivating workload.

A CIFAR-like corpus of image descriptors is indexed once; interactive
queries must return visually similar images within a tight time budget,
so only a few buckets can be probed — exactly the regime where the
querying method decides quality.  We compare Hamming ranking, hash
lookup (GHR), and GQR on the same ITQ codes at several budgets.

Run:  python examples/image_retrieval.py
"""

import time

import numpy as np

from repro import GQR, ITQ, GenerateHammingRanking, HammingRanking, HashIndex
from repro.data import gaussian_mixture, ground_truth_knn, sample_queries
from repro.eval import format_table

K = 20


def main() -> None:
    # Stand-in for CIFAR60K GIST descriptors (see DESIGN.md for the
    # substitution rationale): 6,000 64-d clustered vectors.
    print("building corpus and ground truth ...")
    corpus = gaussian_mixture(
        6_000, 64, n_clusters=24, cluster_spread=1.0, seed=7
    )
    queries = sample_queries(corpus, 100, perturbation=0.1, seed=8)
    truth = ground_truth_knn(queries, corpus, K)

    print("learning 9-bit ITQ codes ...")
    hasher = ITQ(code_length=9, seed=0).fit(corpus)

    probers = {
        "Hamming ranking": HammingRanking(),
        "hash lookup (GHR)": GenerateHammingRanking(),
        "QD ranking (GQR)": GQR(),
    }

    rows = []
    for label, prober in probers.items():
        index = HashIndex(hasher, corpus, prober=prober)
        for budget in (100, 300, 1000):
            start = time.perf_counter()
            hits = 0
            for query, truth_row in zip(queries, truth):
                result = index.search(query, k=K, n_candidates=budget)
                hits += len(np.intersect1d(result.ids, truth_row))
            elapsed = time.perf_counter() - start
            rows.append(
                [label, budget, f"{hits / (K * len(queries)):.1%}",
                 f"{1000 * elapsed / len(queries):.2f}ms"]
            )

    print()
    print(format_table(
        ["querying method", "candidate budget", "recall@20", "per query"],
        rows,
    ))
    print("\nAt small budgets, GQR's fine-grained bucket ordering finds "
          "more of the true neighbours for the same work — the paper's "
          "headline result, reproduced on your laptop.")


if __name__ == "__main__":
    main()
