"""Near-duplicate detection with exact early stopping.

De-duplication (one of the paper's motivating applications) asks, for
each new record, whether an item within distance ``t`` already exists.
QD's Theorem 2 lower bound makes this exact *and* cheap: probing stops
as soon as every unprobed bucket's scaled QD exceeds the duplicate
radius — no full scan, no false negatives.

Run:  python examples/deduplication.py
"""

import numpy as np

from repro import GQR, ITQ, HashIndex, theorem2_mu
from repro.data import gaussian_mixture
from repro.index import euclidean_distances


def find_duplicates(index, hasher, query, radius):
    """All items within ``radius`` of ``query`` — exactly, via the bound.

    Probes buckets in ascending QD and stops when µ·QD > radius; by
    Theorem 2 no remaining bucket can hold an item inside the radius.
    """
    mu = theorem2_mu(hasher.hashing_matrix)
    signature, costs = hasher.probe_info(query)
    table = index.tables[0]
    duplicates = []
    evaluated = 0
    for bucket, qd in index.prober.probe_scored(table, signature, costs):
        if mu * qd > radius:
            break
        ids = table.get(bucket)
        if not len(ids):
            continue
        evaluated += len(ids)
        dists = euclidean_distances(query[np.newaxis, :], index.data[ids])[0]
        duplicates.extend(int(i) for i, d in zip(ids, dists) if d <= radius)
    return sorted(duplicates), evaluated


def main() -> None:
    rng = np.random.default_rng(3)
    corpus = gaussian_mixture(20_000, 48, n_clusters=60,
                              cluster_spread=0.4, seed=2)

    # Plant near-duplicates: 50 corpus rows copied with tiny noise.
    originals = rng.choice(len(corpus), 50, replace=False)
    near_dupes = corpus[originals] + 0.01 * rng.standard_normal((50, 48))

    hasher = ITQ(code_length=11, seed=0).fit(corpus)
    index = HashIndex(hasher, corpus, prober=GQR())

    radius = 0.2
    found = 0
    total_evaluated = 0
    for original, candidate in zip(originals, near_dupes):
        dupes, evaluated = find_duplicates(index, hasher, candidate, radius)
        total_evaluated += evaluated
        if int(original) in dupes:
            found += 1

    # Verify exactness on a fresh record that has no duplicate.
    fresh = rng.standard_normal(48) * 10
    dupes, _ = find_duplicates(index, hasher, fresh, radius)
    assert not dupes, "a far-away record must have no duplicates"

    print(f"planted duplicates recovered: {found}/50 (exact, by Theorem 2)")
    print(f"mean items evaluated per check: "
          f"{total_evaluated / 50:.0f} of {len(corpus)} "
          f"({total_evaluated / 50 / len(corpus):.2%})")
    print("a non-duplicate record correctly returned no matches")


if __name__ == "__main__":
    main()
