"""Reproduce the paper's key exhibits on a laptop in a couple of minutes.

Drives the :mod:`repro.experiments` runner at reduced scale to print
Table 1, the Figure 7 comparison (with ASCII recall-time plots), the
Figure 9 time-at-recall table, and the Figure 17 / Table 2 OPQ story —
the end-to-end narrative of the paper in one script.

Run:  python examples/reproduce_paper.py [scale]
"""

import sys
import time

from repro.experiments import ExperimentContext, run_experiment


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.35
    context = ExperimentContext(scale=scale, k=20)
    exhibits = [
        ("table1", "Table 1 — datasets and exact-search cost"),
        ("fig07", "Figure 7 — GQR vs GHR vs HR (ITQ)"),
        ("fig09", "Figure 9 — seconds to reach typical recalls"),
        ("fig17", "Figure 17 — PCAH+GQR vs OPQ+IMI"),
        ("table2", "Table 2 — training cost, OPQ vs PCAH"),
    ]
    total_start = time.perf_counter()
    for name, title in exhibits:
        start = time.perf_counter()
        report = run_experiment(name, context=context)
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 72}\n{title}   (regenerated in {elapsed:.1f}s)\n{'=' * 72}")
        print(report)
    print(f"\nall exhibits regenerated in "
          f"{time.perf_counter() - total_start:.1f}s at scale {scale}")


if __name__ == "__main__":
    main()
