"""Simulated distributed GQR (the paper's stated future work).

Shards the dataset across in-process workers, broadcasts the hash
functions, and answers queries by scatter-gather with a pluggable
network cost model — the architecture sketched in the paper's
conclusion for data-parallel systems (LoSHa, Husky).

The cluster is fault-tolerant: :mod:`repro.distributed.faults` injects
seeded, deterministic worker faults (crash / transient / straggler /
corrupt payload) behind a typed taxonomy, and the coordinator answers
through retries with backoff, hedged requests, per-worker circuit
breakers, replicated partitions and graceful degradation (partial
results with a ``coverage`` fraction instead of an exception).
"""

from repro.distributed.cluster import (
    BreakerPolicy,
    DistributedHashIndex,
    HealthTracker,
    NetworkModel,
    RetryPolicy,
)
from repro.distributed.faults import (
    FaultOutcome,
    FaultPlan,
    FaultyShardWorker,
    ShardCorruption,
    ShardCrash,
    ShardError,
    ShardTimeout,
    ShardTransientError,
    WorkerFaultSpec,
    corrupt_payload,
    payload_checksum,
    verify_payload,
)
from repro.distributed.partitioner import (
    cluster_partition,
    random_partition,
    replicated_assignment,
)
from repro.distributed.worker import ShardWorker

__all__ = [
    "BreakerPolicy",
    "DistributedHashIndex",
    "FaultOutcome",
    "FaultPlan",
    "FaultyShardWorker",
    "HealthTracker",
    "NetworkModel",
    "RetryPolicy",
    "ShardCorruption",
    "ShardCrash",
    "ShardError",
    "ShardTimeout",
    "ShardTransientError",
    "ShardWorker",
    "WorkerFaultSpec",
    "cluster_partition",
    "corrupt_payload",
    "payload_checksum",
    "random_partition",
    "replicated_assignment",
    "verify_payload",
]
