"""Simulated distributed GQR (the paper's stated future work).

Shards the dataset across in-process workers, broadcasts the hash
functions, and answers queries by scatter-gather with a pluggable
network cost model — the architecture sketched in the paper's
conclusion for data-parallel systems (LoSHa, Husky).
"""

from repro.distributed.cluster import DistributedHashIndex, NetworkModel
from repro.distributed.partitioner import cluster_partition, random_partition
from repro.distributed.worker import ShardWorker

__all__ = [
    "DistributedHashIndex",
    "NetworkModel",
    "ShardWorker",
    "cluster_partition",
    "random_partition",
]
