"""Deterministic fault injection for the simulated cluster.

A real deployment of the paper's distributed design (LoSHa/Husky
scatter-gather) meets crashed workers, transient RPC errors, stragglers
and corrupted payloads.  The simulator reproduces all four as a
*seeded, deterministic* :class:`FaultPlan`: given the same plan, every
chaos run injects exactly the same faults in exactly the same order, so
the coordinator's recovery behaviour — retries, hedges, breaker trips,
degraded merges — is bit-reproducible and testable.

Two layers:

* the **taxonomy** (:class:`ShardError` and subclasses) — every failure
  the distributed layer can observe is one of these, never a silently
  swallowed ``Exception`` (reprolint RL010 enforces this in
  ``repro/distributed``);
* the **injection** — :class:`WorkerFaultSpec` describes one worker's
  misbehaviour, :class:`FaultPlan` maps worker ids to specs, and
  :class:`FaultyShardWorker` wraps ``ShardWorker.search_local`` to act
  the specs out (raise, slow down, or corrupt the payload).

Corruption is modelled end-to-end: every honest partial result carries
a :func:`payload_checksum` over its ids and distances (attached by the
worker), the injector perturbs the payload *without* updating the
checksum, and the coordinator's :func:`verify_payload` turns the
mismatch into a :class:`ShardCorruption` — detection lives where it
would in a real system, on the receiving side.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.search.results import SearchResult

if TYPE_CHECKING:
    from repro.distributed.worker import ShardWorker

__all__ = [
    "FaultOutcome",
    "FaultPlan",
    "FaultyShardWorker",
    "ShardCorruption",
    "ShardCrash",
    "ShardError",
    "ShardTimeout",
    "ShardTransientError",
    "WorkerFaultSpec",
    "corrupt_payload",
    "payload_checksum",
    "verify_payload",
]

#: Fault kinds a :class:`WorkerFaultSpec` can produce, in the order the
#: chaos CLI reports them.
FAULT_KINDS = ("crash", "transient", "slow", "corrupt")


class ShardError(RuntimeError):
    """Base of the fault taxonomy: any classified shard-level failure.

    Every failure the coordinator handles is an instance of this type;
    ``worker_id`` names the shard replica that failed and ``kind`` is a
    short slug used as the telemetry label
    (``repro_shard_faults_total{worker, kind}``).
    """

    kind = "error"

    def __init__(self, worker_id: int, message: str) -> None:
        super().__init__(f"worker {worker_id}: {message}")
        self.worker_id = worker_id


class ShardCrash(ShardError):
    """The worker is gone (process death / machine loss); not retryable
    on the same worker, only on a replica."""

    kind = "crash"


class ShardTransientError(ShardError):
    """A retryable failure (dropped RPC, brief overload); the same
    worker may well answer the next attempt."""

    kind = "transient"


class ShardTimeout(ShardError):
    """The attempt's simulated duration exceeded the per-attempt
    timeout; raised by the coordinator, counted against the worker."""

    kind = "timeout"


class ShardCorruption(ShardError):
    """The partial result failed checksum verification; the payload is
    discarded and the attempt counted as failed."""

    kind = "corrupt"


def payload_checksum(ids: np.ndarray, distances: np.ndarray) -> int:
    """Checksum of a partial result's payload (ids + distances).

    Stable across runs and platforms: both arrays are normalised to
    fixed dtypes and little-endian byte order before hashing.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(np.ascontiguousarray(ids, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(distances, dtype="<f8").tobytes())
    return int.from_bytes(digest.digest(), "little")


def verify_payload(result: SearchResult, worker_id: int) -> SearchResult:
    """Validate a partial result's checksum; the receive-side check.

    Returns ``result`` unchanged when the checksum matches (or when the
    payload carries none — results built outside the distributed layer).
    Raises :class:`ShardCorruption` on mismatch.
    """
    expected = result.extras.get("checksum")
    if expected is None:
        return result
    actual = payload_checksum(result.ids, result.distances)
    if actual != expected:
        raise ShardCorruption(
            worker_id,
            f"payload checksum mismatch (got {actual:#x}, "
            f"expected {expected:#x})",
        )
    return result


def corrupt_payload(result: SearchResult, seed: int) -> SearchResult:
    """Deterministically damage a partial result, keeping its checksum.

    Models bit-rot / truncation in flight: distances are perturbed and
    the id order scrambled, while ``extras['checksum']`` still describes
    the honest payload — so :func:`verify_payload` rejects it.
    """
    rng = np.random.default_rng(seed)
    n = len(result.ids)
    if n == 0:
        # An empty payload cannot be detectably corrupted; flip the
        # checksum itself (a garbage header) instead.
        extras = dict(result.extras)
        extras["checksum"] = extras.get("checksum", 0) ^ 0xDEAD
        return SearchResult(
            result.ids,
            result.distances,
            result.n_candidates,
            result.n_buckets_probed,
            extras,
        )
    order = rng.permutation(n)
    distances = result.distances[order] + rng.uniform(0.0, 1.0, size=n)
    return SearchResult(
        result.ids[order],
        distances,
        result.n_candidates,
        result.n_buckets_probed,
        dict(result.extras),
    )


@dataclass(frozen=True)
class FaultOutcome:
    """What one attempt against one worker will do.

    ``kind`` is ``"ok"``, ``"crash"``, ``"transient"`` or ``"corrupt"``;
    ``slowdown_seconds`` is injected straggler latency added to the
    attempt's *simulated* duration (the coordinator classifies a large
    enough slowdown as ``"slow"`` — timeout / hedge trigger).
    """

    kind: str
    slowdown_seconds: float = 0.0


_OK = FaultOutcome("ok")


@dataclass(frozen=True)
class WorkerFaultSpec:
    """One worker's scripted misbehaviour.

    Attributes
    ----------
    crashed:
        Permanently down: every attempt raises :class:`ShardCrash`.
    transient_failures:
        The first this-many attempts raise :class:`ShardTransientError`;
        later attempts succeed (models a brief outage).
    corrupt_attempts:
        The first this-many *successful* attempts return a corrupted
        payload (detected by the coordinator's checksum).
    slowdown_seconds:
        Straggler latency added to every attempt's simulated duration.
    """

    crashed: bool = False
    transient_failures: int = 0
    corrupt_attempts: int = 0
    slowdown_seconds: float = 0.0

    def outcome(self, attempt: int) -> FaultOutcome:
        """The scripted outcome of the ``attempt``-th call (0-based).

        Pure function of ``(spec, attempt)`` — determinism falls out of
        statelessness.
        """
        if self.crashed:
            return FaultOutcome("crash", self.slowdown_seconds)
        if attempt < self.transient_failures:
            return FaultOutcome("transient", self.slowdown_seconds)
        if attempt < self.corrupt_attempts:
            return FaultOutcome("corrupt", self.slowdown_seconds)
        if self.slowdown_seconds > 0.0:
            return FaultOutcome("slow", self.slowdown_seconds)
        return _OK

    @property
    def is_clean(self) -> bool:
        return (
            not self.crashed
            and self.transient_failures == 0
            and self.corrupt_attempts == 0
            and self.slowdown_seconds == 0.0
        )


_CLEAN = WorkerFaultSpec()


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic per-worker fault script.

    Maps worker ids to :class:`WorkerFaultSpec`s; workers without an
    entry behave normally.  ``seed`` also derives the deterministic
    sub-seeds for payload corruption and retry-backoff jitter, so two
    runs of the same workload under the same plan are bit-identical.
    """

    specs: dict[int, WorkerFaultSpec] = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def none(cls, seed: int = 0) -> FaultPlan:
        """The fault-free plan (useful as an explicit baseline)."""
        return cls({}, seed=seed)

    @classmethod
    def crash(cls, *worker_ids: int, seed: int = 0) -> FaultPlan:
        """Permanently crash the given workers."""
        return cls(
            {w: WorkerFaultSpec(crashed=True) for w in worker_ids}, seed=seed
        )

    @classmethod
    def transient(
        cls, worker_id: int, failures: int = 1, seed: int = 0
    ) -> FaultPlan:
        """Fail ``worker_id``'s first ``failures`` attempts, then heal."""
        return cls(
            {worker_id: WorkerFaultSpec(transient_failures=failures)},
            seed=seed,
        )

    @classmethod
    def slow(
        cls, worker_id: int, slowdown_seconds: float, seed: int = 0
    ) -> FaultPlan:
        """Turn ``worker_id`` into a straggler."""
        return cls(
            {worker_id: WorkerFaultSpec(slowdown_seconds=slowdown_seconds)},
            seed=seed,
        )

    @classmethod
    def corrupt(
        cls, worker_id: int, attempts: int = 1, seed: int = 0
    ) -> FaultPlan:
        """Corrupt ``worker_id``'s first ``attempts`` payloads."""
        return cls(
            {worker_id: WorkerFaultSpec(corrupt_attempts=attempts)},
            seed=seed,
        )

    @classmethod
    def random(
        cls,
        num_workers: int,
        seed: int = 0,
        p_crash: float = 0.1,
        p_transient: float = 0.15,
        p_slow: float = 0.15,
        p_corrupt: float = 0.1,
        max_transient: int = 2,
        slowdown_range: tuple[float, float] = (5e-3, 100e-3),
    ) -> FaultPlan:
        """Draw a per-worker fault mix from seeded categorical draws.

        Each worker independently becomes crashed / transient / slow /
        corrupt / clean; the draw order is fixed (worker id ascending),
        so the same ``(num_workers, seed, probabilities)`` always builds
        the same plan.
        """
        if min(p_crash, p_transient, p_slow, p_corrupt) < 0:
            raise ValueError("fault probabilities must be non-negative")
        if p_crash + p_transient + p_slow + p_corrupt > 1.0 + 1e-12:
            raise ValueError("fault probabilities must sum to at most 1")
        rng = np.random.default_rng(seed)
        specs: dict[int, WorkerFaultSpec] = {}
        for worker in range(num_workers):
            draw = rng.random()
            slow_s = float(rng.uniform(*slowdown_range))
            transient_n = int(rng.integers(1, max_transient + 1))
            if draw < p_crash:
                specs[worker] = WorkerFaultSpec(crashed=True)
            elif draw < p_crash + p_transient:
                specs[worker] = WorkerFaultSpec(
                    transient_failures=transient_n
                )
            elif draw < p_crash + p_transient + p_slow:
                specs[worker] = WorkerFaultSpec(slowdown_seconds=slow_s)
            elif draw < p_crash + p_transient + p_slow + p_corrupt:
                specs[worker] = WorkerFaultSpec(corrupt_attempts=1)
        return cls(specs, seed=seed)

    def spec(self, worker_id: int) -> WorkerFaultSpec:
        """The worker's scripted spec (clean if the plan omits it)."""
        return self.specs.get(worker_id, _CLEAN)

    def faulty_workers(self) -> list[int]:
        """Ids of workers with a non-clean spec, ascending."""
        return sorted(w for w, s in self.specs.items() if not s.is_clean)

    def corruption_seed(self, worker_id: int, attempt: int) -> int:
        """Deterministic sub-seed for one attempt's payload corruption.

        Plain integer mixing (no ``hash()``, whose string salting varies
        per process) so the damage pattern is stable across runs.
        """
        return (
            self.seed * 1_000_003 + worker_id * 10_007 + attempt * 101
        ) & 0x7FFFFFFF

    def describe(self) -> str:
        """One-line human summary (used by the chaos CLI)."""
        if not self.faulty_workers():
            return "fault-free"
        parts = []
        for worker in self.faulty_workers():
            spec = self.spec(worker)
            if spec.crashed:
                parts.append(f"w{worker}:crash")
            elif spec.transient_failures:
                parts.append(f"w{worker}:transient×{spec.transient_failures}")
            elif spec.corrupt_attempts:
                parts.append(f"w{worker}:corrupt×{spec.corrupt_attempts}")
            else:
                parts.append(f"w{worker}:slow+{spec.slowdown_seconds * 1e3:.0f}ms")
        return " ".join(parts)


class FaultyShardWorker:
    """Wraps one ``ShardWorker`` with plan-driven fault injection.

    ``search_local`` either raises the scripted taxonomy error, or
    executes the real local search and (for corrupt attempts) damages
    the payload before returning it.  Injected straggler latency is
    attached as ``extras['simulated_slowdown_seconds']`` — the
    coordinator folds it into its simulated clock for timeout, hedge
    and deadline decisions, keeping those decisions independent of real
    wall time (and therefore deterministic).
    """

    def __init__(
        self, worker: ShardWorker, plan: FaultPlan
    ) -> None:
        self._worker = worker
        self._plan = plan
        self._spec = plan.spec(worker.worker_id)
        self._attempts = 0

    @property
    def worker_id(self) -> int:
        return self._worker.worker_id

    @property
    def worker(self) -> ShardWorker:
        """The wrapped, honest worker."""
        return self._worker

    @property
    def num_items(self) -> int:
        return self._worker.num_items

    def peek(self, attempt: int | None = None) -> FaultOutcome:
        """The outcome the next (or given) attempt will have.

        The coordinator uses this to price an attempt on the simulated
        clock *before* spending real compute on it (timeout and hedge
        decisions happen up front, like a request deadline would).
        """
        index = self._attempts if attempt is None else attempt
        return self._spec.outcome(index)

    def search_local(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        probe_info: tuple[int, np.ndarray] | None = None,
        attempt: int | None = None,
    ) -> SearchResult:
        """``ShardWorker.search_local`` with the scripted fault applied.

        ``attempt`` overrides the internal attempt counter (the
        coordinator passes its own per-query counters; standalone use
        just calls repeatedly).
        """
        if attempt is None:
            attempt = self._attempts
        self._attempts = attempt + 1
        outcome = self._spec.outcome(attempt)
        if outcome.kind == "crash":
            raise ShardCrash(self.worker_id, "worker crashed (injected)")
        if outcome.kind == "transient":
            raise ShardTransientError(
                self.worker_id,
                f"transient failure on attempt {attempt} (injected)",
            )
        result = self._worker.search_local(query, k, n_candidates, probe_info)
        if outcome.kind == "corrupt":
            result = corrupt_payload(
                result, self._plan.corruption_seed(self.worker_id, attempt)
            )
        if outcome.slowdown_seconds > 0.0:
            extras = dict(result.extras)
            extras["simulated_slowdown_seconds"] = outcome.slowdown_seconds
            result = SearchResult(
                result.ids,
                result.distances,
                result.n_candidates,
                result.n_buckets_probed,
                extras,
            )
        return result
