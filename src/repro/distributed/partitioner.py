"""Data partitioning strategies for the distributed index.

The paper's conclusion plans to extend GQR "to the distributed setting
on data-parallel systems such as LoSHa and Husky".  Those systems shard
the dataset across workers; two standard shardings are provided:

* **random** — uniform hash partitioning; every worker sees the full
  data distribution, so every query fans out to all workers.
* **cluster** — k-means sharding; shards are spatially coherent, which
  enables routing a query to only the few shards whose centroids are
  close (at some recall risk near shard boundaries).
"""

from __future__ import annotations

import numpy as np

from repro.quantization.kmeans import KMeans

__all__ = ["random_partition", "cluster_partition"]


def random_partition(
    n_items: int, num_workers: int, seed: int | None = None
) -> list[np.ndarray]:
    """Uniformly random shard assignment; returns per-worker id arrays."""
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    if n_items < num_workers:
        raise ValueError("need at least one item per worker")
    rng = np.random.default_rng(seed)
    assignment = rng.permutation(n_items) % num_workers
    order = np.argsort(assignment, kind="stable")
    ids = np.arange(n_items)[order]
    boundaries = np.searchsorted(assignment[order], np.arange(1, num_workers))
    return [shard for shard in np.split(ids, boundaries)]


def cluster_partition(
    data: np.ndarray, num_workers: int, seed: int | None = None
) -> tuple[list[np.ndarray], np.ndarray]:
    """K-means sharding; returns ``(per-worker id arrays, centroids)``.

    Empty shards are avoided by k-means's empty-cluster repair; shards
    are *not* balanced, which mirrors real locality-sharded systems.
    """
    data = np.asarray(data, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    if len(data) < num_workers:
        raise ValueError("need at least one item per worker")
    km = KMeans(num_workers, n_iterations=20, seed=seed).fit(data)
    labels = km.predict(data)
    shards = [
        np.flatnonzero(labels == worker) for worker in range(num_workers)
    ]
    return shards, km.centers
