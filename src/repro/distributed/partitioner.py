"""Data partitioning strategies for the distributed index.

The paper's conclusion plans to extend GQR "to the distributed setting
on data-parallel systems such as LoSHa and Husky".  Those systems shard
the dataset across workers; two standard shardings are provided:

* **random** — uniform hash partitioning; every worker sees the full
  data distribution, so every query fans out to all workers.
* **cluster** — k-means sharding; shards are spatially coherent, which
  enables routing a query to only the few shards whose centroids are
  close (at some recall risk near shard boundaries).

Either sharding can be **replicated**: :func:`replicated_assignment`
places ``replication_factor`` copies of every partition on distinct
worker ids, so a crashed worker loses at most one replica of any
partition and the items stay reachable — the precondition for the
coordinator's fault tolerance (retries, hedging, degradation).
"""

from __future__ import annotations

import numpy as np

from repro.quantization.kmeans import KMeans

__all__ = ["random_partition", "cluster_partition", "replicated_assignment"]


def random_partition(
    n_items: int, num_workers: int, seed: int | None = None
) -> list[np.ndarray]:
    """Uniformly random shard assignment; returns per-worker id arrays."""
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    if n_items < num_workers:
        raise ValueError("need at least one item per worker")
    rng = np.random.default_rng(seed)
    assignment = rng.permutation(n_items) % num_workers
    order = np.argsort(assignment, kind="stable")
    ids = np.arange(n_items)[order]
    boundaries = np.searchsorted(assignment[order], np.arange(1, num_workers))
    return [shard for shard in np.split(ids, boundaries)]


def cluster_partition(
    data: np.ndarray, num_workers: int, seed: int | None = None
) -> tuple[list[np.ndarray], np.ndarray]:
    """K-means sharding; returns ``(per-worker id arrays, centroids)``.

    Empty shards are avoided by k-means's empty-cluster repair; shards
    are *not* balanced, which mirrors real locality-sharded systems.
    """
    data = np.asarray(data, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    if len(data) < num_workers:
        raise ValueError("need at least one item per worker")
    km = KMeans(num_workers, n_iterations=20, seed=seed).fit(data)
    labels = km.predict(data)
    shards = [
        np.flatnonzero(labels == worker) for worker in range(num_workers)
    ]
    return shards, km.centers


def replicated_assignment(
    num_partitions: int, replication_factor: int
) -> list[list[int]]:
    """Worker ids serving each partition, primary first.

    Replica ``j`` of partition ``p`` lives on worker id
    ``p + j * num_partitions`` — a striped layout with two properties
    the coordinator relies on:

    * replicas of a partition never share a worker id, so one crashed
      worker removes at most one replica of any partition;
    * with ``replication_factor == 1`` the layout is exactly the
      unreplicated one (worker ids ``0 .. P-1``), so fault-free
      behaviour, worker ids in telemetry, and existing
      :class:`~repro.distributed.faults.FaultPlan`\\ s are unchanged.

    Returns a list of ``num_partitions`` lists, each of length
    ``replication_factor``.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be positive")
    if replication_factor < 1:
        raise ValueError("replication_factor must be positive")
    return [
        [p + j * num_partitions for j in range(replication_factor)]
        for p in range(num_partitions)
    ]
