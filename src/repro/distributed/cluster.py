"""Coordinator for the simulated distributed GQR index.

Scatter-gather query processing over :class:`ShardWorker` shards — the
architecture the paper's conclusion sketches for data-parallel systems:

1. the coordinator computes the query's code and flip costs once
   (hash functions are broadcast, so they are identical on every worker);
2. the query fans out to all partitions — or, with cluster sharding,
   only to the partitions whose centroids are nearest;
3. each partition returns its local top-k; the coordinator merges.

Workers run in-process; a :class:`NetworkModel` converts the measured
per-worker compute times and message sizes into an estimated
*makespan* (slowest worker + two network hops), which is what a real
deployment's latency would follow.

Fault tolerance
---------------
The coordinator survives the faults a
:class:`~repro.distributed.faults.FaultPlan` injects:

* **retries** — failed attempts (crash, transient, timeout, corrupt)
  are retried up to :attr:`RetryPolicy.max_attempts` times with
  exponential backoff plus seeded jitter, rotating through the
  partition's replicas;
* **timeouts & deadlines** — attempts and whole queries are bounded on
  a *simulated* clock (network hops + injected straggler latency +
  backoff, never measured wall time), so timeout/deadline decisions are
  deterministic per seed;
* **hedging** — when an attempt's injected latency crosses
  :attr:`RetryPolicy.hedge_threshold_seconds` and a replica is
  available, a hedged request races it in parallel and the faster
  branch wins;
* **circuit breaking** — a :class:`HealthTracker` opens a per-worker
  breaker after repeated failures, routes traffic to replicas during
  the cooldown, and closes it again after a successful half-open trial;
* **graceful degradation** — partitions that stay unreachable are
  dropped from the merge instead of failing the query: the result
  carries ``extras['coverage']`` (reachable fraction of the routed
  items) and ``extras['degraded']`` plus the classified
  ``extras['fault_events']``.

Replication (``replication_factor``) places full copies of every
partition on distinct worker ids (see
:func:`~repro.distributed.partitioner.replicated_assignment`), which is
what gives retries and hedges somewhere to go.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.gqr import GQR
from repro.core.prober import BucketProber
from repro.distributed.faults import (
    FaultPlan,
    FaultyShardWorker,
    ShardError,
    ShardTimeout,
    verify_payload,
)
from repro.distributed.partitioner import (
    cluster_partition,
    random_partition,
    replicated_assignment,
)
from repro.distributed.worker import ShardWorker
from repro.hashing.base import BinaryHasher
from repro.search.cache import (
    CacheKey,
    QueryResultCache,
    cache_token,
    query_fingerprint,
)
from repro.search.engine import ExactEvaluator
from repro.search.results import SearchResult
from repro.search.stages import RerankSpec

__all__ = [
    "BreakerPolicy",
    "DistributedHashIndex",
    "HealthTracker",
    "NetworkModel",
    "RetryPolicy",
]


@dataclass(frozen=True)
class NetworkModel:
    """Simple scatter-gather cost model.

    Fault-free::

        makespan = 2·latency + max(worker compute) + result_bytes / bandwidth

    — one hop to scatter (the query fits in one packet), parallel local
    work, one hop to gather the concatenated partial results.

    Under faults, per-partition completion accounts for retries and
    hedges (see :meth:`makespan`): a retried attempt's time is *serial*
    (the coordinator waits for the failure, backs off, then re-sends),
    while a hedged attempt runs in *parallel* with the original and the
    partition completes at the earlier of the two branches.
    """

    latency_seconds: float = 0.5e-3
    bandwidth_bytes_per_second: float = 1e9

    def makespan(
        self,
        worker_seconds: list[float],
        result_bytes: int,
        retry_seconds: list[float] | None = None,
        hedge_seconds: list[float | None] | None = None,
    ) -> float:
        """Estimated wall time of one scatter-gather query.

        Parameters
        ----------
        worker_seconds:
            Winning attempt's compute time per responding partition.
        retry_seconds:
            Serial overhead per partition that *preceded* the winning
            attempt: failed attempts' simulated durations, backoff
            waits, and the winner's own injected straggler latency.
            Defaults to all zeros (the fault-free case).
        hedge_seconds:
            Per partition, the simulated completion time of the
            *parallel* hedge branch that raced the serial chain, or
            ``None`` when no hedge was issued.

        Formula::

            T_i       = retry_i + worker_i              (serial chain)
            T_i       = min(T_i, hedge_i)               (hedge races it)
            makespan  = 2·latency + max_i T_i + result_bytes / bandwidth

        Retries extend a partition's completion time because they are
        sequential; a hedge can only shorten it because both branches
        run concurrently and the first response wins.
        """
        if not worker_seconds:
            return 2 * self.latency_seconds
        if retry_seconds is None:
            retry_seconds = [0.0] * len(worker_seconds)
        if hedge_seconds is None:
            hedge_seconds = [None] * len(worker_seconds)
        completions = []
        for compute, retry, hedge in zip(
            worker_seconds, retry_seconds, hedge_seconds
        ):
            serial = retry + compute
            completions.append(
                serial if hedge is None else min(serial, hedge)
            )
        return (
            2 * self.latency_seconds
            + max(completions)
            + result_bytes / self.bandwidth_bytes_per_second
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-partition retry / hedge / deadline policy.

    All durations are on the coordinator's *simulated* clock (network
    hops + injected slowdowns + backoff).  Measured compute time never
    feeds a control decision, which is what keeps chaos runs
    deterministic per seed.

    Attributes
    ----------
    max_attempts:
        Total attempts per partition per query (first try + retries),
        rotated across the partition's replicas.
    backoff_base_seconds / backoff_multiplier:
        Exponential backoff between attempts (simulated, never slept).
    jitter_fraction:
        Backoff jitter amplitude; drawn from a seeded RNG keyed by
        ``(plan seed, worker, attempt)`` so it is deterministic.
    attempt_timeout_seconds:
        An attempt whose injected straggler latency reaches this bound
        is classified :class:`~repro.distributed.faults.ShardTimeout`
        and retried; ``None`` disables timeouts.
    hedge_threshold_seconds:
        Injected latency at which a hedged request is sent to a replica
        (the two race; first response wins); ``None`` disables hedging.
    deadline_seconds:
        Default per-query deadline budget; a partition whose serial
        chain would exceed it stops retrying and degrades.  ``None``
        means no deadline.  ``DistributedHashIndex.search`` can
        override per query.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 1e-3
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.1
    attempt_timeout_seconds: float | None = 50e-3
    hedge_threshold_seconds: float | None = 20e-3
    deadline_seconds: float | None = None

    def backoff_seconds(self, retry: int, worker_id: int, seed: int) -> float:
        """Simulated wait before retry number ``retry`` (0-based)."""
        base = self.backoff_base_seconds * self.backoff_multiplier**retry
        if self.jitter_fraction <= 0.0:
            return base
        rng = np.random.default_rng([abs(seed), worker_id, retry])
        return base * (1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker tuning for the per-worker :class:`HealthTracker`.

    ``failure_threshold`` consecutive failures open a worker's breaker;
    while open, the router skips the worker for ``cooldown_queries``
    coordinator queries, after which one half-open trial is allowed —
    success closes the breaker, failure re-opens it.
    """

    failure_threshold: int = 3
    cooldown_queries: int = 8


class _WorkerHealth:
    __slots__ = ("consecutive_failures", "state", "opened_at_query")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"
        self.opened_at_query = -1


class HealthTracker:
    """Per-worker consecutive-failure tracking + circuit breaker.

    States follow the classic breaker automaton: ``closed`` (healthy,
    traffic flows) → ``open`` (skipped by the router) → ``half_open``
    (one trial request) → ``closed`` or back to ``open``.  State
    changes are mirrored to the ``repro_breaker_state`` gauge.
    """

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self._policy = policy if policy is not None else BreakerPolicy()
        self._health: dict[int, _WorkerHealth] = {}

    def _entry(self, worker_id: int) -> _WorkerHealth:
        entry = self._health.get(worker_id)
        if entry is None:
            entry = _WorkerHealth()
            self._health[worker_id] = entry
        return entry

    def usable(self, worker_id: int, query_no: int) -> bool:
        """Whether the router may send this worker traffic now."""
        entry = self._health.get(worker_id)
        if entry is None or entry.state == "closed":
            return True
        if entry.state == "open":
            elapsed = query_no - entry.opened_at_query
            if elapsed >= self._policy.cooldown_queries:
                entry.state = "half_open"
                obs.observe_breaker(worker_id, "half_open")
                return True
            return False
        return True  # half_open: the trial request is allowed

    def on_success(self, worker_id: int) -> None:
        entry = self._health.get(worker_id)
        if entry is None:
            return
        if entry.state != "closed" or entry.consecutive_failures:
            entry.consecutive_failures = 0
            if entry.state != "closed":
                entry.state = "closed"
                obs.observe_breaker(worker_id, "closed")

    def on_failure(self, worker_id: int, query_no: int) -> None:
        entry = self._entry(worker_id)
        entry.consecutive_failures += 1
        should_open = (
            entry.state == "half_open"
            or entry.consecutive_failures >= self._policy.failure_threshold
        )
        if should_open and entry.state != "open":
            entry.state = "open"
            entry.opened_at_query = query_no
            obs.observe_breaker(worker_id, "open")
        elif entry.state == "open":
            entry.opened_at_query = query_no

    def state(self, worker_id: int) -> str:
        entry = self._health.get(worker_id)
        return "closed" if entry is None else entry.state

    def states(self) -> dict[int, str]:
        """Non-closed workers and their breaker state."""
        return {
            worker: entry.state
            for worker, entry in sorted(self._health.items())
            if entry.state != "closed"
        }


class _PartitionOutcome:
    """One partition's fate within a query (coordinator-internal)."""

    __slots__ = (
        "partial",
        "retries",
        "hedges",
        "serial_seconds",
        "hedge_seconds",
        "events",
        "from_cache",
    )

    def __init__(self) -> None:
        self.partial: SearchResult | None = None
        self.retries = 0
        self.hedges = 0
        self.serial_seconds = 0.0
        self.hedge_seconds: float | None = None
        self.events: list[dict] = []
        self.from_cache = False


def _split_budget(n_candidates: int, n_targets: int) -> list[int]:
    """Per-partition candidate budgets summing to ``n_candidates``.

    The remainder of the division lands on the first
    ``n_candidates % n_targets`` partitions, so no budget is silently
    dropped (100 candidates over 8 workers probes all 100, not 96).
    Every partition gets at least 1.
    """
    base, remainder = divmod(n_candidates, n_targets)
    return [
        max(1, base + (1 if i < remainder else 0)) for i in range(n_targets)
    ]


class DistributedHashIndex:
    """Sharded L2H index with fault-tolerant scatter-gather kNN queries.

    Parameters
    ----------
    hasher:
        Fitted or unfitted hasher; fit on the full data if needed, then
        broadcast to every worker.
    data:
        The ``(n, d)`` dataset to shard.
    num_workers:
        Number of *partitions* (primary shards).  With replication the
        cluster holds ``num_workers * replication_factor`` workers.
    partitioning:
        ``"random"`` (every query fans out everywhere) or ``"cluster"``
        (k-means shards; queries can be routed to the nearest shards).
    prober_factory:
        Zero-arg callable building each worker's prober (default GQR).
    network:
        Cost model used to estimate query makespan.
    replication_factor:
        Full copies of each partition, on distinct worker ids (striped
        layout, primary first).  1 reproduces the unreplicated cluster
        exactly.
    fault_plan:
        Scripted faults to inject (default: none).
    retry_policy / breaker_policy:
        Coordinator hardening knobs; defaults retry 3×, time out 50 ms
        attempts, hedge 20 ms stragglers, trip breakers after 3
        consecutive failures.
    shard_cache:
        Optional :class:`~repro.search.cache.QueryResultCache` of
        per-partition sub-results.  A hit answers the partition from
        the coordinator without contacting any replica — it skips the
        retry/hedge chain entirely (and therefore does not advance a
        fault plan's scripted attempts), and contributes zero compute
        and zero serial overhead to the makespan.  The sharded data is
        immutable, so shard entries never go stale.
    """

    def __init__(
        self,
        hasher: BinaryHasher,
        data: np.ndarray,
        num_workers: int = 4,
        partitioning: str = "random",
        prober_factory: Callable[[], BucketProber] = GQR,
        metric: str = "euclidean",
        network: NetworkModel | None = None,
        seed: int | None = 0,
        replication_factor: int = 1,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        shard_cache: QueryResultCache | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if partitioning not in ("random", "cluster"):
            raise ValueError("partitioning must be 'random' or 'cluster'")
        if replication_factor < 1:
            raise ValueError("replication_factor must be positive")
        if not hasher.is_fitted:
            hasher.fit(data)
        self._hasher = hasher
        self._network = network if network is not None else NetworkModel()
        self._metric = metric
        self._centroids: np.ndarray | None = None
        self._plan = fault_plan if fault_plan is not None else FaultPlan.none()
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._health = HealthTracker(breaker_policy)
        self._query_no = 0
        self._shard_cache = shard_cache
        self._shard_cache_token = cache_token("cluster")

        if partitioning == "cluster":
            shards, centroids = cluster_partition(data, num_workers, seed)
            self._centroids = centroids
        else:
            shards = random_partition(len(data), num_workers, seed)
        assignment = replicated_assignment(len(shards), replication_factor)
        self._workers: list[ShardWorker] = []
        self._groups: list[list[FaultyShardWorker]] = []
        for shard, worker_ids in zip(shards, assignment):
            group = []
            for worker_id in worker_ids:
                worker = ShardWorker(
                    worker_id, shard, data, hasher, prober_factory(), metric
                )
                self._workers.append(worker)
                group.append(FaultyShardWorker(worker, self._plan))
            self._groups.append(group)
        self._workers.sort(key=lambda w: w.worker_id)
        self._partition_sizes = [len(shard) for shard in shards]
        self._n = len(data)
        # Retained for the optional post-merge rerank stage: the
        # coordinator re-scores the merged pool with exact distances —
        # through an engine evaluator, like every other scoring path.
        self._data = data
        self._rerank_evaluator = ExactEvaluator(data, metric)

    @property
    def num_items(self) -> int:
        return self._n

    @property
    def num_partitions(self) -> int:
        """Primary shard count (the fan-out width)."""
        return len(self._groups)

    @property
    def replication_factor(self) -> int:
        return len(self._groups[0])

    @property
    def num_workers(self) -> int:
        """Total workers in the cluster (partitions × replicas)."""
        return len(self._workers)

    @property
    def workers(self) -> list[ShardWorker]:
        return list(self._workers)

    @property
    def health(self) -> HealthTracker:
        """The coordinator's per-worker health / breaker tracker."""
        return self._health

    def breaker_states(self) -> dict[int, str]:
        """Workers whose breaker is currently not ``closed``."""
        return self._health.states()

    def shard_sizes(self) -> list[int]:
        """Primary partition sizes (sums to ``num_items``)."""
        return list(self._partition_sizes)

    def _route(self, query: np.ndarray, fanout: int | None) -> list[int]:
        if fanout is None or fanout >= len(self._groups):
            return list(range(len(self._groups)))
        if self._centroids is None:
            raise ValueError(
                "partial fanout requires partitioning='cluster' "
                "(random shards are indistinguishable)"
            )
        dists = np.linalg.norm(self._centroids - query, axis=1)
        return [int(i) for i in np.argsort(dists)[:fanout]]

    def _pick_replica(
        self,
        group: list[FaultyShardWorker],
        attempt: int,
        query_no: int,
        exclude: int | None = None,
    ) -> FaultyShardWorker | None:
        """Round-robin replica choice, skipping open breakers.

        Attempt ``a`` prefers replica ``a % r`` so retries rotate away
        from a replica that just failed (with ``r == 1`` every attempt
        goes back to the only worker, which is what heals transients).
        """
        for offset in range(len(group)):
            candidate = group[(attempt + offset) % len(group)]
            if candidate.worker_id == exclude:
                continue
            if self._health.usable(candidate.worker_id, query_no):
                return candidate
        return None

    def _shard_cache_key(
        self, partition: int, query: np.ndarray, k: int, budget: int
    ) -> CacheKey:
        """Key for one partition's sub-result.

        Reuses the :data:`~repro.search.cache.CacheKey` shape with a
        single synthetic ``("shard", …)`` stage entry carrying the
        partition index and sub-plan parameters; the generation is 0
        because the sharded data is immutable.  A coordinator-level
        rerank runs *post-merge* and does not appear here, so the same
        sub-results are shared between plain and reranked queries.
        """
        assert self._shard_cache is not None
        return (
            self._shard_cache_token,
            0,
            (("shard", partition, k, budget, self._metric),),
            (),
            query_fingerprint(query, self._shard_cache.decimals),
        )

    def _query_partition(
        self,
        partition: int,
        query: np.ndarray,
        k: int,
        budget: int,
        probe_info: tuple[int, np.ndarray],
        deadline: float | None,
        query_no: int,
    ) -> _PartitionOutcome:
        """Serial retry chain (with hedging) over one replica group."""
        group = self._groups[partition]
        policy = self._retry
        hop = 2 * self._network.latency_seconds
        outcome = _PartitionOutcome()
        attempts_of: dict[int, int] = {}

        cache = self._shard_cache
        key: CacheKey | None = None
        if cache is not None:
            key = self._shard_cache_key(partition, query, k, budget)
            cached = cache.lookup(key)
            if cached is not None:
                outcome.partial = cached
                outcome.from_cache = True
                return outcome

        for attempt in range(policy.max_attempts):
            worker = self._pick_replica(group, attempt, query_no)
            if worker is None:
                outcome.events.append(
                    {
                        "partition": partition,
                        "kind": "unavailable",
                        "detail": "all replicas breaker-open",
                    }
                )
                break
            worker_id = worker.worker_id
            worker_attempt = attempts_of.get(worker_id, 0)
            scripted = worker.peek(worker_attempt)
            slowdown = scripted.slowdown_seconds
            timeout = policy.attempt_timeout_seconds
            timed_out = timeout is not None and slowdown >= timeout
            cost = hop + (timeout if timed_out else slowdown)

            if (
                deadline is not None
                and outcome.serial_seconds + cost > deadline
            ):
                outcome.events.append(
                    {
                        "partition": partition,
                        "worker": worker_id,
                        "kind": "deadline",
                        "attempt": attempt,
                        "simulated_seconds": outcome.serial_seconds,
                    }
                )
                break

            # Hedge: a straggler below the timeout bound races a replica.
            if (
                not timed_out
                and policy.hedge_threshold_seconds is not None
                and scripted.kind in ("ok", "slow")
                and slowdown >= policy.hedge_threshold_seconds
            ):
                hedge = self._pick_replica(
                    group, attempt + 1, query_no, exclude=worker_id
                )
                if hedge is not None:
                    hedge_attempt = attempts_of.get(hedge.worker_id, 0)
                    hedge_scripted = hedge.peek(hedge_attempt)
                    hedge_cost = (
                        policy.hedge_threshold_seconds
                        + hop
                        + hedge_scripted.slowdown_seconds
                    )
                    outcome.hedges += 1
                    outcome.events.append(
                        {
                            "partition": partition,
                            "worker": worker_id,
                            "hedge_worker": hedge.worker_id,
                            "kind": "hedge",
                            "attempt": attempt,
                            "simulated_seconds": min(cost, hedge_cost),
                        }
                    )
                    if (
                        hedge_scripted.kind in ("ok", "slow")
                        and hedge_cost < cost
                    ):
                        # The hedge wins the race: its result is used;
                        # the straggler branch keeps running in parallel
                        # and only matters for the makespan min().
                        attempts_of[hedge.worker_id] = hedge_attempt + 1
                        try:
                            partial = hedge.search_local(
                                query,
                                k,
                                budget,
                                probe_info,
                                attempt=hedge_attempt,
                            )
                            partial = verify_payload(
                                partial, hedge.worker_id
                            )
                        except ShardError as err:
                            self._record_failure(
                                outcome, err, partition, attempt, query_no
                            )
                            outcome.serial_seconds += hedge_cost
                            continue
                        self._health.on_success(hedge.worker_id)
                        outcome.hedge_seconds = (
                            outcome.serial_seconds + cost - hop
                        )
                        outcome.serial_seconds += hedge_cost
                        outcome.partial = partial
                        if cache is not None and key is not None:
                            cache.store(key, partial)
                        return outcome
                    # The hedge lost; remember its parallel branch so
                    # the makespan can still take the min.
                    outcome.hedge_seconds = (
                        outcome.serial_seconds + hedge_cost - hop
                    )

            if timed_out:
                attempts_of[worker_id] = worker_attempt + 1
                error: ShardError = ShardTimeout(
                    worker_id,
                    f"attempt exceeded {timeout * 1e3:.1f}ms "
                    f"(injected slowdown {slowdown * 1e3:.1f}ms)",
                )
                self._record_failure(
                    outcome, error, partition, attempt, query_no
                )
                outcome.serial_seconds += cost + policy.backoff_seconds(
                    attempt, worker_id, self._plan.seed
                )
                continue

            attempts_of[worker_id] = worker_attempt + 1
            try:
                partial = worker.search_local(
                    query, k, budget, probe_info, attempt=worker_attempt
                )
                partial = verify_payload(partial, worker_id)
            except ShardError as err:
                self._record_failure(
                    outcome, err, partition, attempt, query_no
                )
                outcome.serial_seconds += cost + policy.backoff_seconds(
                    attempt, worker_id, self._plan.seed
                )
                continue
            self._health.on_success(worker_id)
            outcome.serial_seconds += cost
            outcome.partial = partial
            if cache is not None and key is not None:
                cache.store(key, partial)
            return outcome
        return outcome

    def _record_failure(
        self,
        outcome: _PartitionOutcome,
        error: ShardError,
        partition: int,
        attempt: int,
        query_no: int,
    ) -> None:
        self._health.on_failure(error.worker_id, query_no)
        obs.observe_fault(error.worker_id, error.kind)
        outcome.retries += 1
        outcome.events.append(
            {
                "partition": partition,
                "worker": error.worker_id,
                "kind": error.kind,
                "attempt": attempt,
                "message": str(error),
            }
        )

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        fanout: int | None = None,
        deadline_seconds: float | None = None,
        rerank: RerankSpec | None = None,
    ) -> SearchResult:
        """Fault-tolerant scatter-gather kNN.

        ``n_candidates`` is the *total* candidate budget, split across
        the contacted partitions (remainder spread over the first
        partitions so the full budget is spent).  ``fanout`` (cluster
        sharding only) contacts just the nearest shards, trading recall
        for network traffic and tail latency.  ``deadline_seconds``
        overrides the policy's per-query deadline budget, checked
        against the simulated clock.

        ``rerank`` (exact mode only) re-scores the *merged* pool on the
        coordinator: each partition still returns its local top-``k``
        under its own sub-plan — so per-shard cache entries are shared
        with plain queries — and the union of survivors is re-ranked
        with exact distances before the final cut.  ``rerank.pool``
        caps how many merged survivors are re-scored.

        Never raises on worker failure: partitions that stay
        unreachable after retries, hedges and replica failover are
        dropped from the merge, and the result reports
        ``extras['coverage']`` (< 1.0) with ``extras['degraded']``.
        """
        if rerank is not None and rerank.mode != "exact":
            raise ValueError(
                "the distributed coordinator supports exact rerank only "
                f"(workers do not ship fine codes); got {rerank.mode!r}"
            )
        query = np.asarray(query, dtype=np.float64)
        query_no = self._query_no
        self._query_no += 1
        deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else self._retry.deadline_seconds
        )
        sampled = obs.should_sample()
        with obs.span("distributed_query") as root:
            with obs.span("fanout") as fanout_span:
                probe_info = self._hasher.probe_info(query)
                targets = self._route(query, fanout)
                budgets = _split_budget(n_candidates, len(targets))
                outcomes = [
                    self._query_partition(
                        partition,
                        query,
                        k,
                        budget,
                        probe_info,
                        deadline,
                        query_no,
                    )
                    for partition, budget in zip(targets, budgets)
                ]
            with obs.span("merge") as merge_span:
                partials = [
                    o.partial for o in outcomes if o.partial is not None
                ]
                merged: list[tuple[float, int]] = []
                for partial in partials:
                    merged.extend(
                        (float(d), int(i))
                        for d, i in zip(partial.distances, partial.ids)
                    )
                merged.sort()
                if rerank is None:
                    del merged[k:]
            rerank_seconds = 0.0
            if rerank is not None:
                # Post-merge rerank: the merged pool (every partition's
                # local top-k, optionally capped) is re-scored exactly,
                # ties broken by id under the engine's shared rule.
                with obs.span("rerank") as rerank_span:
                    if rerank.pool is not None:
                        del merged[rerank.pool:]
                    pool_ids = np.asarray(
                        [i for _, i in merged], dtype=np.int64
                    )
                    ids, dists = self._rerank_evaluator.evaluate(
                        query, pool_ids, k
                    )
                    merged = [
                        (float(d), int(i)) for d, i in zip(dists, ids)
                    ]
                rerank_seconds = rerank_span.duration

        routed_items = sum(self._partition_sizes[p] for p in targets)
        reachable_items = sum(
            self._partition_sizes[p]
            for p, o in zip(targets, outcomes)
            if o.partial is not None
        )
        coverage = (
            reachable_items / routed_items if routed_items else 1.0
        )
        degraded = reachable_items < routed_items
        retries = sum(o.retries for o in outcomes)
        hedges = sum(o.hedges for o in outcomes)
        fault_events = [e for o in outcomes for e in o.events]
        obs.observe_distributed(
            len(targets),
            fanout_span.duration,
            merge_span.duration,
            retries=retries,
            hedges=hedges,
            coverage=coverage,
            degraded=degraded,
            root=root,
            sampled=sampled,
            fault_events=fault_events,
            rerank_seconds=rerank_seconds if rerank is not None else None,
        )

        successful = [o for o in outcomes if o.partial is not None]
        # A cached partition costs the coordinator nothing: no compute,
        # no hops beyond the globally charged scatter-gather pair.
        worker_seconds = [
            0.0 if o.from_cache else o.partial.extras["worker_seconds"]
            for o in successful
        ]
        # The makespan formula already charges one scatter-gather hop
        # globally; per-partition serial overhead beyond that first hop
        # (failed attempts, backoff, the winner's injected slowdown) is
        # what the retry term carries.  Fault-free it is exactly 0.
        hop = 2 * self._network.latency_seconds
        retry_seconds = [
            max(0.0, o.serial_seconds - hop)
            for o in outcomes
            if o.partial is not None
        ]
        hedge_seconds = [
            o.hedge_seconds for o in outcomes if o.partial is not None
        ]
        result_bytes = sum(16 * len(p.ids) for p in partials)  # (id, dist)
        return SearchResult(
            np.asarray([i for _, i in merged], dtype=np.int64),
            np.asarray([d for d, _ in merged], dtype=np.float64),
            sum(p.n_candidates for p in partials),
            sum(p.n_buckets_probed for p in partials),
            extras={
                "makespan_seconds": self._network.makespan(
                    worker_seconds,
                    result_bytes,
                    retry_seconds=retry_seconds,
                    hedge_seconds=hedge_seconds,
                ),
                "worker_seconds": worker_seconds,
                "workers_contacted": len(targets),
                "fanout_seconds": fanout_span.duration,
                "merge_seconds": merge_span.duration,
                "coverage": coverage,
                "degraded": degraded,
                "retries": retries,
                "hedges": hedges,
                "reranked": rerank is not None,
                "rerank_seconds": rerank_seconds,
                "shard_cache_hits": sum(
                    1 for o in outcomes if o.from_cache
                ),
                "fault_events": fault_events,
                "partitions_lost": sum(
                    1 for o in outcomes if o.partial is None
                ),
            },
        )
