"""Coordinator for the simulated distributed GQR index.

Scatter-gather query processing over :class:`ShardWorker` shards — the
architecture the paper's conclusion sketches for data-parallel systems:

1. the coordinator computes the query's code and flip costs once
   (hash functions are broadcast, so they are identical on every worker);
2. the query fans out to all workers — or, with cluster sharding, only
   to the shards whose centroids are nearest;
3. each worker returns its local top-k; the coordinator merges.

Workers run in-process; a :class:`NetworkModel` converts the measured
per-worker compute times and message sizes into an estimated
*makespan* (slowest worker + two network hops), which is what a real
deployment's latency would follow.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.gqr import GQR
from repro.core.prober import BucketProber
from repro.distributed.partitioner import cluster_partition, random_partition
from repro.distributed.worker import ShardWorker
from repro.hashing.base import BinaryHasher
from repro.search.results import SearchResult

__all__ = ["NetworkModel", "DistributedHashIndex"]


@dataclass(frozen=True)
class NetworkModel:
    """Simple scatter-gather cost model.

    ``makespan = 2 · latency + max(worker compute) + result_bytes / bandwidth``
    — one hop to scatter (the query fits in one packet), parallel local
    work, one hop to gather the concatenated partial results.
    """

    latency_seconds: float = 0.5e-3
    bandwidth_bytes_per_second: float = 1e9

    def makespan(
        self, worker_seconds: list[float], result_bytes: int
    ) -> float:
        if not worker_seconds:
            return 2 * self.latency_seconds
        return (
            2 * self.latency_seconds
            + max(worker_seconds)
            + result_bytes / self.bandwidth_bytes_per_second
        )


class DistributedHashIndex:
    """Sharded L2H index with scatter-gather kNN queries.

    Parameters
    ----------
    hasher:
        Fitted or unfitted hasher; fit on the full data if needed, then
        broadcast to every worker.
    data:
        The ``(n, d)`` dataset to shard.
    num_workers:
        Cluster size.
    partitioning:
        ``"random"`` (every query fans out everywhere) or ``"cluster"``
        (k-means shards; queries can be routed to the nearest shards).
    prober_factory:
        Zero-arg callable building each worker's prober (default GQR).
    network:
        Cost model used to estimate query makespan.
    """

    def __init__(
        self,
        hasher: BinaryHasher,
        data: np.ndarray,
        num_workers: int = 4,
        partitioning: str = "random",
        prober_factory: Callable[[], BucketProber] = GQR,
        metric: str = "euclidean",
        network: NetworkModel | None = None,
        seed: int | None = 0,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if partitioning not in ("random", "cluster"):
            raise ValueError("partitioning must be 'random' or 'cluster'")
        if not hasher.is_fitted:
            hasher.fit(data)
        self._hasher = hasher
        self._network = network if network is not None else NetworkModel()
        self._metric = metric
        self._centroids: np.ndarray | None = None

        if partitioning == "cluster":
            shards, centroids = cluster_partition(data, num_workers, seed)
            self._centroids = centroids
        else:
            shards = random_partition(len(data), num_workers, seed)
        self._workers = [
            ShardWorker(i, shard, data, hasher, prober_factory(), metric)
            for i, shard in enumerate(shards)
        ]
        self._n = len(data)

    @property
    def num_items(self) -> int:
        return self._n

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> list[ShardWorker]:
        return list(self._workers)

    def shard_sizes(self) -> list[int]:
        return [worker.num_items for worker in self._workers]

    def _route(self, query: np.ndarray, fanout: int | None) -> list[ShardWorker]:
        if fanout is None or fanout >= len(self._workers):
            return self._workers
        if self._centroids is None:
            raise ValueError(
                "partial fanout requires partitioning='cluster' "
                "(random shards are indistinguishable)"
            )
        dists = np.linalg.norm(self._centroids - query, axis=1)
        nearest = np.argsort(dists)[:fanout]
        return [self._workers[i] for i in nearest]

    def search(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        fanout: int | None = None,
    ) -> SearchResult:
        """Scatter-gather kNN.

        ``n_candidates`` is the *total* candidate budget, split evenly
        across the contacted workers.  ``fanout`` (cluster sharding
        only) contacts just the nearest shards, trading recall for
        network traffic and tail latency.
        """
        query = np.asarray(query, dtype=np.float64)
        with obs.span("fanout") as fanout_span:
            probe_info = self._hasher.probe_info(query)
            targets = self._route(query, fanout)
            per_worker = max(1, n_candidates // len(targets))
            partials = [
                worker.search_local(query, k, per_worker, probe_info)
                for worker in targets
            ]
        with obs.span("merge") as merge_span:
            merged: list[tuple[float, int]] = []
            for partial in partials:
                merged.extend(
                    (float(d), int(i))
                    for d, i in zip(partial.distances, partial.ids)
                )
            merged.sort()
            del merged[k:]
        obs.observe_distributed(
            len(targets), fanout_span.duration, merge_span.duration
        )

        worker_seconds = [p.extras["worker_seconds"] for p in partials]
        result_bytes = sum(16 * len(p.ids) for p in partials)  # (id, dist)
        return SearchResult(
            np.asarray([i for _, i in merged], dtype=np.int64),
            np.asarray([d for d, _ in merged], dtype=np.float64),
            sum(p.n_candidates for p in partials),
            sum(p.n_buckets_probed for p in partials),
            extras={
                "makespan_seconds": self._network.makespan(
                    worker_seconds, result_bytes
                ),
                "worker_seconds": worker_seconds,
                "workers_contacted": len(targets),
                "fanout_seconds": fanout_span.duration,
                "merge_seconds": merge_span.duration,
            },
        )
