"""A simulated worker node holding one shard of the distributed index.

Each worker owns a shard of the data, a local hash table over it, and a
mapping from local to global item ids.  Hash functions are *broadcast*:
every worker uses the same fitted hasher (trained once on a sample),
so a query's binary code and flip costs are computed once and reused —
exactly the structure a LoSHa/Husky implementation would have.

Workers run in-process; network behaviour is modelled separately by the
coordinator's :class:`~repro.distributed.cluster.NetworkModel`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro import obs
from repro.distributed.faults import payload_checksum
from repro.hashing.base import BinaryHasher
from repro.index.hash_table import HashTable
from repro.probing.base import BucketProber
from repro.search.engine import (
    ExactEvaluator,
    QueryEngine,
    QueryPlan,
    validate_query,
)
from repro.search.results import SearchResult

__all__ = ["ShardWorker"]


class ShardWorker:
    """One shard: local bucket table + local→global id translation.

    Parameters
    ----------
    worker_id:
        Position in the cluster (for reporting).
    shard_ids:
        Global ids of the items this worker owns.
    data:
        The full ``(n, d)`` array (workers slice their shard; in a real
        deployment each worker would hold only its slice).
    hasher:
        The broadcast, already-fitted hasher.
    prober:
        The querying method (its own instance per worker — probers are
        stateless between queries but may cache, e.g. a shared tree).
    metric:
        Evaluation metric for the local re-rank.
    """

    def __init__(
        self,
        worker_id: int,
        shard_ids: np.ndarray,
        data: np.ndarray,
        hasher: BinaryHasher,
        prober: BucketProber,
        metric: str = "euclidean",
    ) -> None:
        if not hasher.is_fitted:
            raise ValueError("workers need a fitted (broadcast) hasher")
        self.worker_id = worker_id
        self._global_ids = np.asarray(shard_ids, dtype=np.int64)
        self._shard = np.asarray(data, dtype=np.float64)[self._global_ids]
        self._hasher = hasher
        self._prober = prober
        self._metric = metric
        self._table = HashTable(hasher.encode(self._shard))
        self._engine = QueryEngine(
            ExactEvaluator(self._shard, metric), name="shard"
        )

    @property
    def num_items(self) -> int:
        return len(self._shard)

    @property
    def table(self) -> HashTable:
        return self._table

    def search_local(
        self,
        query: np.ndarray,
        k: int,
        n_candidates: int,
        probe_info: tuple[int, np.ndarray] | None = None,
    ) -> SearchResult:
        """Local top-k over this shard; ids in the result are *global*.

        ``probe_info`` lets the coordinator compute the query's code and
        flip costs once and broadcast them, saving one projection per
        worker.  The result's ``extras['worker_seconds']`` records the
        measured local compute time, which the coordinator's cost model
        turns into a makespan; ``extras['stats']`` carries the engine's
        per-stage :class:`~repro.search.engine.ExecutionContext`.
        """
        with obs.span("shard_local") as local_span:
            query = validate_query(query, self._shard.shape[1])
            if probe_info is None:
                probe_info = self._hasher.probe_info(query)
            signature, costs = probe_info
            plan = QueryPlan(
                k=k, n_candidates=n_candidates, metric=self._metric
            )
            local = self._engine.execute(
                query, plan, self._bucket_stream(signature, costs)
            )
        obs.observe_shard(self.worker_id, local_span.duration)
        global_ids = self._global_ids[local.ids]
        extras = dict(local.extras)
        extras.update(
            {
                "worker_seconds": local_span.duration,
                "worker_id": self.worker_id,
                # Receive-side integrity check: the coordinator recomputes
                # this over the payload it got (see faults.verify_payload).
                "checksum": payload_checksum(global_ids, local.distances),
            }
        )
        return SearchResult(
            global_ids,
            local.distances,
            local.n_candidates,
            local.n_buckets_probed,
            extras,
        )

    def _bucket_stream(
        self, signature: int, costs: np.ndarray
    ) -> Iterator[np.ndarray]:
        for bucket in self._prober.probe(self._table, signature, costs):
            ids = self._table.get(bucket)
            if len(ids):
                yield ids
