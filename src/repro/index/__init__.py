"""Index substrates: binary codes, hash tables, exact-search baselines."""

from repro.index.c2lsh import C2LSH
from repro.index.codes import (
    MAX_CODE_LENGTH,
    hamming_distance,
    hamming_weight,
    pack_bits,
    unpack_bits,
    validate_code_length,
)
from repro.index.distance import (
    METRICS,
    angular_distances,
    cosine_distances,
    knn_exact,
    pairwise_distances,
)
from repro.index.dynamic import DynamicHashTable
from repro.index.e2lsh import E2LSH
from repro.index.hash_table import HashTable
from repro.index.linear_scan import LinearScan, euclidean_distances, knn_linear_scan
from repro.index.lsb import LSBForest, interleave_bits
from repro.index.mih import MultiIndexHashing
from repro.index.qalsh import QALSH

__all__ = [
    "MAX_CODE_LENGTH",
    "METRICS",
    "C2LSH",
    "E2LSH",
    "LSBForest",
    "QALSH",
    "DynamicHashTable",
    "HashTable",
    "LinearScan",
    "MultiIndexHashing",
    "angular_distances",
    "cosine_distances",
    "euclidean_distances",
    "hamming_distance",
    "hamming_weight",
    "knn_exact",
    "interleave_bits",
    "knn_linear_scan",
    "pack_bits",
    "pairwise_distances",
    "unpack_bits",
    "validate_code_length",
]
