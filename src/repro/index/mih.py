"""Multi-Index Hashing (MIH) — exact search in Hamming space.

Re-implementation of Norouzi, Punjani and Fleet, *Fast Exact Search in
Hamming Space with Multi-Index Hashing* (CVPR 2012 / TPAMI 2014), the
baseline of the paper's appendix (Figures 18–19).

The ``m``-bit code is chopped into ``s`` contiguous blocks and one hash
table is built per block over the block substrings.  By the pigeonhole
principle, any code within full Hamming distance ``r`` of the query must
lie within distance ``⌊r/s⌋`` of the query in at least one block, so the
``r``-ball can be collected by enumerating a much smaller ball in each
block table and filtering candidates by their full distance.

As a *querying method*, MIH probes buckets in non-decreasing Hamming
distance by growing ``r`` incrementally — semantically the same order as
generate-to-probe Hamming ranking (GHR), but paying extra cost for
candidate de-duplication and filtering, which is why the paper finds it
slightly slower than GHR at the short code lengths L2H uses.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations

import numpy as np

from repro.index.codes import hamming_distance, pack_bits, validate_code_length

__all__ = ["MultiIndexHashing"]


def _flip_neighborhood(signature: int, length: int, radius: int) -> Iterator[int]:
    """All ``length``-bit signatures within Hamming distance ``radius``."""
    for r in range(radius + 1):
        for positions in combinations(range(length), r):
            sig = signature
            for pos in positions:
                sig ^= 1 << pos
            yield sig


class MultiIndexHashing:
    """Exact Hamming-range search over binary codes via substring tables.

    Parameters
    ----------
    codes:
        ``(n, m)`` bit array of the indexed items.
    num_blocks:
        Number of substring hash tables ``s``.  The classic heuristic is
        ``s ≈ m / log2(n)``; for the short codes used by L2H (where the
        code space is comparable to ``n``) 2–4 blocks are typical.
    """

    def __init__(self, codes: np.ndarray, num_blocks: int = 2) -> None:
        bits = np.asarray(codes, dtype=np.uint8)
        if bits.ndim != 2:
            raise ValueError("codes must be a (n, m) bit array")
        m = validate_code_length(bits.shape[1])
        if not 1 <= num_blocks <= m:
            raise ValueError(f"num_blocks must be in [1, {m}], got {num_blocks}")

        self._m = m
        self._s = num_blocks
        self._signatures = np.atleast_1d(
            np.asarray(pack_bits(bits), dtype=np.int64)
        )

        # Block i covers bit columns [starts[i], starts[i+1]).
        base, extra = divmod(m, num_blocks)
        widths = [base + (1 if i < extra else 0) for i in range(num_blocks)]
        starts = np.concatenate(([0], np.cumsum(widths)))
        self._block_widths = widths
        self._block_starts = starts[:-1]

        self._block_tables: list[dict[int, np.ndarray]] = []
        for i in range(num_blocks):
            sub = bits[:, starts[i] : starts[i + 1]]
            sub_sigs = np.atleast_1d(
                np.asarray(pack_bits(sub), dtype=np.int64)
            )
            table: dict[int, list[int]] = {}
            for item_id, sig in enumerate(sub_sigs):
                table.setdefault(int(sig), []).append(item_id)
            self._block_tables.append(
                {sig: np.asarray(ids, dtype=np.int64) for sig, ids in table.items()}
            )

    @property
    def code_length(self) -> int:
        return self._m

    @property
    def num_blocks(self) -> int:
        return self._s

    @property
    def num_items(self) -> int:
        return len(self._signatures)

    def _block_signature(self, signature: int, block: int) -> int:
        start = int(self._block_starts[block])
        width = self._block_widths[block]
        return (signature >> start) & ((1 << width) - 1)

    def candidates_within(self, signature: int, radius: int) -> np.ndarray:
        """Superset of ids within ``radius`` (pigeonhole candidates)."""
        block_radius = radius // self._s
        hits: list[np.ndarray] = []
        for block, table in enumerate(self._block_tables):
            qsub = self._block_signature(signature, block)
            width = self._block_widths[block]
            for sub in _flip_neighborhood(qsub, width, block_radius):
                ids = table.get(sub)
                if ids is not None:
                    hits.append(ids)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    def neighbors_within(self, signature: int, radius: int) -> np.ndarray:
        """Exactly the ids whose code is within ``radius`` of ``signature``."""
        cand = self.candidates_within(signature, radius)
        if not len(cand):
            return cand
        dists = hamming_distance(self._signatures[cand], np.int64(signature))
        return cand[dists <= radius]

    def knn_hamming(self, signature: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact k nearest codes in Hamming space (Norouzi's kNN mode).

        Grows the search radius ring by ring; once ``k`` items have been
        found at radius ``r``, every unvisited item is farther, so the
        collected set is exact.  Returns ``(ids, hamming_distances)``
        sorted by distance then id.
        """
        if not 1 <= k <= self.num_items:
            raise ValueError(f"k must be in [1, {self.num_items}], got {k}")
        found_ids: list[np.ndarray] = []
        found_dists: list[np.ndarray] = []
        total = 0
        for r, ids in self.probe_increasing(signature):
            if len(ids):
                found_ids.append(ids)
                found_dists.append(np.full(len(ids), r, dtype=np.int64))
                total += len(ids)
            if total >= k:
                break
        ids = np.concatenate(found_ids)
        dists = np.concatenate(found_dists)
        order = np.lexsort((ids, dists))[:k]
        return ids[order], dists[order]

    def probe_increasing(
        self, signature: int, max_radius: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(r, ids at exact Hamming distance r)`` for growing ``r``.

        This is the MIH querying loop used in Figures 18–19: buckets are
        visited ring by ring, with de-duplication against previously
        returned candidates.
        """
        if max_radius is None:
            max_radius = self._m
        seen = np.zeros(self.num_items, dtype=bool)
        for r in range(max_radius + 1):
            cand = self.candidates_within(signature, r)
            if len(cand):
                cand = cand[~seen[cand]]
            if len(cand):
                dists = hamming_distance(self._signatures[cand], np.int64(signature))
                hits = cand[dists <= r]
                seen[hits] = True
            else:
                hits = cand
            yield r, hits
