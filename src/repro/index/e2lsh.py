"""Classic E2LSH with original Multi-Probe query-directed probing.

Two related-work systems in one module:

* **E2LSH** (Datar et al., p-stable LSH): ``L`` tables, each hashing an
  item to an integer tuple ``g(o) = (⌊(a_1·o + b_1)/w⌋, …)`` of ``m``
  components; a query probes its own compound bucket in every table.
* **Multi-Probe LSH** (Lv et al., VLDB 2007): instead of many tables,
  derive a *probing sequence* of perturbation vectors ``Δ ∈ {-1,0,+1}^m``
  per table, ordered by the score ``Σ x_i(δ_i)²`` where ``x_i(δ_i)`` is
  the distance from the query's projection to the boundary being
  crossed.  The sequence is generated lazily with the same heap idea
  GQR later adapts to binary codes (the paper, Section 5.3, spells out
  the differences — this module exists so they can be measured).

Unlike GQR's flipping vectors, a perturbation may step outside any
occupied bucket and the same compound bucket is never revisited, but
perturbing a component by ±1 twice is invalid — handled here exactly as
in the original paper (each component perturbs at most once, to the
adjacent bucket on either side).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

__all__ = ["E2LSH"]


class E2LSH:
    """p-stable LSH tables with optional Multi-Probe querying.

    Parameters
    ----------
    data:
        ``(n, d)`` items to index.
    n_tables:
        Number of independent compound hash tables ``L``.
    n_components:
        Integer hash functions per table ``m``.
    bucket_width:
        Quantization width in units of each projection's std.
    seed:
        Seed for projections and offsets.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_tables: int = 4,
        n_components: int = 8,
        bucket_width: float = 1.0,
        seed: int | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if n_tables < 1 or n_components < 1:
            raise ValueError("n_tables and n_components must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        rng = np.random.default_rng(seed)
        d = data.shape[1]
        self._n = len(data)
        self._L = n_tables
        self._m = n_components

        self._directions = rng.standard_normal((n_tables, d, n_components))
        projections = np.einsum("nd,tdm->tnm", data, self._directions)
        scales = projections.std(axis=1)  # (L, m)
        scales[scales == 0] = 1.0
        self._widths = bucket_width * scales
        self._offsets = rng.uniform(0, self._widths)
        keys = np.floor(
            (projections + self._offsets[:, np.newaxis, :])
            / self._widths[:, np.newaxis, :]
        ).astype(np.int64)

        self._tables: list[dict[tuple, np.ndarray]] = []
        for t in range(n_tables):
            table: dict[tuple, list[int]] = {}
            for item in range(self._n):
                table.setdefault(tuple(keys[t, item]), []).append(item)
            self._tables.append(
                {key: np.asarray(ids, dtype=np.int64)
                 for key, ids in table.items()}
            )

    @property
    def num_items(self) -> int:
        return self._n

    @property
    def n_tables(self) -> int:
        return self._L

    def _query_state(
        self, query: np.ndarray, table: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Anchor keys plus boundary distances for one table."""
        projection = query @ self._directions[table]
        shifted = (projection + self._offsets[table]) / self._widths[table]
        anchor = np.floor(shifted).astype(np.int64)
        frac = shifted - anchor  # distance to the lower boundary in [0,1)
        # x_i(-1): crossing to the bucket below; x_i(+1): above.
        down = frac * self._widths[table]
        up = (1.0 - frac) * self._widths[table]
        return anchor, down, up

    def _perturbation_sequence(
        self, down: np.ndarray, up: np.ndarray
    ) -> Iterator[tuple[float, tuple[tuple[int, int], ...]]]:
        """Lv et al.'s heap over perturbation sets.

        Scores ``2m`` elementary moves — component ``i`` to its lower
        (``-1``) or upper (``+1``) neighbour, cost ``down[i]²``/``up[i]²``
        — sorts them ascending, then expands subsets with the
        shift/expand moves over the *sorted* move list, skipping subsets
        that perturb one component twice.
        """
        moves = [(float(down[i]) ** 2, i, -1) for i in range(self._m)]
        moves += [(float(up[i]) ** 2, i, +1) for i in range(self._m)]
        moves.sort()
        costs = [cost for cost, _, _ in moves]

        def is_valid(mask: int) -> bool:
            seen: set[int] = set()
            remaining = mask
            while remaining:
                low = remaining & -remaining
                component = moves[low.bit_length() - 1][1]
                if component in seen:
                    return False
                seen.add(component)
                remaining ^= low
            return True

        def to_moves(mask: int) -> tuple[tuple[int, int], ...]:
            out = []
            remaining = mask
            while remaining:
                low = remaining & -remaining
                _, component, direction = moves[low.bit_length() - 1]
                out.append((component, direction))
                remaining ^= low
            return tuple(out)

        heap: list[tuple[float, int]] = [(costs[0], 1)]
        while heap:
            cost, mask = heapq.heappop(heap)
            j = mask.bit_length() - 1
            if j + 1 < len(moves):
                heapq.heappush(
                    heap, (cost + costs[j + 1], mask | (1 << (j + 1)))
                )
                heapq.heappush(
                    heap,
                    (cost + costs[j + 1] - costs[j],
                     (mask ^ (1 << j)) | (1 << (j + 1))),
                )
            if is_valid(mask):
                yield cost, to_moves(mask)

    def candidate_stream(
        self, query: np.ndarray, multiprobe: bool = True
    ) -> Iterator[np.ndarray]:
        """Candidate batches: anchor buckets first, then perturbations.

        With ``multiprobe=False`` only the ``L`` anchor buckets are
        probed (classic E2LSH — recall is then capped by table count).
        With ``multiprobe=True`` each table's perturbation sequences are
        merged globally by score, exactly one bucket per step.
        """
        query = np.asarray(query, dtype=np.float64)
        seen = np.zeros(self._n, dtype=bool)
        states = [self._query_state(query, t) for t in range(self._L)]

        def emit(table: int, key: tuple) -> np.ndarray:
            ids = self._tables[table].get(key)
            if ids is None:
                return _EMPTY
            fresh = ids[~seen[ids]]
            if len(fresh):
                seen[fresh] = True
            return fresh

        for t in range(self._L):
            fresh = emit(t, tuple(states[t][0]))
            if len(fresh):
                yield fresh
        if not multiprobe:
            return

        sequences = [
            self._perturbation_sequence(down, up)
            for _, down, up in states
        ]
        heap: list[tuple[float, int, tuple]] = []
        for t, sequence in enumerate(sequences):
            first = next(sequence, None)
            if first is not None:
                heap.append((first[0], t, first[1]))
        heapq.heapify(heap)
        while heap:
            _, t, perturbation = heapq.heappop(heap)
            anchor = states[t][0]
            key = list(anchor)
            for component, direction in perturbation:
                key[component] += direction
            fresh = emit(t, tuple(key))
            if len(fresh):
                yield fresh
            upcoming = next(sequences[t], None)
            if upcoming is not None:
                heapq.heappush(heap, (upcoming[0], t, upcoming[1]))


_EMPTY = np.empty(0, dtype=np.int64)
