"""Mutable hash table: insertions and deletions without rebuilds.

The paper's tables are static (built once from the training set), but a
production deployment ingests and expires items continuously.
:class:`DynamicHashTable` implements the same read interface as
:class:`~repro.index.hash_table.HashTable` — ``code_length``,
``num_items``, ``num_buckets``, ``get``, ``signatures`` — so every
prober works on it unchanged, while supporting ``add`` and ``remove``.

Deletions are tombstoned and compacted lazily per bucket: ``remove`` is
O(1), and a bucket pays its cleanup cost on its next ``get`` only when
tombstones exceed half its population.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

import numpy as np

from repro.index.codes import pack_bits, validate_code_length

__all__ = ["DynamicHashTable"]


class DynamicHashTable:
    """Bucketed id storage supporting add/remove with lazy compaction.

    Parameters
    ----------
    code_length:
        Number of bits per code; fixed for the table's lifetime.
    """

    def __init__(self, code_length: int) -> None:
        self._m = validate_code_length(code_length)
        self._buckets: dict[int, list[int]] = {}
        self._dead: set[int] = set()
        self._bucket_of: dict[int, int] = {}
        self._n_alive = 0
        # ``get`` compacts lazily, so *reads* mutate the table too;
        # parallel batch workers call ``get`` concurrently and must not
        # interleave with each other or with add/remove.  Non-reentrant
        # by design: no method below calls another locked method while
        # holding the lock (num_buckets/signatures call ``get`` from
        # outside it).
        self._lock = threading.Lock()

    @property
    def code_length(self) -> int:
        return self._m

    @property
    def num_items(self) -> int:
        """Number of live (non-removed) items."""
        return self._n_alive

    @property
    def num_buckets(self) -> int:
        """Occupied buckets, counting only live items.

        Iterates a snapshot of the bucket keys: ``get`` compacts lazily
        and deletes a bucket whose members are all tombstoned, which
        would otherwise mutate the dict mid-iteration and raise
        ``RuntimeError`` (crashing any search whose prober asks for the
        bucket count after removals emptied a bucket).
        """
        return sum(1 for sig in list(self._buckets) if len(self.get(sig)))

    def add(self, item_id: int, code: np.ndarray | int) -> None:
        """Insert one item under its bit-array or signature code."""
        item_id = int(item_id)
        if isinstance(code, (int, np.integer)):
            signature = int(code)
        else:
            signature = int(pack_bits(code))
        if not 0 <= signature < (1 << self._m):
            raise ValueError(f"signature out of range for m={self._m}")
        with self._lock:
            if item_id in self._bucket_of:
                if item_id not in self._dead:
                    raise KeyError(f"item {item_id} already present")
                # Re-using a tombstoned id: purge it from its old
                # bucket now.
                old_signature = self._bucket_of.pop(item_id)
                members = self._buckets.get(old_signature)
                if members is not None:
                    members.remove(item_id)
                    if not members:
                        del self._buckets[old_signature]
                self._dead.discard(item_id)
            self._buckets.setdefault(signature, []).append(item_id)
            self._bucket_of[item_id] = signature
            self._dead.discard(item_id)
            self._n_alive += 1

    def add_batch(self, item_ids: np.ndarray, codes: np.ndarray) -> None:
        """Insert many items; ``codes`` is a ``(n, m)`` bit array."""
        ids = np.asarray(item_ids, dtype=np.int64)
        signatures = np.atleast_1d(
            np.asarray(pack_bits(codes), dtype=np.int64)
        )
        if len(ids) != len(signatures):
            raise ValueError("item_ids must align with codes")
        for item_id, signature in zip(ids, signatures):
            self.add(int(item_id), int(signature))

    def remove(self, item_id: int) -> None:
        """Tombstone one item; raises ``KeyError`` if absent."""
        item_id = int(item_id)
        with self._lock:
            if item_id not in self._bucket_of or item_id in self._dead:
                raise KeyError(f"item {item_id} not present")
            self._dead.add(item_id)
            self._n_alive -= 1

    def __contains__(self, signature: int) -> bool:
        return len(self.get(int(signature))) > 0

    def get(self, signature: int) -> np.ndarray:
        """Live item ids in the bucket (compacting tombstones lazily)."""
        with self._lock:
            members = self._buckets.get(int(signature))
            if not members:
                return _EMPTY_IDS
            dead_here = [item for item in members if item in self._dead]
            if dead_here:
                if len(dead_here) * 2 >= len(members):
                    # Compact: drop tombstones for good.
                    members[:] = [m for m in members if m not in self._dead]
                    for item in dead_here:
                        del self._bucket_of[item]
                        self._dead.discard(item)
                    if not members:
                        del self._buckets[int(signature)]
                        return _EMPTY_IDS
                    return np.asarray(members, dtype=np.int64)
                return np.asarray(
                    [m for m in members if m not in self._dead],
                    dtype=np.int64,
                )
            return np.asarray(members, dtype=np.int64)

    def signatures(self) -> Iterator[int]:
        """Iterate over buckets that currently hold at least one live item."""
        for signature in list(self._buckets):
            if len(self.get(signature)):
                yield signature

    def bucket_sizes(self) -> dict[int, int]:
        return {
            sig: len(self.get(sig))
            for sig in self.signatures()
        }

    def expected_population(self) -> float:
        sizes = self.bucket_sizes()
        if not sizes:
            return 0.0
        return self._n_alive / len(sizes)

    def __repr__(self) -> str:
        return (
            f"DynamicHashTable(code_length={self._m}, items={self._n_alive}, "
            f"buckets={len(self._buckets)})"
        )


_EMPTY_IDS = np.empty(0, dtype=np.int64)
