"""LSB-forest: Z-order (Morton) probing of quantized projections.

Tao, Yi, Sheng & Kalnis, *Quality and Efficiency in High Dimensional
Nearest Neighbor Search* (SIGMOD 2009), from the paper's related work:
project items with p-stable LSH, quantize each projection to an
integer, interleave the integers' bits into a *Z-value*, and keep items
sorted by Z-value (a B-tree on disk; a sorted array here).  A query
probes items in order of Z-value proximity, expanding bidirectionally
from its own position — items sharing a long Z-prefix share many
high-order quantized coordinates, hence are likely close.  Multiple
trees (a forest) with independent projections reduce the variance.

Like SK-LSH's compound keys, the Z-order linearisation is prefix-based,
so it inherits the boundary problem QD avoids — which is why the paper
groups these methods as "generally worse than L2H methods in practice".
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["LSBForest", "interleave_bits"]


def interleave_bits(coordinates: np.ndarray, bits_per_dim: int) -> np.ndarray:
    """Morton-interleave rows of non-negative integers into Z-values.

    ``coordinates`` is ``(n, m)`` with entries in ``[0, 2^bits_per_dim)``;
    bit ``b`` of dimension ``i`` lands at position ``b·m + (m−1−i)`` so
    higher-order bits of all dimensions come first.
    """
    coords = np.asarray(coordinates, dtype=np.int64)
    if coords.ndim != 2:
        raise ValueError("coordinates must be a (n, m) array")
    n, m = coords.shape
    if m * bits_per_dim > 62:
        raise ValueError("interleaved width exceeds 62 bits")
    if coords.size and (coords.min() < 0 or coords.max() >= (1 << bits_per_dim)):
        raise ValueError("coordinates out of range for bits_per_dim")
    z = np.zeros(n, dtype=np.int64)
    for bit in range(bits_per_dim):
        for dim in range(m):
            position = bit * m + (m - 1 - dim)
            z |= ((coords[:, dim] >> bit) & 1) << position
    return z


class LSBForest:
    """Forest of Z-order-sorted projection tables.

    Parameters
    ----------
    data:
        ``(n, d)`` items to index.
    n_trees:
        Independent Z-order lists (the forest size).
    n_components:
        Projections per tree ``m`` (Z-value dimensionality).
    bits_per_dim:
        Quantization resolution of each projection.
    seed:
        RNG seed for the projections.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_trees: int = 4,
        n_components: int = 6,
        bits_per_dim: int = 8,
        seed: int | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if n_trees < 1 or n_components < 1 or bits_per_dim < 1:
            raise ValueError(
                "n_trees, n_components and bits_per_dim must be positive"
            )
        if n_components * bits_per_dim > 62:
            raise ValueError("n_components * bits_per_dim must be <= 62")
        rng = np.random.default_rng(seed)
        d = data.shape[1]
        self._n = len(data)
        self._m = n_components
        self._bits = bits_per_dim

        self._directions = rng.standard_normal((n_trees, d, n_components))
        self._mins: list[np.ndarray] = []
        self._scales: list[np.ndarray] = []
        self._orders: list[np.ndarray] = []
        self._sorted_z: list[np.ndarray] = []
        levels = (1 << bits_per_dim) - 1
        for t in range(n_trees):
            projection = data @ self._directions[t]
            lo = projection.min(axis=0)
            span = projection.max(axis=0) - lo
            span[span == 0] = 1.0
            self._mins.append(lo)
            self._scales.append(levels / span)
            quantized = np.clip(
                ((projection - lo) * self._scales[-1]).astype(np.int64),
                0,
                levels,
            )
            z = interleave_bits(quantized, bits_per_dim)
            order = np.argsort(z, kind="stable")
            self._orders.append(order)
            self._sorted_z.append(z[order])

    @property
    def num_items(self) -> int:
        return self._n

    @property
    def n_trees(self) -> int:
        return len(self._orders)

    def _query_z(self, query: np.ndarray, tree: int) -> int:
        projection = query @ self._directions[tree]
        levels = (1 << self._bits) - 1
        quantized = np.clip(
            ((projection - self._mins[tree]) * self._scales[tree]).astype(
                np.int64
            ),
            0,
            levels,
        )
        return int(interleave_bits(quantized[np.newaxis, :], self._bits)[0])

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        """Items in Z-value-proximity order, merged across trees.

        Each tree expands bidirectionally from the query's Z position,
        always taking the side with the smaller |Z difference|; trees
        are merged round-robin one item each, with global
        de-duplication.  Every item is eventually emitted.
        """
        query = np.asarray(query, dtype=np.float64)
        anchors = [self._query_z(query, t) for t in range(self.n_trees)]
        positions = [
            int(np.searchsorted(self._sorted_z[t], anchors[t]))
            for t in range(self.n_trees)
        ]
        left = [p - 1 for p in positions]
        right = list(positions)
        seen = np.zeros(self._n, dtype=bool)
        remaining = self._n

        while remaining:
            batch = []
            for t in range(self.n_trees):
                z = self._sorted_z[t]
                left_gap = (
                    anchors[t] - int(z[left[t]]) if left[t] >= 0 else None
                )
                right_gap = (
                    int(z[right[t]]) - anchors[t]
                    if right[t] < self._n
                    else None
                )
                if left_gap is None and right_gap is None:
                    continue
                take_left = right_gap is None or (
                    left_gap is not None and left_gap <= right_gap
                )
                if take_left:
                    item = int(self._orders[t][left[t]])
                    left[t] -= 1
                else:
                    item = int(self._orders[t][right[t]])
                    right[t] += 1
                if not seen[item]:
                    seen[item] = True
                    remaining -= 1
                    batch.append(item)
            if batch:
                yield np.asarray(batch, dtype=np.int64)
