"""C2LSH: collision counting with virtual rehashing.

Gan et al., *Locality-Sensitive Hashing Scheme Based on Dynamic
Collision Counting* (SIGMOD 2012), from the paper's related work.

Each of the ``m`` hash functions buckets items on a quantized random
projection ``h_i(o) = ⌊(a_i·o + b_i) / w⌋``.  A query starts from its
own bucket in every function and *virtually rehashes*: round ``r``
extends each function's window to the buckets within offset ``±r``.
Items colliding with the query in at least ``collision_threshold``
functions become candidates.  Unlike Multi-Probe LSH, C2LSH guarantees
the whole dataset is eventually enumerated — the same requirement (R1)
the paper imposes on GQR.

Implementation note: projection ``i``'s window covers item ``o`` from
radius ``|key_i(o) − key_i(q)|`` onward, so ``o`` crosses the collision
threshold exactly at the ``l``-th smallest of those offsets.  We
compute that order statistic vectorised instead of simulating the
rehash rounds — identical emission order, much faster in Python.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["C2LSH"]


class C2LSH:
    """In-memory C2LSH index.

    Parameters
    ----------
    data:
        ``(n, d)`` items to index.
    n_projections:
        Number of hash functions ``m``.
    bucket_width:
        Quantization width ``w`` in units of each projection's standard
        deviation (widths are scaled per projection so the parameter is
        dataset-independent).
    collision_threshold:
        Collisions required before an item becomes a candidate.
    seed:
        Seed for directions and offsets.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_projections: int = 16,
        bucket_width: float = 1.0,
        collision_threshold: int = 4,
        seed: int | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if n_projections < 1:
            raise ValueError("n_projections must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if not 1 <= collision_threshold <= n_projections:
            raise ValueError(
                "collision_threshold must be in [1, n_projections]"
            )
        rng = np.random.default_rng(seed)
        d = data.shape[1]
        self._directions = rng.standard_normal((d, n_projections))
        projections = data @ self._directions
        scales = projections.std(axis=0)
        scales[scales == 0] = 1.0
        self._widths = bucket_width * scales
        self._offsets = rng.uniform(0, self._widths)
        self._keys = np.floor(
            (projections + self._offsets) / self._widths
        ).astype(np.int64)
        self._n = len(data)
        self._m = n_projections
        self._threshold = collision_threshold

    @property
    def num_items(self) -> int:
        return self._n

    def emission_radii(self, query: np.ndarray) -> np.ndarray:
        """Virtual-rehash radius at which each item becomes a candidate."""
        query = np.asarray(query, dtype=np.float64)
        anchors = np.floor(
            (query @ self._directions + self._offsets) / self._widths
        ).astype(np.int64)
        offsets = np.abs(self._keys - anchors[np.newaxis, :])
        return np.partition(offsets, self._threshold - 1, axis=1)[
            :, self._threshold - 1
        ]

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        """Candidate batches per virtual-rehash radius, ascending.

        Terminates after every item is emitted exactly once (each item
        is covered at a finite radius in every projection).
        """
        radii = self.emission_radii(query)
        order = np.argsort(radii, kind="stable")
        sorted_radii = radii[order]
        boundaries = np.flatnonzero(np.diff(sorted_radii)) + 1
        for batch in np.split(order, boundaries):
            yield batch.astype(np.int64)
