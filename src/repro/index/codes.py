"""Binary code utilities.

Learning-to-hash maps every item to an ``m``-bit binary code.  Throughout
this package codes live in two interchangeable representations:

* **bit arrays** — ``numpy`` arrays of shape ``(n, m)`` (or ``(m,)`` for a
  single code) with ``uint8`` entries in ``{0, 1}``; column ``i`` holds bit
  ``c_i`` from the paper.
* **signatures** — unsigned integers where bit position ``i`` stores
  ``c_i``.  Signatures are compact dictionary keys for hash tables and are
  what probers pass around.

This module provides loss-free conversion between the two plus Hamming
arithmetic.  Code length is limited to 63 bits so that signatures fit in
``int64``; the paper never exceeds 28 bits (code length is chosen as
``log2(N / 10)``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_CODE_LENGTH",
    "pack_bits",
    "pack_code_words",
    "packed_hamming_distances",
    "packed_qd_distances",
    "qd_cost_tables",
    "unpack_bits",
    "hamming_distance",
    "hamming_weight",
    "validate_code_length",
]

MAX_CODE_LENGTH = 63

_CHUNK_BITS = 8


def validate_code_length(m: int) -> int:
    """Return ``m`` if it is a usable code length, raise otherwise."""
    if not isinstance(m, (int, np.integer)):
        raise TypeError(f"code length must be an integer, got {type(m).__name__}")
    if not 1 <= m <= MAX_CODE_LENGTH:
        raise ValueError(
            f"code length must be in [1, {MAX_CODE_LENGTH}], got {m}"
        )
    return int(m)


def pack_bits(bits: np.ndarray) -> np.ndarray | int:
    """Pack a ``(n, m)`` or ``(m,)`` array of {0, 1} into integer signatures.

    Bit ``i`` of each code becomes bit position ``i`` of the signature, so
    ``pack_bits([1, 0, 1]) == 0b101 == 5``.

    Returns an ``int64`` array of shape ``(n,)``, or a scalar ``int`` for a
    single code.
    """
    # Deliberately dtype-polymorphic: accepts bool/int/float {0, 1}
    # arrays; entries are range-checked below, then cast to int64.
    arr = np.asarray(bits)  # reprolint: disable=RL002
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D bit array, got ndim={arr.ndim}")
    m = validate_code_length(arr.shape[1])
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise ValueError("bit array entries must be 0 or 1")
    weights = (np.int64(1) << np.arange(m, dtype=np.int64))
    sigs = (arr.astype(np.int64) * weights).sum(axis=1)
    if single:
        return int(sigs[0])
    return sigs


def unpack_bits(signatures: np.ndarray | int, m: int) -> np.ndarray:
    """Unpack integer signatures back into a {0, 1} bit array.

    Inverse of :func:`pack_bits`.  Returns shape ``(m,)`` for a scalar
    input and ``(n, m)`` for an array.
    """
    m = validate_code_length(m)
    scalar = np.isscalar(signatures)
    sigs = np.atleast_1d(np.asarray(signatures, dtype=np.int64))
    if sigs.size and (sigs.min() < 0 or sigs.max() >= (1 << m)):
        raise ValueError(f"signature out of range for code length {m}")
    positions = np.arange(m, dtype=np.int64)
    bits = ((sigs[:, np.newaxis] >> positions) & 1).astype(np.uint8)
    if scalar:
        return bits[0]
    return bits


def hamming_weight(signatures: np.ndarray | int) -> np.ndarray | int:
    """Number of set bits (popcount) of each signature."""
    scalar = np.isscalar(signatures)
    sigs = np.atleast_1d(np.asarray(signatures, dtype=np.uint64))
    counts = np.bitwise_count(sigs).astype(np.int64)
    if scalar:
        return int(counts[0])
    return counts


def hamming_distance(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """Hamming distance between signatures (broadcasting like ``a ^ b``)."""
    both_scalar = np.isscalar(a) and np.isscalar(b)
    xa = np.asarray(a, dtype=np.uint64)
    xb = np.asarray(b, dtype=np.uint64)
    counts = np.bitwise_count(xa ^ xb).astype(np.int64)
    if both_scalar:
        return int(counts)
    return counts


# -- packed-block kernels ---------------------------------------------
#
# The signatures above fit one int64 because code length is capped at
# 63.  The kernels below are the contiguous-block counterparts used by
# the batch evaluation paths: codes packed 64 bits per word, scored
# with ``np.bitwise_count`` over whole blocks so per-candidate cost is
# a handful of ufunc ops instead of a Python-level bit unpack.

def pack_code_words(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n, m)`` {0, 1} array into ``(n, W)`` uint64 words.

    Word ``w`` of row ``i`` holds bits ``64·w … 64·w+63`` of code ``i``
    (bit ``j`` of the code at bit position ``j − 64·w`` of the word),
    with ``W = ceil(m / 64)``; trailing bits of the last word are zero.
    Unlike :func:`pack_bits` this imposes no 63-bit ceiling — it is the
    storage format for long-code blocks.
    """
    arr = np.asarray(bits, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError(f"expected a (n, m) bit array, got ndim={arr.ndim}")
    if arr.size and np.any(arr > 1):
        raise ValueError("bit array entries must be 0 or 1")
    n, m = arr.shape
    if m < 1:
        raise ValueError("codes must have at least one bit")
    n_words = -(-m // 64)
    words = np.zeros((n, n_words), dtype=np.uint64)
    for w in range(n_words):
        chunk = arr[:, 64 * w:64 * (w + 1)]
        shifts = np.arange(chunk.shape[1], dtype=np.uint64)
        words[:, w] = (chunk << shifts).sum(axis=1, dtype=np.uint64)
    return words


def packed_hamming_distances(
    query_words: np.ndarray, code_words: np.ndarray
) -> np.ndarray:
    """Hamming distances from packed queries to a packed code block.

    ``query_words`` is ``(W,)`` or ``(q, W)``, ``code_words`` is
    ``(n, W)`` (both from :func:`pack_code_words`); returns ``(n,)`` or
    ``(q, n)`` int64 distances.  One XOR, one ``np.bitwise_count`` and
    one word-axis sum over the contiguous block — no bit unpacking.
    """
    q = np.asarray(query_words, dtype=np.uint64)
    c = np.asarray(code_words, dtype=np.uint64)
    if c.ndim != 2:
        raise ValueError(f"code_words must be (n, W), got ndim={c.ndim}")
    single = q.ndim == 1
    if single:
        q = q[np.newaxis, :]
    if q.shape[-1] != c.shape[-1]:
        raise ValueError(
            f"word-count mismatch: queries have {q.shape[-1]} words, "
            f"codes have {c.shape[-1]}"
        )
    counts = np.bitwise_count(q[:, np.newaxis, :] ^ c[np.newaxis, :, :])
    dists = counts.sum(axis=-1, dtype=np.int64)
    if single:
        return dists[0]
    return dists


def qd_cost_tables(query_signature: int, flip_costs: np.ndarray) -> np.ndarray:
    """Per-byte lookup tables for quantization distance against one query.

    Chunk ``c`` of the returned ``(C, 256)`` float64 table (with
    ``C = ceil(m / 8)``) maps a candidate's byte value ``v`` to
    ``Σ_j ((q_byte ⊕ v) >> j & 1) · flip_costs[8c + j]`` — that chunk's
    contribution to ``dist(q, b) = Σ_i (c_i(q) ⊕ b_i)·|p_i(q)|``
    (Definition 1).  Each entry accumulates its bits in ascending
    order, so summing the ``C`` chunk lookups reproduces the naive
    per-bit sum deterministically.
    """
    costs = np.asarray(flip_costs, dtype=np.float64)
    m = validate_code_length(len(costs))
    n_chunks = -(-m // _CHUNK_BITS)
    values = np.arange(256, dtype=np.int64)
    tables = np.zeros((n_chunks, 256), dtype=np.float64)
    for c in range(n_chunks):
        q_byte = (int(query_signature) >> (_CHUNK_BITS * c)) & 0xFF
        flipped = values ^ q_byte
        for j in range(min(_CHUNK_BITS, m - _CHUNK_BITS * c)):
            bit = (flipped >> j) & 1
            tables[c] += bit * costs[_CHUNK_BITS * c + j]
    return tables


def packed_qd_distances(
    bucket_signatures: np.ndarray, cost_tables: np.ndarray
) -> np.ndarray:
    """Quantization distances of packed signatures via byte lookups.

    ``bucket_signatures`` is an int64 array of single-word signatures
    (code length ≤ 63) and ``cost_tables`` the query's tables from
    :func:`qd_cost_tables`.  Equivalent to
    :func:`repro.core.quantization_distance.quantization_distances`
    up to float summation order: each candidate costs ``C`` gathers and
    a ``C``-term sum instead of an ``m``-bit unpack and a matvec.
    """
    sigs = np.asarray(bucket_signatures, dtype=np.int64)
    n_chunks = cost_tables.shape[0]
    shifts = _CHUNK_BITS * np.arange(n_chunks, dtype=np.int64)
    chunk_values = (sigs[..., np.newaxis] >> shifts) & 0xFF
    out = np.zeros(sigs.shape, dtype=np.float64)
    # Ascending-chunk accumulation: matches the per-entry ascending-bit
    # order of qd_cost_tables, keeping the full sum order-deterministic.
    for c in range(n_chunks):
        out += cost_tables[c][chunk_values[..., c]]
    return out
