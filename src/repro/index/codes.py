"""Binary code utilities.

Learning-to-hash maps every item to an ``m``-bit binary code.  Throughout
this package codes live in two interchangeable representations:

* **bit arrays** — ``numpy`` arrays of shape ``(n, m)`` (or ``(m,)`` for a
  single code) with ``uint8`` entries in ``{0, 1}``; column ``i`` holds bit
  ``c_i`` from the paper.
* **signatures** — unsigned integers where bit position ``i`` stores
  ``c_i``.  Signatures are compact dictionary keys for hash tables and are
  what probers pass around.

This module provides loss-free conversion between the two plus Hamming
arithmetic.  Code length is limited to 63 bits so that signatures fit in
``int64``; the paper never exceeds 28 bits (code length is chosen as
``log2(N / 10)``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_CODE_LENGTH",
    "pack_bits",
    "unpack_bits",
    "hamming_distance",
    "hamming_weight",
    "validate_code_length",
]

MAX_CODE_LENGTH = 63


def validate_code_length(m: int) -> int:
    """Return ``m`` if it is a usable code length, raise otherwise."""
    if not isinstance(m, (int, np.integer)):
        raise TypeError(f"code length must be an integer, got {type(m).__name__}")
    if not 1 <= m <= MAX_CODE_LENGTH:
        raise ValueError(
            f"code length must be in [1, {MAX_CODE_LENGTH}], got {m}"
        )
    return int(m)


def pack_bits(bits: np.ndarray) -> np.ndarray | int:
    """Pack a ``(n, m)`` or ``(m,)`` array of {0, 1} into integer signatures.

    Bit ``i`` of each code becomes bit position ``i`` of the signature, so
    ``pack_bits([1, 0, 1]) == 0b101 == 5``.

    Returns an ``int64`` array of shape ``(n,)``, or a scalar ``int`` for a
    single code.
    """
    # Deliberately dtype-polymorphic: accepts bool/int/float {0, 1}
    # arrays; entries are range-checked below, then cast to int64.
    arr = np.asarray(bits)  # reprolint: disable=RL002
    single = arr.ndim == 1
    if single:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D bit array, got ndim={arr.ndim}")
    m = validate_code_length(arr.shape[1])
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise ValueError("bit array entries must be 0 or 1")
    weights = (np.int64(1) << np.arange(m, dtype=np.int64))
    sigs = (arr.astype(np.int64) * weights).sum(axis=1)
    if single:
        return int(sigs[0])
    return sigs


def unpack_bits(signatures: np.ndarray | int, m: int) -> np.ndarray:
    """Unpack integer signatures back into a {0, 1} bit array.

    Inverse of :func:`pack_bits`.  Returns shape ``(m,)`` for a scalar
    input and ``(n, m)`` for an array.
    """
    m = validate_code_length(m)
    scalar = np.isscalar(signatures)
    sigs = np.atleast_1d(np.asarray(signatures, dtype=np.int64))
    if sigs.size and (sigs.min() < 0 or sigs.max() >= (1 << m)):
        raise ValueError(f"signature out of range for code length {m}")
    positions = np.arange(m, dtype=np.int64)
    bits = ((sigs[:, np.newaxis] >> positions) & 1).astype(np.uint8)
    if scalar:
        return bits[0]
    return bits


def hamming_weight(signatures: np.ndarray | int) -> np.ndarray | int:
    """Number of set bits (popcount) of each signature."""
    scalar = np.isscalar(signatures)
    sigs = np.atleast_1d(np.asarray(signatures, dtype=np.uint64))
    counts = np.bitwise_count(sigs).astype(np.int64)
    if scalar:
        return int(counts[0])
    return counts


def hamming_distance(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    """Hamming distance between signatures (broadcasting like ``a ^ b``)."""
    both_scalar = np.isscalar(a) and np.isscalar(b)
    xa = np.asarray(a, dtype=np.uint64)
    xb = np.asarray(b, dtype=np.uint64)
    counts = np.bitwise_count(xa ^ xb).astype(np.int64)
    if both_scalar:
        return int(counts)
    return counts
