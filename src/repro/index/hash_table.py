"""Hash-table substrate: buckets of item ids keyed by binary signature.

A :class:`HashTable` is the storage layer shared by every querying method
in this package.  It maps each occupied ``m``-bit signature to the array
of item ids whose code equals that signature.  Empty buckets are not
stored — with code length ``m ≈ log2(N / 10)`` most of the ``2^m`` code
space is occupied, but probers must still tolerate missing signatures.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

import numpy as np

from repro.index.codes import pack_bits, validate_code_length

__all__ = ["HashTable"]


class HashTable:
    """Bucketed storage of item ids keyed by integer code signature.

    Parameters
    ----------
    codes:
        ``(n, m)`` bit array or ``(n,)`` integer signatures of the indexed
        items.  Item ids are their row positions (``0 … n-1``) unless
        ``ids`` is given.
    code_length:
        Required when ``codes`` is already packed into signatures.
    ids:
        Optional explicit item ids aligned with ``codes``.
    """

    def __init__(
        self,
        codes: np.ndarray,
        code_length: int | None = None,
        ids: np.ndarray | None = None,
    ) -> None:
        # Deliberately dtype-polymorphic: accepts bool/int bit matrices
        # or packed signatures; both branches below pin int64.
        arr = np.asarray(codes)  # reprolint: disable=RL002
        if arr.ndim == 2:
            m = validate_code_length(arr.shape[1])
            signatures = np.asarray(pack_bits(arr), dtype=np.int64)
        elif arr.ndim == 1:
            if code_length is None:
                raise ValueError(
                    "code_length is required when codes are packed signatures"
                )
            m = validate_code_length(code_length)
            signatures = arr.astype(np.int64)
        else:
            raise ValueError(f"codes must be 1-D or 2-D, got ndim={arr.ndim}")
        if code_length is not None and code_length != m:
            raise ValueError(
                f"code_length={code_length} disagrees with codes width {m}"
            )

        n = len(signatures)
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if len(ids) != n:
                raise ValueError("ids must align with codes")

        self._m = m
        self._n = n
        # Group ids by signature with one argsort instead of n dict appends.
        order = np.argsort(signatures, kind="stable")
        sorted_sigs = signatures[order]
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_sigs)) + 1
        groups = np.split(sorted_ids, boundaries)
        uniques = sorted_sigs[np.concatenate(([0], boundaries))] if n else []
        self._buckets: dict[int, np.ndarray] = {
            int(sig): group for sig, group in zip(uniques, groups)
        }
        self._layout: tuple[np.ndarray, ...] | None = None
        # The table is immutable but the layout cache is not: parallel
        # batch workers may race to build it on first use.
        self._layout_lock = threading.Lock()

    @property
    def code_length(self) -> int:
        """Number of bits per code."""
        return self._m

    @property
    def num_items(self) -> int:
        """Total number of indexed items."""
        return self._n

    @property
    def num_buckets(self) -> int:
        """Number of occupied buckets."""
        return len(self._buckets)

    def get(self, signature: int) -> np.ndarray:
        """Item ids in the bucket, or an empty array if unoccupied."""
        return self._buckets.get(int(signature), _EMPTY_IDS)

    def __contains__(self, signature: int) -> bool:
        return int(signature) in self._buckets

    def signatures(self) -> Iterator[int]:
        """Iterate over the occupied bucket signatures."""
        return iter(self._buckets)

    def dense_layout(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style view: ``(signatures, sizes, offsets, ids_flat)``.

        Occupied signatures in ascending order, each bucket's size, its
        start offset into the flat id array, and all ids concatenated in
        that order.  Built lazily and cached — the table is immutable —
        so batched execution pays the flattening cost once per table.
        """
        layout = self._layout
        if layout is None:
            # Double-checked: the fast path above stays lock-free once
            # built (assignment of the ready tuple is atomic), losers
            # of the build race just re-read the winner's tuple.
            with self._layout_lock:
                layout = self._layout
                if layout is None:
                    count = len(self._buckets)
                    signatures = np.fromiter(
                        self._buckets, dtype=np.int64, count=count
                    )
                    sizes = np.fromiter(
                        (len(ids) for ids in self._buckets.values()),
                        dtype=np.int64,
                        count=count,
                    )
                    ids_flat = (
                        np.concatenate(list(self._buckets.values()))
                        if count
                        else _EMPTY_IDS
                    )
                    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
                    layout = (signatures, sizes, offsets, ids_flat)
                    self._layout = layout
        return layout

    def bucket_sizes(self) -> dict[int, int]:
        """Mapping of signature to bucket population."""
        return {sig: len(ids) for sig, ids in self._buckets.items()}

    def expected_population(self) -> float:
        """Average number of items per occupied bucket (the paper's EP)."""
        if not self._buckets:
            return 0.0
        return self._n / len(self._buckets)

    def memory_bytes(self) -> int:
        """Approximate resident size: id arrays plus dict overhead.

        Used for the paper's memory-efficiency comparisons (e.g. the
        multi-table trade-off of Figure 12).
        """
        id_bytes = sum(ids.nbytes for ids in self._buckets.values())
        # 8-byte key + ~100 bytes/entry dict overhead, a CPython-ish
        # estimate that keeps multi-table ratios honest.
        overhead = len(self._buckets) * 108
        return id_bytes + overhead

    def __repr__(self) -> str:
        return (
            f"HashTable(code_length={self._m}, items={self._n}, "
            f"buckets={self.num_buckets})"
        )


_EMPTY_IDS = np.empty(0, dtype=np.int64)
