"""Exact brute-force k-nearest-neighbour search.

The paper reports linear-scan time as the baseline cost of exact search
(Table 1) and uses exact neighbours as ground truth for recall.  This is
a blocked NumPy implementation: distances are computed block-by-block so
memory stays bounded for large datasets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearScan", "euclidean_distances", "knn_linear_scan"]


def euclidean_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances, shape ``(len(queries), len(data))``.

    Uses the expansion ``‖q − x‖² = ‖q‖² − 2q·x + ‖x‖²`` with clipping to
    guard against tiny negative values from floating-point cancellation.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    x = np.atleast_2d(np.asarray(data, dtype=np.float64))
    sq = (q * q).sum(axis=1)[:, np.newaxis]
    sx = (x * x).sum(axis=1)[np.newaxis, :]
    d2 = sq - 2.0 * (q @ x.T) + sx
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def knn_linear_scan(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    block_size: int = 4096,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k nearest neighbours of each query by blocked linear scan.

    Returns ``(ids, distances)`` with shapes ``(n_queries, k)``, each row
    sorted by ascending distance.  Ties are broken by item id for
    determinism.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    x = np.asarray(data, dtype=np.float64)
    n = len(x)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    all_ids = np.empty((len(q), k), dtype=np.int64)
    all_dists = np.empty((len(q), k), dtype=np.float64)
    for start in range(0, len(q), block_size):
        block = q[start : start + block_size]
        dists = euclidean_distances(block, x)
        # argpartition then sort only the k survivors: O(n + k log k)/query.
        part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(dists, part, axis=1)
        order = np.lexsort((part, part_d), axis=1)
        all_ids[start : start + block_size] = np.take_along_axis(part, order, axis=1)
        all_dists[start : start + block_size] = np.take_along_axis(
            part_d, order, axis=1
        )
    return all_ids, all_dists


class LinearScan:
    """Object wrapper over :func:`knn_linear_scan` for harness symmetry."""

    def __init__(self, data: np.ndarray, block_size: int = 4096) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        self._block_size = block_size

    @property
    def num_items(self) -> int:
        return len(self._data)

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact kNN ids and distances for a batch of queries."""
        return knn_linear_scan(queries, self._data, k, self._block_size)
