"""Distance metrics for candidate evaluation and ground truth.

Section 4 of the paper conducts its analysis on Euclidean distance but
notes that "other similarity metrics such as angular distance can also
be adapted with some modifications".  This module provides both:

* **euclidean** — ``‖q − x‖₂``; pairs with any hasher, and with the
  Theorem 2 lower bound.
* **angular** — the angle ``arccos(q·x / (‖q‖·‖x‖))``; pairs naturally
  with sign-random-projection hashing, where each hyperplane crossing
  corresponds to angular displacement, so ``|p_i(q)|`` remains a
  meaningful flip cost after normalising the hash vectors.
"""

from __future__ import annotations

import numpy as np

from repro.index.linear_scan import euclidean_distances

__all__ = [
    "METRICS",
    "angular_distances",
    "cosine_distances",
    "pairwise_distances",
    "knn_exact",
]


def _rescale_extreme_rows(m: np.ndarray) -> np.ndarray:
    """Rescale rows whose magnitude would under/overflow when squared.

    Norm computation squares entries, so rows around 1e-161 produce
    subnormal squares whose rounding error (up to ~0.5%) destroys the
    scale invariance of cosine/angular distances.  Cosine is invariant
    under positive row scaling, so dividing an extreme row by its peak
    absolute value is exact in meaning and keeps every square in the
    well-conditioned range.  Rows of ordinary magnitude pass through
    untouched (bit-identical results).
    """
    peak = np.max(np.abs(m), axis=1, keepdims=True)
    extreme = (peak != 0) & ((peak < 1e-100) | (peak > 1e100))
    if not extreme.any():
        return m
    m = m.copy()
    np.divide(m, peak, out=m, where=extreme)
    return m


def cosine_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """``1 − cos(q, x)`` pairwise; zero-norm vectors get distance 1."""
    q = _rescale_extreme_rows(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
    x = _rescale_extreme_rows(np.atleast_2d(np.asarray(data, dtype=np.float64)))
    qn = np.linalg.norm(q, axis=1, keepdims=True)
    xn = np.linalg.norm(x, axis=1, keepdims=True)
    qn[qn == 0] = 1.0
    xn[xn == 0] = 1.0
    sims = (q / qn) @ (x / xn).T
    np.clip(sims, -1.0, 1.0, out=sims)
    return 1.0 - sims


def angular_distances(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Pairwise angles in radians, ``arccos`` of the cosine similarity."""
    return np.arccos(1.0 - cosine_distances(queries, data))


METRICS = {
    "euclidean": euclidean_distances,
    "cosine": cosine_distances,
    "angular": angular_distances,
}


def pairwise_distances(
    queries: np.ndarray, data: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Dispatch to a named metric; raises ``KeyError`` listing options."""
    try:
        fn = METRICS[metric]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; options: {sorted(METRICS)}"
        ) from None
    return fn(queries, data)


def knn_exact(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    metric: str = "euclidean",
    block_size: int = 4096,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact kNN under any registered metric (blocked, tie-broken by id)."""
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    x = np.asarray(data, dtype=np.float64)
    n = len(x)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    all_ids = np.empty((len(q), k), dtype=np.int64)
    all_dists = np.empty((len(q), k), dtype=np.float64)
    for start in range(0, len(q), block_size):
        block = q[start : start + block_size]
        dists = pairwise_distances(block, x, metric)
        part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(dists, part, axis=1)
        order = np.lexsort((part, part_d), axis=1)
        all_ids[start : start + block_size] = np.take_along_axis(
            part, order, axis=1
        )
        all_dists[start : start + block_size] = np.take_along_axis(
            part_d, order, axis=1
        )
    return all_ids, all_dists
