"""Query-aware LSH (QALSH).

Huang et al., *Query-Aware Locality-Sensitive Hashing for Approximate
Nearest Neighbor Search* (PVLDB 2015), one of the related-work systems
in Section 7 of the paper.

QALSH drops quantization entirely: each hash function is a random
projection ``h_i(o) = a_i · o`` and items are conceptually kept sorted
by projection value (the paper uses B+ trees).  A query anchors a
window at ``h_i(q)`` in every list and widens all windows outward in
lock-step; an item becomes a candidate once it has *collided* with the
query (appeared inside the window) in at least ``collision_threshold``
of the lists.  This query-aware anchoring avoids the boundary problem
of pre-quantized buckets — the same problem QD solves for L2H — which
makes QALSH the natural LSH-side comparison point.

Implementation note: because the windows widen one item per list per
round, the round at which item ``o`` collides in list ``i`` equals
``o``'s rank by ``|h_i(o) − h_i(q)|`` in that list, and the emission
round of ``o`` is the ``l``-th smallest of its per-list ranks.  We
compute that order-statistic directly with NumPy instead of simulating
the widening loop — identical emission order, orders of magnitude
faster in Python.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["QALSH"]


class QALSH:
    """In-memory QALSH index over random projections.

    Parameters
    ----------
    data:
        ``(n, d)`` items to index.
    n_projections:
        Number of hash functions / sorted lists ``m``.
    collision_threshold:
        Collisions required before an item becomes a candidate ``l``;
        must satisfy ``1 ≤ l ≤ m``.
    seed:
        Seed for the random projection directions.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_projections: int = 16,
        collision_threshold: int = 4,
        seed: int | None = None,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if n_projections < 1:
            raise ValueError("n_projections must be positive")
        if not 1 <= collision_threshold <= n_projections:
            raise ValueError(
                "collision_threshold must be in [1, n_projections]"
            )
        rng = np.random.default_rng(seed)
        d = data.shape[1]
        self._directions = rng.standard_normal((d, n_projections))
        self._projections = data @ self._directions  # (n, m)
        self._n = len(data)
        self._m = n_projections
        self._threshold = collision_threshold

    @property
    def num_items(self) -> int:
        return self._n

    @property
    def n_projections(self) -> int:
        return self._m

    def emission_rounds(self, query: np.ndarray) -> np.ndarray:
        """Round at which each item crosses the collision threshold.

        Item ``o`` collides in list ``i`` at round ``rank_i(o)`` (its
        position by anchor gap); it is emitted at the ``l``-th smallest
        of those ranks.
        """
        query = np.asarray(query, dtype=np.float64)
        anchors = query @ self._directions  # (m,)
        gaps = np.abs(self._projections - anchors[np.newaxis, :])
        # rank of each item within each list, by gap (stable by id).
        ranks = np.empty_like(gaps, dtype=np.int64)
        order = np.argsort(gaps, axis=0, kind="stable")
        rows = np.arange(self._n)
        for i in range(self._m):
            ranks[order[:, i], i] = rows
        return np.partition(ranks, self._threshold - 1, axis=1)[
            :, self._threshold - 1
        ]

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]:
        """Yield candidate-id batches in collision (emission-round) order.

        Every item is eventually emitted exactly once (it appears in
        all ``m`` lists, so its collision count reaches any threshold),
        so full recall is always reachable.
        """
        emission = self.emission_rounds(query)
        order = np.argsort(emission, kind="stable")
        sorted_rounds = emission[order]
        boundaries = np.flatnonzero(np.diff(sorted_rounds)) + 1
        for batch in np.split(order, boundaries):
            yield batch.astype(np.int64)
