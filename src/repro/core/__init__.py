"""The paper's contribution: quantization distance, QR and GQR."""

from repro.core.generation_tree import (
    FlippingVectorGenerator,
    SharedGenerationTree,
    append_move,
    mask_cost,
    swap_move,
)
from repro.core.gqr import GQR
from repro.core.prober import BucketProber, collect_candidates
from repro.core.qd_ranking import QDRanking
from repro.core.quantization_distance import (
    distance_lower_bound,
    quantization_distance,
    quantization_distances,
    theorem2_mu,
)

__all__ = [
    "GQR",
    "BucketProber",
    "FlippingVectorGenerator",
    "QDRanking",
    "SharedGenerationTree",
    "append_move",
    "collect_candidates",
    "distance_lower_bound",
    "mask_cost",
    "quantization_distance",
    "quantization_distances",
    "swap_move",
    "theorem2_mu",
]
