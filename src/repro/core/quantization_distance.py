"""Quantization distance (QD) — Definition 1 and Theorem 2 of the paper.

The quantization distance between a query ``q`` and a bucket ``b`` is

    dist(q, b) = Σ_i (c_i(q) ⊕ b_i) · |p_i(q)|

— the minimum L1 change to the projected query vector ``p(q)`` that
re-quantizes ``q`` into ``b``.  Unlike integer Hamming distance it is
continuous, distinguishes buckets within the same Hamming ring, and by
Theorem 2 lower-bounds the true distance of every item in the bucket:

    ‖o − q‖₂ ≥ µ · dist(q, b),   µ = 1 / (M·√m),   M = σ_max(H).
"""

from __future__ import annotations

import numpy as np

from repro.index.codes import unpack_bits, validate_code_length

__all__ = [
    "quantization_distance",
    "quantization_distances",
    "batch_quantization_distances",
    "theorem2_mu",
    "distance_lower_bound",
]


def quantization_distance(
    query_signature: int, bucket_signature: int, flip_costs: np.ndarray
) -> float:
    """QD between one query and one bucket (Definition 1).

    ``flip_costs`` is ``|p(q)|`` for threshold hashers (or codeword flip
    costs for K-means hashing), indexed by bit position.
    """
    costs = np.asarray(flip_costs, dtype=np.float64)
    m = validate_code_length(len(costs))
    differing = unpack_bits(int(query_signature) ^ int(bucket_signature), m)
    return float(differing @ costs)


def quantization_distances(
    query_signature: int, bucket_signatures: np.ndarray, flip_costs: np.ndarray
) -> np.ndarray:
    """Vectorised QD from one query to many buckets.

    This is the sorting key of QD ranking (Algorithm 1): the whole bucket
    list is scored in one ``(B, m) @ (m,)`` product.
    """
    costs = np.asarray(flip_costs, dtype=np.float64)
    m = validate_code_length(len(costs))
    sigs = np.asarray(bucket_signatures, dtype=np.int64)
    differing = unpack_bits(sigs ^ np.int64(query_signature), m)
    return differing.astype(np.float64) @ costs


def batch_quantization_distances(
    query_bits: np.ndarray,
    cost_matrix: np.ndarray,
    bucket_bits: np.ndarray,
) -> np.ndarray:
    """QD from every query in a batch to every bucket, two matmuls total.

    For query ``q`` and bucket ``b``, ``qd = Σ_i (c_i(q) ⊕ b_i)·cost_i(q)``
    splits by the query's bit value: bits where the query has 0 cost when
    the bucket has 1, and vice versa.  Each half is a ``(B, m) @ (m, nb)``
    product, so the whole batch is scored in one shot — the vectorised
    counterpart of calling :func:`quantization_distances` per query.
    """
    qb = np.asarray(query_bits, dtype=np.float64)
    costs = np.asarray(cost_matrix, dtype=np.float64)
    bits = np.asarray(bucket_bits, dtype=np.float64)
    return (costs * (1.0 - qb)) @ bits.T + (costs * qb) @ (1.0 - bits).T


def theorem2_mu(hashing_matrix: np.ndarray) -> float:
    """The Theorem 2 scaling factor ``µ = 1/(σ_max(H)·√m)``."""
    h = np.asarray(hashing_matrix, dtype=np.float64)
    if h.ndim != 2:
        raise ValueError("hashing matrix must be 2-D (m, d)")
    m = h.shape[0]
    sigma_max = float(np.linalg.norm(h, ord=2))
    if sigma_max <= 0:
        raise ValueError("hashing matrix must be non-zero")
    return 1.0 / (sigma_max * np.sqrt(m))


def distance_lower_bound(
    qd: float | np.ndarray, mu: float
) -> float | np.ndarray:
    """Theorem 2 lower bound ``µ·dist(q, b)`` on ``‖o − q‖₂`` for o ∈ b.

    Useful as an early-stop rule: once every unprobed bucket's bound
    exceeds the current k-th nearest distance, probing can stop without
    losing exactness of the candidate ranking.
    """
    return mu * qd
