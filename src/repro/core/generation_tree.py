"""Flipping vectors and the Append/Swap generation tree (Section 5).

A *flipping vector* ``v`` marks the bits in which a bucket differs from
the query's code (Definition 2): ``b = c(q) ⊕ v`` and
``dist(q, b) = Σ v_i |p_i(q)|``.  GQR never sorts buckets; it generates
*sorted flipping vectors* — masks over the ascending-cost permutation of
``|p(q)|`` — in non-decreasing QD order using two moves on the rightmost
set bit (Definition 4):

* ``Append``: set the bit just right of the rightmost 1
  (cost `+ cost[j+1]`);
* ``Swap``: move the rightmost 1 one position right
  (cost `+ cost[j+1] − cost[j]`).

Rooted at ``(1, 0, …, 0)``, these moves form a binary tree containing
every non-zero vector exactly once (Property 1) in which children never
cost less than parents (Property 2), so a min-heap over tree nodes emits
vectors in exactly ascending-QD order — Algorithm 4.

Masks here are integers whose bit ``i`` is the ``(i+1)``-th entry of the
sorted flipping vector, i.e. bit 0 flips the *cheapest* position; the
"rightmost 1" of the paper is the *highest* set bit of the mask.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.index.codes import validate_code_length

__all__ = [
    "append_move",
    "swap_move",
    "FlippingVectorGenerator",
    "SharedGenerationTree",
    "mask_cost",
]


def _rightmost_one(mask: int) -> int:
    """Index of the paper's "rightmost 1" — the highest set bit."""
    return mask.bit_length() - 1


def append_move(mask: int) -> int:
    """``Append``: add a 1 just past the rightmost 1."""
    return mask | (1 << (_rightmost_one(mask) + 1))


def swap_move(mask: int) -> int:
    """``Swap``: move the rightmost 1 one position further right."""
    j = _rightmost_one(mask)
    return (mask & ~(1 << j)) | (1 << (j + 1))


def mask_cost(mask: int, sorted_costs: np.ndarray) -> float:
    """QD of a sorted flipping vector: sum of costs at its set bits."""
    total = 0.0
    remaining = mask
    while remaining:
        low = remaining & -remaining
        total += float(sorted_costs[low.bit_length() - 1])
        remaining ^= low
    return total


class FlippingVectorGenerator:
    """Lazily emit sorted-flipping-vector masks in ascending QD order.

    This is the ``generate_bucket`` heap of Algorithm 4.  The first
    emitted mask is always ``0`` (probe the query's own bucket), after
    which masks cover all ``2^m − 1`` non-zero vectors exactly once, in
    non-decreasing ``Σ cost`` order.

    Parameters
    ----------
    sorted_costs:
        Flip costs sorted ascending (the *sorted projected vector*
        ``p̄(q)`` of Definition 3).  Must be non-negative.
    """

    def __init__(self, sorted_costs: np.ndarray) -> None:
        costs = np.asarray(sorted_costs, dtype=np.float64)
        if costs.ndim != 1:
            raise ValueError("sorted_costs must be 1-D")
        m = validate_code_length(len(costs))
        if len(costs) > 1 and np.any(np.diff(costs) < 0):
            raise ValueError("sorted_costs must be ascending")
        if costs[0] < 0:
            raise ValueError("flip costs must be non-negative")
        self._costs = costs
        self._m = m
        # Heap entries are (cost, mask); mask is the deterministic
        # tie-break so equal-cost vectors emit in a stable order.
        self._heap: list[tuple[float, int]] = []
        self._started = False
        self._emitted = 0

    @property
    def heap_size(self) -> int:
        """Current heap occupancy (the paper proves it is ≤ #emitted)."""
        return len(self._heap)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        """Yield ``(mask, cost)`` pairs; ``2^m`` of them in total."""
        if self._started:
            raise RuntimeError("generator can only be iterated once")
        self._started = True

        yield 0, 0.0
        self._emitted = 1
        heapq.heappush(self._heap, (float(self._costs[0]), 1))

        while self._heap:
            cost, mask = heapq.heappop(self._heap)
            j = _rightmost_one(mask)
            if j + 1 < self._m:
                step = float(self._costs[j + 1])
                heapq.heappush(self._heap, (cost + step, append_move(mask)))
                heapq.heappush(
                    self._heap,
                    (cost + step - float(self._costs[j]), swap_move(mask)),
                )
            self._emitted += 1
            yield mask, cost


class SharedGenerationTree:
    """Precomputed Append/Swap children, shared across queries.

    The paper's final optimisation remark: the generation tree's *shape*
    is query-independent, so the child masks of every node can be coded
    as integers once and reused by all queries — only the heap priorities
    depend on the query.  Children are memoised on first touch, bounded
    by ``max_nodes`` to keep memory predictable.
    """

    #: Above this code length a flat node table (3 ints per possible
    #: mask) would dominate memory, so the cache degrades to a dict.
    FLAT_TABLE_LIMIT = 16

    def __init__(self, code_length: int, max_nodes: int = 1 << 20) -> None:
        self._m = validate_code_length(code_length)
        self._max_nodes = max_nodes
        # mask -> (append_child, swap_child, rightmost_one); -1 = leaf.
        # Flat list indexed by mask for short codes (O(1), no hashing);
        # dict for long codes where 2^m entries would be wasteful.
        self._flat = self._m <= self.FLAT_TABLE_LIMIT
        if self._flat:
            self._table: list[tuple[int, int, int] | None] = (
                [None] * (1 << self._m)
            )
            self._cached = 0
        else:
            self._children: dict[int, tuple[int, int, int]] = {}

    @property
    def code_length(self) -> int:
        return self._m

    @property
    def num_cached_nodes(self) -> int:
        return self._cached if self._flat else len(self._children)

    def children(self, mask: int) -> tuple[int, int, int]:
        """``(append_child, swap_child, rightmost_one)`` of a node.

        Children are ``-1`` when the node is a leaf (rightmost 1 already
        at position ``m − 1``).
        """
        cached = self._table[mask] if self._flat else self._children.get(mask)
        if cached is not None:
            return cached
        j = _rightmost_one(mask)
        if j + 1 >= self._m:
            result = (-1, -1, j)
        else:
            result = (append_move(mask), swap_move(mask), j)
        if self._flat:
            if self._cached < self._max_nodes:
                self._table[mask] = result
                self._cached += 1
        elif len(self._children) < self._max_nodes:
            self._children[mask] = result
        return result

    def generate(self, sorted_costs: np.ndarray) -> Iterator[tuple[int, float]]:
        """Same stream as :class:`FlippingVectorGenerator` via the cache."""
        costs = np.asarray(sorted_costs, dtype=np.float64)
        if len(costs) != self._m:
            raise ValueError(
                f"expected {self._m} costs, got {len(costs)}"
            )
        cost_list = [float(c) for c in costs]
        yield 0, 0.0
        heap: list[tuple[float, int]] = [(cost_list[0], 1)]
        push = heapq.heappush
        pop = heapq.heappop
        children = self.children
        while heap:
            cost, mask = pop(heap)
            append_child, swap_child, j = children(mask)
            if append_child >= 0:
                step = cost_list[j + 1]
                push(heap, (cost + step, append_child))
                push(heap, (cost + step - cost_list[j], swap_child))
            yield mask, cost
