"""QD ranking (QR) — Algorithm 1.

Score every occupied bucket by quantization distance, sort ascending,
probe in order.  Retrieval is O(B log B) in the number of buckets (the
"slow start" GQR later removes), but the probe order itself is what
delivers the paper's accuracy gains over Hamming ranking: QD can
distinguish buckets inside the same Hamming ring.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.prober import BucketProber
from repro.core.quantization_distance import (
    batch_quantization_distances,
    quantization_distances,
)
from repro.index.hash_table import HashTable

__all__ = ["QDRanking"]


class QDRanking(BucketProber):
    """Sort all occupied buckets by quantization distance (Algorithm 1)."""

    generates_unoccupied = False

    def probe(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[int]:
        buckets = np.fromiter(table.signatures(), dtype=np.int64, count=table.num_buckets)
        if not len(buckets):
            return
        distances = quantization_distances(signature, buckets, flip_costs)
        # Tie-break on signature so QR's order is deterministic and
        # comparable with GQR's stable generation order.
        order = np.lexsort((buckets, distances))
        yield from (int(sig) for sig in buckets[order])

    def batch_scores(
        self,
        bucket_signatures: np.ndarray,
        bucket_bits: np.ndarray,
        query_signatures: np.ndarray,
        query_bits: np.ndarray,
        cost_matrix: np.ndarray,
    ) -> np.ndarray:
        """Vectorised QD of every (query, bucket) pair — Algorithm 1 batched."""
        del bucket_signatures, query_signatures
        return batch_quantization_distances(
            query_bits, cost_matrix, bucket_bits
        )
