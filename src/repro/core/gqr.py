"""Generate-to-probe QD ranking (GQR) — Algorithms 2–4.

GQR probes buckets in exactly the same ascending-QD order as QD ranking
but *generates* the next bucket on demand instead of sorting all buckets
up front, fixing QR's slow start.  Per query it:

1. sorts the ``m`` flip costs once (the *sorted projected vector*,
   Definition 3) and remembers the permutation ``f``;
2. runs a min-heap over the Append/Swap generation tree
   (:mod:`repro.core.generation_tree`) to emit sorted flipping vectors
   in non-decreasing QD order;
3. maps each sorted vector back through ``f`` and XORs it onto the
   query's code (Algorithm 3) to obtain the bucket signature.

Correctness rests on the tree's Properties 1 and 2: every bucket is
generated exactly once and in ascending QD.  A
:class:`~repro.core.generation_tree.SharedGenerationTree` can be plugged
in to reuse precomputed tree structure across queries (the paper's final
optimisation remark).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.core.generation_tree import FlippingVectorGenerator, SharedGenerationTree
from repro.core.prober import BucketProber
from repro.core.quantization_distance import batch_quantization_distances
from repro.index.hash_table import HashTable

__all__ = ["GQR"]


class GQR(BucketProber):
    """Generate-to-probe QD ranking (Algorithm 2).

    Parameters
    ----------
    shared_tree:
        Optional precomputed generation tree shared across queries; must
        match the table's code length.  ``None`` builds the tree lazily
        per query (pure Algorithm 4).
    cost_transform:
        Optional monotone map applied to flip costs before ranking, e.g.
        ``numpy.square`` turns GQR into the Multi-Probe-LSH-style score
        of Section 5's comparison.  Must preserve non-negativity.
    """

    generates_unoccupied = True

    def __init__(
        self,
        shared_tree: SharedGenerationTree | None = None,
        cost_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        self._shared_tree = shared_tree
        self._cost_transform = cost_transform

    def probe(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[int]:
        for bucket, _ in self.probe_scored(table, signature, flip_costs):
            yield bucket

    def probe_scored(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[tuple[int, float]]:
        """Yield ``(bucket_signature, quantization_distance)`` pairs.

        The QD stream is non-decreasing, which enables the Theorem 2
        early-stop rule in the search layer.
        """
        costs = np.asarray(flip_costs, dtype=np.float64)
        m = table.code_length
        if len(costs) != m:
            raise ValueError(
                f"expected {m} flip costs for table, got {len(costs)}"
            )
        if self._cost_transform is not None:
            costs = np.asarray(self._cost_transform(costs), dtype=np.float64)
            if costs.shape != (m,) or np.any(costs < 0):
                raise ValueError("cost_transform must keep (m,) non-negative costs")

        # f: sorted position -> original bit position (Definition 3).
        permutation = np.argsort(costs, kind="stable")
        sorted_costs = costs[permutation]
        # Algorithm 3 reduced to an XOR: sorted-mask bit x flips query
        # bit permutation[x].
        bit_map = [1 << int(pos) for pos in permutation]

        if self._shared_tree is not None:
            if self._shared_tree.code_length != m:
                raise ValueError(
                    "shared tree code length does not match table"
                )
            stream = self._shared_tree.generate(sorted_costs)
        else:
            stream = iter(FlippingVectorGenerator(sorted_costs))

        for mask, cost in stream:
            flip = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                flip ^= bit_map[low.bit_length() - 1]
                remaining ^= low
            yield signature ^ flip, cost

    def batch_scores(
        self,
        bucket_signatures: np.ndarray,
        bucket_bits: np.ndarray,
        query_signatures: np.ndarray,
        query_bits: np.ndarray,
        cost_matrix: np.ndarray,
    ) -> np.ndarray:
        """Vectorised QD over occupied buckets for a whole query batch.

        Restricted to occupied buckets, GQR's ascending-QD generation
        order coincides with QD ranking's sorted order, so the batched
        fast path scores occupied buckets directly instead of walking
        the generation tree per query.
        """
        del bucket_signatures, query_signatures
        costs = np.asarray(cost_matrix, dtype=np.float64)
        if self._cost_transform is not None:
            costs = np.stack(
                [
                    np.asarray(self._cost_transform(row), dtype=np.float64)
                    for row in costs
                ]
            )
            if costs.shape != cost_matrix.shape or np.any(costs < 0):
                raise ValueError(
                    "cost_transform must keep (m,) non-negative costs"
                )
        return batch_quantization_distances(query_bits, costs, bucket_bits)
