"""Prober interface: the querying-method contract.

A *querying method* (Section 2.2) decides which buckets of a hash table
to probe, and in what order.  Every method in this package — Hamming
ranking, generate-to-probe Hamming ranking, QD ranking, GQR, Multi-Probe
LSH — implements :class:`BucketProber`: given the query's binary code
signature and per-bit flip costs (see
:meth:`repro.hashing.base.BinaryHasher.probe_info`), yield bucket
signatures best-first.

Probers are deliberately ignorant of raw vectors: retrieval (choosing
buckets) is separated from evaluation (exact re-ranking of the gathered
candidates), mirroring the paper's cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from repro.index.hash_table import HashTable

__all__ = ["BucketProber", "collect_candidates"]


class BucketProber(ABC):
    """Order the buckets of a hash table for one query."""

    #: Whether the prober enumerates the whole code space (generate-to-
    #: probe methods) or only occupied buckets (sorting methods).  Purely
    #: informational; both kinds eventually cover every stored item.
    generates_unoccupied: bool = False

    @abstractmethod
    def probe(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[int]:
        """Yield bucket signatures in probe order, each at most once."""

    def batch_scores(
        self,
        bucket_signatures: np.ndarray,
        bucket_bits: np.ndarray,
        query_signatures: np.ndarray,
        query_bits: np.ndarray,
        cost_matrix: np.ndarray,
    ) -> np.ndarray | None:
        """Score every occupied bucket for every query at once, or ``None``.

        Probers whose probe order is "sort occupied buckets by a score,
        ties by signature" can vectorise that score across a query batch
        — one ``(B, nb)`` matrix instead of B generator walks.  The
        query-execution engine uses this as the batched retrieval fast
        path; returning ``None`` (the default) keeps the per-query
        stream path.
        """
        del bucket_signatures, bucket_bits, query_signatures
        del query_bits, cost_matrix
        return None

    def collect(
        self,
        table: HashTable,
        signature: int,
        flip_costs: np.ndarray,
        n_candidates: int,
    ) -> np.ndarray:
        """Gather item ids bucket-by-bucket until ``n_candidates`` reached.

        This is the retrieval loop of Algorithms 1 and 2: probe buckets
        in order, append their items, stop once at least ``n_candidates``
        ids are collected (or every bucket was probed).  The final bucket
        is included whole, so slightly more than ``n_candidates`` ids may
        return — exactly like the pseudo-code's ``while |C| < N``.
        """
        return collect_candidates(
            self.probe(table, signature, flip_costs), table, n_candidates
        )


def collect_candidates(
    bucket_order: Iterator[int], table: HashTable, n_candidates: int
) -> np.ndarray:
    """Drain ``bucket_order`` into item ids until the budget is met."""
    if n_candidates < 1:
        raise ValueError("n_candidates must be positive")
    found: list[np.ndarray] = []
    total = 0
    for bucket in bucket_order:
        ids = table.get(bucket)
        if not len(ids):
            continue
        found.append(ids)
        total += len(ids)
        if total >= n_candidates:
            break
    if not found:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(found)
