"""Randomized k-d forest with best-bin-first search (FLANN-style).

Muja & Lowe (VISAPP 2009 / TPAMI 2014), the tree-based *approximate*
method of the paper's related work: multiple k-d trees, each splitting
on a random choice among the top-variance dimensions, searched jointly
with a shared priority queue of unexplored branches ordered by their
distance to the query ("best-bin-first").  The search examines a fixed
budget of leaves across all trees and returns the best points seen.

This is the ANN comparator the paper says has "low preprocessing and
querying efficiency … as the tree is time-consuming to manipulate";
`benchmarks/bench_trees_vs_gqr.py` measures it against GQR.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RandomizedKDForest"]


@dataclass
class _Node:
    split_dim: int = -1
    split_value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def is_leaf(self) -> bool:
        return self.split_dim < 0


class RandomizedKDForest:
    """Forest of randomized k-d trees searched best-bin-first.

    Parameters
    ----------
    data:
        ``(n, d)`` points to index.
    n_trees:
        Number of randomized trees (FLANN uses 4-32).
    leaf_size:
        Points per leaf.
    top_dims:
        Each split picks uniformly among this many highest-variance
        dimensions of the node's points (FLANN's D=5 heuristic).
    seed:
        RNG seed for split choices.
    """

    def __init__(
        self,
        data: np.ndarray,
        n_trees: int = 4,
        leaf_size: int = 16,
        top_dims: int = 5,
        seed: int | None = None,
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if n_trees < 1 or leaf_size < 1 or top_dims < 1:
            raise ValueError("n_trees, leaf_size and top_dims must be positive")
        self._leaf_size = leaf_size
        self._top_dims = top_dims
        rng = np.random.default_rng(seed)
        ids = np.arange(len(self._data), dtype=np.int64)
        self._roots = [self._build(ids, rng) for _ in range(n_trees)]

    def _build(self, ids: np.ndarray, rng: np.random.Generator) -> _Node:
        if len(ids) <= self._leaf_size:
            return _Node(ids=ids)
        points = self._data[ids]
        variances = points.var(axis=0)
        if variances.max() == 0:
            return _Node(ids=ids)
        candidates = np.argsort(variances)[::-1][: self._top_dims]
        candidates = candidates[variances[candidates] > 0]
        dim = int(rng.choice(candidates))
        split_value = float(np.median(points[:, dim]))
        mask = points[:, dim] < split_value
        # Guard against degenerate medians (many equal coordinates).
        if not mask.any() or mask.all():
            order = np.argsort(points[:, dim], kind="stable")
            middle = len(ids) // 2
            left_ids, right_ids = ids[order[:middle]], ids[order[middle:]]
            split_value = float(points[order[middle], dim])
        else:
            left_ids, right_ids = ids[mask], ids[~mask]
        return _Node(
            split_dim=dim,
            split_value=split_value,
            left=self._build(left_ids, rng),
            right=self._build(right_ids, rng),
        )

    @property
    def num_items(self) -> int:
        return len(self._data)

    @property
    def n_trees(self) -> int:
        return len(self._roots)

    def query(
        self, query: np.ndarray, k: int, max_leaves: int = 32
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate kNN examining at most ``max_leaves`` leaves.

        All trees share one priority queue keyed by the accumulated
        boundary distance of the path (best-bin-first); duplicates
        across trees are deduplicated before the final ranking.
        """
        query = np.asarray(query, dtype=np.float64)
        if not 1 <= k <= len(self._data):
            raise ValueError(f"k must be in [1, {len(self._data)}]")
        # Heap of (bound, counter, node); counter breaks ties.
        heap: list[tuple[float, int, _Node]] = []
        counter = 0
        seen_ids: list[np.ndarray] = []

        def descend(node: _Node, bound: float) -> None:
            nonlocal counter
            while not node.is_leaf:
                gap = query[node.split_dim] - node.split_value
                near, far = (
                    (node.left, node.right)
                    if gap < 0
                    else (node.right, node.left)
                )
                counter += 1
                heapq.heappush(heap, (bound + gap * gap, counter, far))
                node = near
            seen_ids.append(node.ids)

        for root in self._roots:
            descend(root, 0.0)
        leaves = len(self._roots)
        while heap and leaves < max_leaves:
            bound, _, node = heapq.heappop(heap)
            descend(node, bound)
            leaves += 1

        candidates = np.unique(np.concatenate(seen_ids))
        dists = np.linalg.norm(self._data[candidates] - query, axis=1)
        keep = min(k, len(candidates))
        part = (
            np.argpartition(dists, keep - 1)[:keep]
            if keep < len(candidates)
            else np.arange(len(candidates))
        )
        order = np.lexsort((candidates[part], dists[part]))
        chosen = part[order]
        return candidates[chosen], dists[chosen]
