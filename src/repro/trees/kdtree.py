"""Exact k-d tree nearest-neighbour search.

Bentley (CACM 1975), the classic exact index the paper's related work
opens with: "these methods suffer from the curse of dimensionality and
are proved to perform even worse than linear scan for datasets with
more than 20 features" (citing Weber et al.).  We implement the exact
branch-and-bound kNN search so that claim can be *measured*
(`benchmarks/bench_curse_of_dimensionality.py`) rather than assumed.

The tree splits on the widest dimension at the median, stores points in
leaves of ``leaf_size``, and prunes subtrees whose bounding hyperplane
is farther than the current k-th nearest distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["KDTree"]


@dataclass
class _Node:
    # Internal node: split plane; leaf: point ids.
    split_dim: int = -1
    split_value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def is_leaf(self) -> bool:
        return self.split_dim < 0


class KDTree:
    """Exact kNN via median-split k-d tree with branch-and-bound.

    Parameters
    ----------
    data:
        ``(n, d)`` points to index.
    leaf_size:
        Points per leaf before splitting stops.
    """

    def __init__(self, data: np.ndarray, leaf_size: int = 16) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self._leaf_size = leaf_size
        self._nodes_visited = 0
        self._root = self._build(np.arange(len(self._data), dtype=np.int64))

    def _build(self, ids: np.ndarray) -> _Node:
        if len(ids) <= self._leaf_size:
            return _Node(ids=ids)
        points = self._data[ids]
        spreads = points.max(axis=0) - points.min(axis=0)
        dim = int(spreads.argmax())
        if spreads[dim] == 0:  # all points identical: cannot split
            return _Node(ids=ids)
        order = np.argsort(points[:, dim], kind="stable")
        middle = len(ids) // 2
        split_value = float(points[order[middle], dim])
        left_ids = ids[order[:middle]]
        right_ids = ids[order[middle:]]
        return _Node(
            split_dim=dim,
            split_value=split_value,
            left=self._build(left_ids),
            right=self._build(right_ids),
        )

    @property
    def num_items(self) -> int:
        return len(self._data)

    @property
    def last_nodes_visited(self) -> int:
        """Leaves touched by the most recent query (pruning diagnostic)."""
        return self._nodes_visited

    def query(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbours; returns ``(ids, distances)``."""
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError("query must be a single vector")
        if not 1 <= k <= len(self._data):
            raise ValueError(f"k must be in [1, {len(self._data)}]")
        # Max-heap of (-distance, -id) so the worst survivor pops first;
        # negated ids make ties prefer smaller ids, matching linear scan.
        best: list[tuple[float, int]] = []
        self._nodes_visited = 0

        def visit(node: _Node) -> None:
            if node.is_leaf:
                self._nodes_visited += 1
                dists = np.linalg.norm(self._data[node.ids] - query, axis=1)
                for item, dist in zip(node.ids, dists):
                    entry = (-float(dist), -int(item))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
                return
            gap = query[node.split_dim] - node.split_value
            near, far = (
                (node.left, node.right) if gap < 0 else (node.right, node.left)
            )
            visit(near)
            # Prune the far side if the splitting plane is beyond the
            # current k-th nearest distance.
            if len(best) < k or abs(gap) < -best[0][0]:
                visit(far)

        visit(self._root)
        ordered = sorted(((-d, -i) for d, i in best))
        ids = np.asarray([i for _, i in ordered], dtype=np.int64)
        dists = np.asarray([d for d, _ in ordered], dtype=np.float64)
        return ids, dists
