"""Hierarchical k-means tree with priority-queue search.

Muja & Lowe's second FLANN index (the "k-means tree") from the paper's
related work: the data is recursively partitioned by k-means into
``branching`` clusters per node; search descends to the closest child
at each level while pushing the siblings onto a priority queue keyed by
their centre distance, then keeps expanding the best unexplored branch
until the leaf budget is spent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.quantization.kmeans import KMeans

__all__ = ["KMeansTree"]


@dataclass
class _Node:
    centers: np.ndarray | None = None
    children: list["_Node"] = field(default_factory=list)
    ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def is_leaf(self) -> bool:
        return not self.children


class KMeansTree:
    """Hierarchical k-means tree (FLANN's second index type).

    Parameters
    ----------
    data:
        ``(n, d)`` points to index.
    branching:
        Clusters per internal node (FLANN default 32; smaller values
        make deeper trees).
    leaf_size:
        Points per leaf before recursion stops.
    kmeans_iterations, seed:
        Passed to the per-node k-means.
    """

    def __init__(
        self,
        data: np.ndarray,
        branching: int = 8,
        leaf_size: int = 32,
        kmeans_iterations: int = 10,
        seed: int | None = None,
    ) -> None:
        self._data = np.asarray(data, dtype=np.float64)
        if self._data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        if branching < 2:
            raise ValueError("branching must be at least 2")
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self._branching = branching
        self._leaf_size = leaf_size
        self._kmeans_iterations = kmeans_iterations
        self._seed = seed
        self._counter = 0
        self._root = self._build(np.arange(len(self._data), dtype=np.int64))

    def _build(self, ids: np.ndarray) -> _Node:
        if len(ids) <= max(self._leaf_size, self._branching):
            return _Node(ids=ids)
        points = self._data[ids]
        if (points.max(axis=0) == points.min(axis=0)).all():
            return _Node(ids=ids)  # identical points: nothing to split
        self._counter += 1
        seed = None if self._seed is None else self._seed + self._counter
        km = KMeans(
            self._branching, self._kmeans_iterations, seed=seed
        ).fit(points)
        labels = km.predict(points)
        partitions = [
            (ids[labels == cluster], km.centers[cluster])
            for cluster in range(self._branching)
        ]
        partitions = [(part, center) for part, center in partitions if len(part)]
        # Progress guard: every child must be strictly smaller, else the
        # recursion would never terminate (e.g. near-identical points).
        if len(partitions) <= 1 or any(
            len(part) == len(ids) for part, _ in partitions
        ):
            return _Node(ids=ids)
        children = [self._build(part) for part, _ in partitions]
        centers = np.asarray([center for _, center in partitions])
        return _Node(centers=centers, children=children)

    @property
    def num_items(self) -> int:
        return len(self._data)

    def query(
        self, query: np.ndarray, k: int, max_leaves: int = 16
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate kNN expanding at most ``max_leaves`` leaves."""
        query = np.asarray(query, dtype=np.float64)
        if not 1 <= k <= len(self._data):
            raise ValueError(f"k must be in [1, {len(self._data)}]")
        heap: list[tuple[float, int, _Node]] = []
        counter = 0
        seen_ids: list[np.ndarray] = []
        leaves = 0

        def descend(node: _Node) -> None:
            nonlocal counter
            while not node.is_leaf:
                dists = np.linalg.norm(node.centers - query, axis=1)
                nearest = int(dists.argmin())
                for child_idx, child in enumerate(node.children):
                    if child_idx != nearest:
                        counter += 1
                        heapq.heappush(
                            heap, (float(dists[child_idx]), counter, child)
                        )
                node = node.children[nearest]
            seen_ids.append(node.ids)

        descend(self._root)
        leaves += 1
        while heap and leaves < max_leaves:
            _, _, node = heapq.heappop(heap)
            descend(node)
            leaves += 1

        candidates = np.unique(np.concatenate(seen_ids))
        dists = np.linalg.norm(self._data[candidates] - query, axis=1)
        keep = min(k, len(candidates))
        part = (
            np.argpartition(dists, keep - 1)[:keep]
            if keep < len(candidates)
            else np.arange(len(candidates))
        )
        order = np.lexsort((candidates[part], dists[part]))
        chosen = part[order]
        return candidates[chosen], dists[chosen]
