"""Tree-based (k-d / k-means) search — the paper's related-work family.

Exact k-d trees illustrate the curse of dimensionality that motivates
hashing; the randomized k-d forest and hierarchical k-means tree are
the FLANN-style approximate comparators of Section 7.
"""

from repro.trees.kdtree import KDTree
from repro.trees.kmeans_tree import KMeansTree
from repro.trees.randomized_forest import RandomizedKDForest

__all__ = ["KDTree", "KMeansTree", "RandomizedKDForest"]
