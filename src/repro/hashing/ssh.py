"""Semi-supervised hashing (SSH).

Wang, Kumar & Chang, *Semi-Supervised Hashing for Scalable Image
Retrieval* (CVPR 2010) — one of the L2H algorithms the paper's
background cites.  SSH learns hash directions from a small set of
labelled pairs plus an unsupervised variance regulariser: with
similar-pair set ``S`` and dissimilar-pair set ``D``, the adjusted
"fitting + regularisation" matrix is

    M = Σ_{(i,j)∈S} (x_i x_j^T + x_j x_i^T)
      − Σ_{(i,j)∈D} (x_i x_j^T + x_j x_i^T)
      + η · X^T X / n

and the hash directions are its top-``m`` eigenvectors (the
non-orthogonal relaxation of the original paper, which works well in
practice).  When no pairs are supplied SSH degenerates to PCAH, as in
the original formulation.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import ProjectionHasher

__all__ = ["SemiSupervisedHashing", "pairs_from_neighbors"]


def pairs_from_neighbors(
    data: np.ndarray,
    n_anchors: int = 100,
    n_neighbors: int = 5,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthesise (similar, dissimilar) pairs from metric neighbourhoods.

    Stands in for human labels: for each sampled anchor, its exact
    nearest neighbours form similar pairs and its farthest items form
    dissimilar pairs.  Returns two ``(p, 2)`` id arrays.
    """
    data = np.asarray(data, dtype=np.float64)
    rng = np.random.default_rng(seed)
    anchors = rng.choice(len(data), size=min(n_anchors, len(data)), replace=False)
    similar = []
    dissimilar = []
    for anchor in anchors:
        dists = np.linalg.norm(data - data[anchor], axis=1)
        order = np.argsort(dists)
        for j in order[1 : n_neighbors + 1]:
            similar.append((anchor, int(j)))
        for j in order[-n_neighbors:]:
            dissimilar.append((anchor, int(j)))
    return (
        np.asarray(similar, dtype=np.int64),
        np.asarray(dissimilar, dtype=np.int64),
    )


class SemiSupervisedHashing(ProjectionHasher):
    """Eigen-directions of the label-adjusted covariance.

    Parameters
    ----------
    code_length:
        Number of bits ``m``.
    similar_pairs, dissimilar_pairs:
        ``(p, 2)`` arrays of item-id pairs (row indices into the
        training data).  Either may be ``None``/empty.
    eta:
        Weight of the unsupervised variance regulariser.
    """

    def __init__(
        self,
        code_length: int,
        similar_pairs: np.ndarray | None = None,
        dissimilar_pairs: np.ndarray | None = None,
        eta: float = 1.0,
    ) -> None:
        super().__init__(code_length)
        if eta < 0:
            raise ValueError("eta must be non-negative")
        self._similar = self._validate_pairs(similar_pairs)
        self._dissimilar = self._validate_pairs(dissimilar_pairs)
        self._eta = eta

    @staticmethod
    def _validate_pairs(pairs) -> np.ndarray:
        if pairs is None:
            return np.empty((0, 2), dtype=np.int64)
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size and (pairs.ndim != 2 or pairs.shape[1] != 2):
            raise ValueError("pairs must be a (p, 2) array of item ids")
        return pairs.reshape(-1, 2)

    def _learn(self, centered: np.ndarray) -> np.ndarray:
        n, d = centered.shape
        for pairs in (self._similar, self._dissimilar):
            if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
                raise ValueError("pair ids out of range for training data")

        adjusted = self._eta * (centered.T @ centered) / n
        for pairs, sign in ((self._similar, 1.0), (self._dissimilar, -1.0)):
            if not pairs.size:
                continue
            left = centered[pairs[:, 0]]
            right = centered[pairs[:, 1]]
            cross = left.T @ right
            adjusted += sign * (cross + cross.T) / max(len(pairs), 1)

        eigenvalues, eigenvectors = np.linalg.eigh(adjusted)
        top = np.argsort(eigenvalues)[::-1][: self._m]
        directions = eigenvectors[:, top]
        anchor = np.abs(directions).argmax(axis=0)
        signs = np.sign(directions[anchor, np.arange(self._m)])
        signs[signs == 0] = 1.0
        return directions * signs
