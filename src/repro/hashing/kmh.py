"""K-means hashing (KMH).

He, Wen & Sun, *K-Means Hashing: an Affinity-Preserving Quantization
Method for Learning Binary Compact Codes* (CVPR 2013), used in the
paper's appendix (Figure 20) to show GQR generalises beyond hyperplane
quantization.

KMH has a product structure: the feature space is split into subspaces,
each quantized by a codebook of ``2^b`` codewords *indexed by b-bit
binary codes*.  Codewords are learned by k-means and indices assigned so
the Hamming distance between indices tracks the Euclidean distance
between codewords (affinity preservation): minimising

    E_aff = Σ_{i,j} n_i n_j (d(c_i, c_j) − s·√h(i, j))²

over index permutations, where ``s`` is a fitted scale.  We implement
the assignment by greedy pairwise-swap descent, which reproduces the
qualitative behaviour of the original alternating optimisation.

Query-time probing (paper appendix): the flipping cost of bit ``i`` is
``dist(q, c_{q'}) − dist(q, c_q)`` where ``c_q`` is the nearest codeword
of the query's subspace and ``c_{q'}`` the codeword whose index differs
only in bit ``i``.  Because ``c_q`` is nearest, costs are non-negative,
exactly the property the GQR generation tree needs.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import BinaryHasher
from repro.index.codes import pack_bits
from repro.quantization.kmeans import KMeans

__all__ = ["KMeansHashing", "assign_indices"]


def _pairwise_distances(centers: np.ndarray) -> np.ndarray:
    sq = (centers * centers).sum(axis=1)
    d2 = sq[:, np.newaxis] - 2.0 * (centers @ centers.T) + sq[np.newaxis, :]
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def _hamming_matrix(n_codewords: int) -> np.ndarray:
    idx = np.arange(n_codewords, dtype=np.uint64)
    return np.bitwise_count(idx[:, np.newaxis] ^ idx[np.newaxis, :]).astype(
        np.float64
    )


def _affinity_error(
    distances: np.ndarray, weights: np.ndarray, perm: np.ndarray, hamming: np.ndarray
) -> float:
    """Weighted affinity error of assigning codeword ``i`` index ``perm[i]``."""
    target = hamming[np.ix_(perm, perm)]
    diff = distances - target
    return float((weights * diff * diff).sum())


def assign_indices(
    centers: np.ndarray,
    counts: np.ndarray,
    n_passes: int = 4,
    rng: np.random.Generator | None = None,
    n_restarts: int = 1,
) -> tuple[np.ndarray, float]:
    """Assign binary indices to codewords by greedy swap descent.

    Pairwise-swap descent is a local search; ``n_restarts`` runs it from
    additional random permutations and keeps the lowest affinity error
    (the original KMH's alternating optimisation plays the same role of
    escaping poor assignments).

    Returns ``(perm, scale)``: codeword ``i`` gets index ``perm[i]``, and
    ``scale`` is the fitted ``s`` in ``d(c_i, c_j) ≈ s·√h(i, j)``.
    """
    if n_restarts < 1:
        raise ValueError("n_restarts must be positive")
    k = len(centers)
    distances = _pairwise_distances(centers)
    weights = np.outer(counts, counts).astype(np.float64)
    root_h = np.sqrt(_hamming_matrix(k))

    # Least-squares scale for the initial (identity) assignment.
    numer = (weights * distances * root_h).sum()
    denom = (weights * root_h * root_h).sum()
    scale = numer / denom if denom > 0 else 1.0
    scaled_h = scale * root_h

    if rng is None:
        rng = np.random.default_rng(0)

    def descend(perm: np.ndarray) -> tuple[np.ndarray, float]:
        error = _affinity_error(distances, weights, perm, scaled_h)
        for _ in range(n_passes):
            improved = False
            for a in range(k):
                for b in range(a + 1, k):
                    perm[a], perm[b] = perm[b], perm[a]
                    candidate = _affinity_error(
                        distances, weights, perm, scaled_h
                    )
                    if candidate < error:
                        error = candidate
                        improved = True
                    else:
                        perm[a], perm[b] = perm[b], perm[a]
            if not improved:
                break
        return perm, error

    best_perm, best_error = descend(np.arange(k))
    for _ in range(n_restarts - 1):
        perm, error = descend(rng.permutation(k))
        if error < best_error:
            best_perm, best_error = perm, error
    return best_perm, float(scale)


class KMeansHashing(BinaryHasher):
    """Product-structured k-means codebooks with affinity-preserved indices.

    Parameters
    ----------
    code_length:
        Total bits ``m``; must be divisible by ``bits_per_subspace``.
    bits_per_subspace:
        Bits ``b`` per codebook (``2^b`` codewords each).  The original
        paper uses b ∈ {4, 8}; small b keeps the swap search cheap.
    kmeans_iterations, seed:
        Passed to the per-subspace k-means.
    """

    def __init__(
        self,
        code_length: int,
        bits_per_subspace: int = 4,
        kmeans_iterations: int = 25,
        seed: int | None = None,
        assignment_restarts: int = 1,
    ) -> None:
        super().__init__(code_length)
        if not 1 <= bits_per_subspace <= 8:
            raise ValueError("bits_per_subspace must be in [1, 8]")
        if code_length % bits_per_subspace:
            raise ValueError(
                f"code_length={code_length} not divisible by "
                f"bits_per_subspace={bits_per_subspace}"
            )
        self._b = bits_per_subspace
        self._n_subspaces = code_length // bits_per_subspace
        self._kmeans_iterations = kmeans_iterations
        self._seed = seed
        self._assignment_restarts = assignment_restarts
        self._splits: np.ndarray | None = None
        # codebooks[u][index] is the codeword with binary index `index`.
        self._codebooks: list[np.ndarray] = []
        self._scales: list[float] = []

    @property
    def n_subspaces(self) -> int:
        return self._n_subspaces

    @property
    def bits_per_subspace(self) -> int:
        return self._b

    def fit(self, data: np.ndarray) -> "KMeansHashing":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("training data must be a (n, d) array")
        d = data.shape[1]
        if self._n_subspaces > d:
            raise ValueError(
                f"{self._n_subspaces} subspaces exceed dimensionality {d}"
            )
        base, extra = divmod(d, self._n_subspaces)
        widths = [base + (1 if i < extra else 0) for i in range(self._n_subspaces)]
        self._splits = np.cumsum(widths)[:-1]

        k = 1 << self._b
        rng = np.random.default_rng(self._seed)
        self._codebooks = []
        self._scales = []
        for u, block in enumerate(np.split(data, self._splits, axis=1)):
            seed = None if self._seed is None else self._seed + u
            km = KMeans(k, self._kmeans_iterations, seed=seed).fit(block)
            counts = np.bincount(km.predict(block), minlength=k)
            perm, scale = assign_indices(
                km.centers, counts, rng=rng,
                n_restarts=self._assignment_restarts,
            )
            codebook = np.empty_like(km.centers)
            codebook[perm] = km.centers  # codeword i gets binary index perm[i]
            self._codebooks.append(codebook)
            self._scales.append(scale)
        self._fitted = True
        return self

    def _block_indices(self, items: np.ndarray) -> np.ndarray:
        """Nearest codeword binary index per subspace, shape ``(n, U)``."""
        items = np.atleast_2d(np.asarray(items, dtype=np.float64))
        indices = np.empty((len(items), self._n_subspaces), dtype=np.int64)
        for u, block in enumerate(np.split(items, self._splits, axis=1)):
            codebook = self._codebooks[u]
            sq = (block * block).sum(axis=1)[:, np.newaxis]
            sc = (codebook * codebook).sum(axis=1)[np.newaxis, :]
            d2 = sq - 2.0 * (block @ codebook.T) + sc
            indices[:, u] = d2.argmin(axis=1)
        return indices

    def encode(self, items: np.ndarray) -> np.ndarray:
        self._require_fitted()
        indices = self._block_indices(items)
        bits = np.empty((len(indices), self._m), dtype=np.uint8)
        for u in range(self._n_subspaces):
            for v in range(self._b):
                bits[:, u * self._b + v] = (indices[:, u] >> v) & 1
        return bits

    def project(self, items: np.ndarray) -> np.ndarray:
        """Signed pseudo-projection ``p_i = (2c_i − 1)·flip_cost_i``.

        KMH has no hyperplane projection; this representation keeps the
        :class:`BinaryHasher` contract — ``sign(p)`` recovers the code
        (up to zero-cost ties) and ``|p|`` recovers the flipping costs the
        appendix defines, so generic QD machinery applies unchanged.
        """
        self._require_fitted()
        items = np.atleast_2d(np.asarray(items, dtype=np.float64))
        out = np.empty((len(items), self._m), dtype=np.float64)
        for row, item in enumerate(items):
            signature, costs = self.probe_info(item)
            bits = np.asarray(
                [(signature >> i) & 1 for i in range(self._m)], dtype=np.float64
            )
            out[row] = (2.0 * bits - 1.0) * costs
        return out

    def probe_info_batch(
        self, queries: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Per-query probing (codeword flip costs are not a projection)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.probe_info(query) for query in queries]

    def probe_info(self, query: np.ndarray) -> tuple[int, np.ndarray]:
        self._require_fitted()
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError("probe_info expects a single query vector")
        indices = self._block_indices(query[np.newaxis, :])[0]

        costs = np.empty(self._m, dtype=np.float64)
        blocks = np.split(query[np.newaxis, :], self._splits, axis=1)
        for u in range(self._n_subspaces):
            codebook = self._codebooks[u]
            block = blocks[u][0]
            dists = np.sqrt(
                np.maximum(
                    ((codebook - block[np.newaxis, :]) ** 2).sum(axis=1), 0.0
                )
            )
            base_index = int(indices[u])
            base_dist = dists[base_index]
            for v in range(self._b):
                flipped = base_index ^ (1 << v)
                # Non-negative because base_index is the nearest codeword.
                costs[u * self._b + v] = dists[flipped] - base_dist

        bits = np.empty(self._m, dtype=np.uint8)
        for u in range(self._n_subspaces):
            for v in range(self._b):
                bits[u * self._b + v] = (indices[u] >> v) & 1
        return int(pack_bits(bits)), costs
