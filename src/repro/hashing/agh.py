"""Anchor graph hashing (AGH), with optional spectral rotation.

Liu, Wang, Kumar & Chang, *Hashing with Graphs* (ICML 2011), the
scalable graph-spectral learner behind two of the paper's citations:
Discrete Graph Hashing [26] and Large Graph Hashing with Spectral
Rotation [25].

AGH approximates the data's neighbourhood graph with a small *anchor
graph*: each item connects to its ``s`` nearest of ``n_anchors``
k-means anchors with kernel weights ``Z`` (rows normalised).  The
graph Laplacian eigenvectors are then recovered from the tiny
``(anchors × anchors)`` matrix ``M = Λ^{-1/2} Z^T Z Λ^{-1/2}``
(Λ = anchor degrees): if ``M v = σ v`` then ``y = Z Λ^{-1/2} v / √σ``
is a spectral embedding coordinate.  Bits are signs of the embedding.

With ``spectral_rotation=True`` the embedding is additionally rotated
to minimise the binary quantization loss ``‖sign(Y R) − Y R‖`` by the
same Procrustes alternation ITQ uses — the essential move of Large
Graph Hashing with Spectral Rotation (AAAI 2017), giving a second
graph-based hasher for the generality experiments.

Out-of-sample extension: a new item's embedding uses its own anchor
weights, so the whole pipeline — including GQR's flip costs — works
for unseen queries.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import BinaryHasher
from repro.quantization.kmeans import KMeans

__all__ = ["AnchorGraphHashing"]


class AnchorGraphHashing(BinaryHasher):
    """Graph-spectral hashing via anchor graphs.

    Parameters
    ----------
    code_length:
        Number of bits ``m``; must be < ``n_anchors``.
    n_anchors:
        K-means anchors approximating the data manifold.
    n_nearest_anchors:
        Anchors each item connects to (``s``; 2-5 typical).
    spectral_rotation:
        Apply the Procrustes rotation minimising quantization loss.
    rotation_iterations, kmeans_iterations, seed:
        Optimisation knobs.
    """

    def __init__(
        self,
        code_length: int,
        n_anchors: int = 64,
        n_nearest_anchors: int = 3,
        spectral_rotation: bool = False,
        rotation_iterations: int = 30,
        kmeans_iterations: int = 15,
        seed: int | None = None,
    ) -> None:
        super().__init__(code_length)
        if n_anchors <= code_length:
            raise ValueError(
                "n_anchors must exceed code_length (need that many "
                "non-trivial graph eigenvectors)"
            )
        if not 1 <= n_nearest_anchors <= n_anchors:
            raise ValueError("n_nearest_anchors must be in [1, n_anchors]")
        self._n_anchors = n_anchors
        self._s = n_nearest_anchors
        self._spectral_rotation = spectral_rotation
        self._rotation_iterations = rotation_iterations
        self._kmeans_iterations = kmeans_iterations
        self._seed = seed
        self._anchors: np.ndarray | None = None
        self._bandwidth: float | None = None
        self._projection: np.ndarray | None = None  # (anchors, m)

    def _anchor_weights(self, items: np.ndarray) -> np.ndarray:
        """Truncated, row-normalised kernel weights Z, shape (n, anchors)."""
        sq_items = (items * items).sum(axis=1)[:, np.newaxis]
        sq_anchors = (self._anchors * self._anchors).sum(axis=1)[np.newaxis, :]
        d2 = sq_items - 2.0 * (items @ self._anchors.T) + sq_anchors
        np.maximum(d2, 0.0, out=d2)

        n = len(items)
        z = np.zeros_like(d2)
        nearest = np.argpartition(d2, self._s - 1, axis=1)[:, : self._s]
        rows = np.arange(n)[:, np.newaxis]
        kernel = np.exp(-d2[rows, nearest] / self._bandwidth)
        z[rows, nearest] = kernel
        sums = z.sum(axis=1, keepdims=True)
        sums[sums == 0] = 1.0
        return z / sums

    def fit(self, data: np.ndarray) -> "AnchorGraphHashing":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("training data must be a (n, d) array")
        if len(data) <= self._n_anchors:
            raise ValueError("need more items than anchors")

        km = KMeans(
            self._n_anchors, self._kmeans_iterations, seed=self._seed
        ).fit(data)
        self._anchors = km.centers
        # Bandwidth: mean squared distance to the assigned anchor.
        d2 = km.transform(data)
        self._bandwidth = float(max(d2.min(axis=1).mean(), 1e-12))

        z = self._anchor_weights(data)
        degrees = z.sum(axis=0)
        degrees[degrees == 0] = 1e-12
        inv_root = 1.0 / np.sqrt(degrees)
        m_small = (z * inv_root[np.newaxis, :]).T @ (
            z * inv_root[np.newaxis, :]
        )
        eigenvalues, eigenvectors = np.linalg.eigh(m_small)
        order = np.argsort(eigenvalues)[::-1]
        # Skip the trivial top eigenpair (σ=1, constant embedding).
        chosen = order[1 : self._m + 1]
        sigma = np.clip(eigenvalues[chosen], 1e-12, None)
        # Embedding map: y = Z Λ^{-1/2} V Σ^{-1/2}; fold the constants
        # into one (anchors × m) matrix applied to anchor weights.
        self._projection = (
            inv_root[:, np.newaxis] * eigenvectors[:, chosen]
        ) / np.sqrt(sigma)[np.newaxis, :]

        if self._spectral_rotation:
            embedding = z @ self._projection
            rng = np.random.default_rng(self._seed)
            rotation, _ = np.linalg.qr(
                rng.standard_normal((self._m, self._m))
            )
            for _ in range(self._rotation_iterations):
                rotated = embedding @ rotation
                binary = np.where(rotated >= 0, 1.0, -1.0)
                u, _, vt = np.linalg.svd(embedding.T @ binary)
                rotation = u @ vt
            self._projection = self._projection @ rotation

        self._fitted = True
        return self

    def project(self, items: np.ndarray) -> np.ndarray:
        self._require_fitted()
        items = np.atleast_2d(np.asarray(items, dtype=np.float64))
        return self._anchor_weights(items) @ self._projection
