"""PCA hashing (PCAH).

Wang et al., *AnnoSearch* (CVPR 2006) / Gong & Lazebnik (CVPR 2011): the
hash functions are the top-``m`` eigenvectors of the data covariance
matrix; items are thresholded at zero along each principal direction.
PCAH is the cheapest learner the paper evaluates — Table 2 contrasts its
training cost with OPQ — and the headline result (Figure 17) is that
PCAH + GQR matches OPQ + IMI.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import ProjectionHasher

__all__ = ["PCAHashing", "pca_directions"]


def pca_directions(centered: np.ndarray, m: int) -> np.ndarray:
    """Top-``m`` principal directions of centred data, shape ``(d, m)``.

    Directions are ordered by decreasing variance.  Signs are fixed so
    each direction's largest-magnitude coefficient is positive, making
    the learned functions deterministic across eigensolver backends.
    """
    n, d = centered.shape
    if m > d:
        raise ValueError(f"code length {m} exceeds data dimensionality {d}")
    cov = (centered.T @ centered) / max(n - 1, 1)
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    top = np.argsort(eigenvalues)[::-1][:m]
    directions = eigenvectors[:, top]
    anchor = np.abs(directions).argmax(axis=0)
    signs = np.sign(directions[anchor, np.arange(m)])
    signs[signs == 0] = 1.0
    return directions * signs


class PCAHashing(ProjectionHasher):
    """Hash with the top-``m`` principal components, threshold at zero."""

    def _learn(self, centered: np.ndarray) -> np.ndarray:
        return pca_directions(centered, self._m)
