"""Iterative quantization (ITQ).

Gong & Lazebnik, *Iterative Quantization: A Procrustean Approach to
Learning Binary Codes* (CVPR 2011 / TPAMI 2013) — the default hash
learner in the paper's experiments.

ITQ first reduces the data to ``m`` dimensions with PCA, then finds a
rotation ``R`` of that subspace minimising the quantization loss
``‖B − V R‖_F²`` over binary matrices ``B ∈ {−1, 1}^{n×m}``, alternating:

1. fix ``R``: ``B = sign(V R)``;
2. fix ``B``: orthogonal Procrustes — given the SVD
   ``V^T B = U Ω S^T``, set ``R = U S^T``.

The final projection is ``p(o) = (o − µ) W R`` with ``W`` the PCA basis.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import ProjectionHasher
from repro.hashing.pcah import pca_directions

__all__ = ["ITQ"]


class ITQ(ProjectionHasher):
    """PCA + learned rotation minimising binary quantization error.

    Parameters
    ----------
    code_length:
        Number of bits ``m`` (also the PCA target dimensionality).
    n_iterations:
        Alternating-minimisation rounds; the original paper uses 50 but
        reports convergence much earlier.
    seed:
        Seed for the random orthogonal initialisation of ``R``.
    """

    def __init__(
        self, code_length: int, n_iterations: int = 50, seed: int | None = None
    ) -> None:
        super().__init__(code_length)
        if n_iterations < 1:
            raise ValueError("n_iterations must be positive")
        self._n_iterations = n_iterations
        self._seed = seed
        self._quantization_loss: list[float] = []

    @property
    def quantization_loss(self) -> list[float]:
        """Per-iteration ``‖B − V R‖_F² / n`` recorded during fit."""
        return list(self._quantization_loss)

    def _learn(self, centered: np.ndarray) -> np.ndarray:
        basis = pca_directions(centered, self._m)
        projected = centered @ basis

        rng = np.random.default_rng(self._seed)
        random_matrix = rng.standard_normal((self._m, self._m))
        rotation, _ = np.linalg.qr(random_matrix)

        self._quantization_loss = []
        n = len(centered)
        for _ in range(self._n_iterations):
            rotated = projected @ rotation
            binary = np.where(rotated >= 0, 1.0, -1.0)
            self._quantization_loss.append(
                float(np.square(binary - rotated).sum() / n)
            )
            u, _, vt = np.linalg.svd(projected.T @ binary)
            rotation = u @ vt
        return basis @ rotation
