"""Sign-random-projection LSH.

The data-independent baseline the paper contrasts L2H against: hash
vectors are sampled from an isotropic Gaussian, ignoring the dataset.
Included both as a sanity baseline and because Multi-Probe LSH
(:mod:`repro.probing.multiprobe_lsh`) is defined on top of it.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import ProjectionHasher

__all__ = ["RandomProjectionLSH"]


class RandomProjectionLSH(ProjectionHasher):
    """Gaussian random hyperplane hashing.

    ``fit`` only records the data mean (centring makes the sign split
    informative on un-normalised data); the hyperplanes themselves are
    data-independent.
    """

    def __init__(self, code_length: int, seed: int | None = None) -> None:
        super().__init__(code_length)
        self._seed = seed

    def _learn(self, centered: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        d = centered.shape[1]
        return rng.standard_normal((d, self._m))
