"""Base interface for learning-to-hash (L2H) algorithms.

Every hasher follows the two-operation decomposition from Section 2.1 of
the paper:

* **projection** — map a ``d``-dimensional item to an ``m``-dimensional
  real vector ``p(o) = (h_1(o), …, h_m(o))``;
* **quantization** — threshold each entry at zero to obtain the binary
  code ``c_i(o) = 1 if p_i(o) ≥ 0 else 0``.

The querying methods in :mod:`repro.core` and :mod:`repro.probing` only
need two things from a hasher at query time: the query's binary code and
the *flip cost* of each bit — the price of quantizing the query into a
bucket that differs in that bit.  For threshold hashers this cost is
``|p_i(q)|`` (Definition 1); K-means hashing overrides it with codeword
distances (paper appendix).  :meth:`BinaryHasher.probe_info` is that
contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.index.codes import pack_bits, validate_code_length

__all__ = ["BinaryHasher", "ProjectionHasher", "sign_quantize", "spectral_norm_bound"]


def sign_quantize(projections: np.ndarray) -> np.ndarray:
    """Threshold projections at zero into {0, 1} bits (Section 2.1)."""
    return (np.asarray(projections) >= 0).astype(np.uint8)


def spectral_norm_bound(hashing_matrix: np.ndarray) -> float:
    """``M = σ_max(H)``, the Lipschitz constant of projection (Theorem 1)."""
    return float(np.linalg.norm(np.asarray(hashing_matrix, dtype=np.float64), ord=2))


class BinaryHasher(ABC):
    """Abstract L2H algorithm: ``fit`` on data, then ``project``/``encode``."""

    def __init__(self, code_length: int) -> None:
        self._m = validate_code_length(code_length)
        self._fitted = False

    @property
    def code_length(self) -> int:
        """Number of bits ``m`` per code."""
        return self._m

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() before use"
            )

    @abstractmethod
    def fit(self, data: np.ndarray) -> "BinaryHasher":
        """Learn hash functions from ``(n, d)`` training data."""

    @abstractmethod
    def project(self, items: np.ndarray) -> np.ndarray:
        """Project ``(n, d)`` items to ``(n, m)`` real vectors ``p(o)``."""

    def encode(self, items: np.ndarray) -> np.ndarray:
        """Binary codes of items as a ``(n, m)`` bit array."""
        return sign_quantize(self.project(items))

    def signatures(self, items: np.ndarray) -> np.ndarray:
        """Binary codes packed into integer signatures."""
        return pack_bits(self.encode(np.atleast_2d(items)))

    def probe_info(self, query: np.ndarray) -> tuple[int, np.ndarray]:
        """Query-time contract for probers: ``(signature, flip_costs)``.

        ``flip_costs[i]`` is the cost contributed to quantization distance
        by probing a bucket whose ``i``-th bit differs from the query's —
        ``|p_i(q)|`` for threshold hashers.
        """
        self._require_fitted()
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError("probe_info expects a single query vector")
        projection = self.project(query[np.newaxis, :])[0]
        signature = int(pack_bits(sign_quantize(projection)))
        return signature, np.abs(projection)

    def probe_info_batch(
        self, queries: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Batched :meth:`probe_info`: one projection matmul for all rows.

        Semantically identical to mapping :meth:`probe_info` over the
        batch; hashers with per-query probe logic (K-means hashing)
        override accordingly.
        """
        self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        projections = self.project(queries)
        signatures = np.atleast_1d(
            np.asarray(pack_bits(sign_quantize(projections)))
        )
        return [
            (int(signature), np.abs(projection))
            for signature, projection in zip(signatures, projections)
        ]

    def spectral_bound(self) -> float | None:
        """``σ_max(H)`` if the hasher is (affine-)linear, else ``None``.

        Used by the Theorem 2 lower bound ``‖o − q‖ ≥ dist(q, b)/(M√m)``.
        """
        return None


class ProjectionHasher(BinaryHasher):
    """Shared machinery for affine-linear hashers: ``p(o) = W^T (o − µ)``.

    Subclasses implement :meth:`_learn`, returning the ``(d, m)`` weight
    matrix ``W`` given centred training data.  The hashing matrix of
    Theorem 1 is ``H = W^T``.
    """

    def __init__(self, code_length: int) -> None:
        super().__init__(code_length)
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    @abstractmethod
    def _learn(self, centered: np.ndarray) -> np.ndarray:
        """Return the ``(d, m)`` projection weights from centred data."""

    def fit(self, data: np.ndarray) -> "ProjectionHasher":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("training data must be a (n, d) array")
        n, d = data.shape
        if n < 2:
            raise ValueError("need at least 2 training items")
        if not np.isfinite(data).all():
            raise ValueError("training data contains NaN or infinity")
        self._mean = data.mean(axis=0)
        weights = self._learn(data - self._mean)
        if weights.shape != (d, self._m):
            raise ValueError(
                f"_learn returned shape {weights.shape}, expected {(d, self._m)}"
            )
        self._weights = weights
        self._fitted = True
        return self

    def project(self, items: np.ndarray) -> np.ndarray:
        self._require_fitted()
        items = np.atleast_2d(np.asarray(items, dtype=np.float64))
        return (items - self._mean) @ self._weights

    @property
    def hashing_matrix(self) -> np.ndarray:
        """``H = W^T`` with hash vectors as rows, per Theorem 1."""
        self._require_fitted()
        return self._weights.T

    def spectral_bound(self) -> float:
        return spectral_norm_bound(self.hashing_matrix)
