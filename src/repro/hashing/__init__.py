"""Learning-to-hash algorithms (the paper's hashing substrate)."""

from repro.hashing.agh import AnchorGraphHashing
from repro.hashing.base import (
    BinaryHasher,
    ProjectionHasher,
    sign_quantize,
    spectral_norm_bound,
)
from repro.hashing.itq import ITQ
from repro.hashing.kmh import KMeansHashing
from repro.hashing.lsh import RandomProjectionLSH
from repro.hashing.pcah import PCAHashing
from repro.hashing.sh import SpectralHashing
from repro.hashing.ssh import SemiSupervisedHashing, pairs_from_neighbors

__all__ = [
    "ITQ",
    "AnchorGraphHashing",
    "BinaryHasher",
    "KMeansHashing",
    "PCAHashing",
    "ProjectionHasher",
    "RandomProjectionLSH",
    "SemiSupervisedHashing",
    "SpectralHashing",
    "pairs_from_neighbors",
    "sign_quantize",
    "spectral_norm_bound",
]
