"""Spectral hashing (SH).

Weiss, Torralba & Fergus, *Spectral Hashing* (NIPS 2008).  SH relaxes the
balanced-graph-partitioning formulation of hashing and, assuming a
uniform distribution along each principal direction, thresholds the
analytical Laplacian eigenfunctions

    Φ_{k,j}(x) = sin(π/2 + j·π / (b_k − a_k) · (x_k − a_k))

where ``x_k`` is the ``k``-th PCA coordinate of the item, ``[a_k, b_k]``
its training range, and ``j`` the mode number.  The ``m`` eigenfunctions
with the smallest eigenvalues (equivalently, smallest ``j·π/(b_k − a_k)``)
become the hash functions; bits are the signs of Φ.

SH's projection is *non-linear*, so it exercises the paper's claim that
QD ranking is general: quantization distance only needs the projected
vector ``p(q) = Φ(q)``, not a hashing matrix.  (The Theorem 2 scaled
lower bound does not apply; :meth:`spectral_bound` returns ``None``.)
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import BinaryHasher
from repro.hashing.pcah import pca_directions

__all__ = ["SpectralHashing"]


class SpectralHashing(BinaryHasher):
    """Threshold analytical graph-Laplacian eigenfunctions on PCA axes.

    Parameters
    ----------
    code_length:
        Number of bits ``m``.
    n_pca:
        PCA subspace dimensionality to consider; defaults to ``m`` (the
        original code's choice).  Must satisfy ``n_pca <= d``.
    """

    def __init__(self, code_length: int, n_pca: int | None = None) -> None:
        super().__init__(code_length)
        self._n_pca = n_pca
        self._basis: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._mins: np.ndarray | None = None
        self._omegas: np.ndarray | None = None  # (m,) mode frequencies
        self._dims: np.ndarray | None = None  # (m,) PCA dim of each bit

    def fit(self, data: np.ndarray) -> "SpectralHashing":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("training data must be a (n, d) array")
        n, d = data.shape
        n_pca = self._n_pca if self._n_pca is not None else min(self._m, d)
        if n_pca > d:
            raise ValueError(f"n_pca={n_pca} exceeds dimensionality {d}")

        self._mean = data.mean(axis=0)
        centered = data - self._mean
        self._basis = pca_directions(centered, n_pca)
        coords = centered @ self._basis

        mins = coords.min(axis=0)
        maxs = coords.max(axis=0)
        ranges = np.maximum(maxs - mins, 1e-12)

        # Enumerate candidate modes j = 1 … max_mode per PCA direction and
        # keep the m with the smallest eigenfunction frequency ω = jπ/r.
        max_mode = int(np.ceil((self._m + 1) * ranges.max() / ranges.min()))
        max_mode = min(max_mode, 4 * self._m + 8)
        modes = np.arange(1, max_mode + 1, dtype=np.float64)
        omegas = modes[np.newaxis, :] * np.pi / ranges[:, np.newaxis]
        flat = omegas.ravel()
        best = np.argsort(flat, kind="stable")[: self._m]
        if len(best) < self._m:
            raise ValueError("not enough eigenfunction modes; increase n_pca")

        self._dims = (best // max_mode).astype(np.int64)
        self._omegas = flat[best]
        self._mins = mins
        self._fitted = True
        return self

    def project(self, items: np.ndarray) -> np.ndarray:
        self._require_fitted()
        items = np.atleast_2d(np.asarray(items, dtype=np.float64))
        coords = (items - self._mean) @ self._basis
        shifted = coords[:, self._dims] - self._mins[self._dims]
        return np.sin(np.pi / 2.0 + self._omegas[np.newaxis, :] * shifted)
