"""SLO reporting: declared targets vs. achieved serving behaviour.

Turns a :class:`~repro.serving.simulator.SimulationResult` (or any
equivalent record set) into one JSON-friendly report —
``repro.serving_slo/v1`` — that states, per lane, the *declared*
p50/p99/p999 targets next to the *achieved* quantiles of served
requests, plus goodput against the measured serial capacity and every
shed/degrade/reject count the front door tallied.  The CI smoke job
(``serving-slo``) validates the report's completeness with
:func:`validate_slo_report` and uploads it as
``BENCH_serving_slo.json``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.data.workloads import FlashCrowd
from repro.eval.reporting import format_table
from repro.obs.export import counter_rows
from repro.obs.metrics import MetricsRegistry
from repro.serving.core import REJECT_REASONS
from repro.serving.simulator import SimulationResult

__all__ = [
    "SLO_REPORT_SCHEMA",
    "slo_report",
    "format_slo_report",
    "validate_slo_report",
]

SLO_REPORT_SCHEMA = "repro.serving_slo/v1"

_QUANTILES = (("p50_ms", 50.0), ("p99_ms", 99.0), ("p999_ms", 99.9))

#: Keys every report must carry (validate_slo_report enforces these).
_TOP_LEVEL_KEYS = (
    "schema",
    "duration_seconds",
    "offered",
    "served",
    "served_degraded",
    "rejected",
    "rejected_by_reason",
    "accepted_fraction",
    "goodput_qps",
    "lanes",
    "overload",
    "counters",
)
_LANE_KEYS = (
    "declared",
    "achieved",
    "slo_met",
    "offered",
    "served",
    "degraded",
    "rejected_by_reason",
    "deadline_met_fraction",
)


def _achieved_quantiles(latencies: np.ndarray) -> dict[str, float | None]:
    if not len(latencies):
        return {name: None for name, _ in _QUANTILES}
    return {
        name: float(np.percentile(latencies, q)) * 1e3
        for name, q in _QUANTILES
    }


def slo_report(
    sim: SimulationResult,
    *,
    serial_capacity_qps: float | None = None,
    flash_crowds: tuple[FlashCrowd, ...] = (),
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Build the ``repro.serving_slo/v1`` report for one run.

    Parameters
    ----------
    sim:
        The simulation (or replayed) outcome to grade.
    serial_capacity_qps:
        The measured serial capacity baseline; when given, overall and
        per-flash-crowd goodput are also reported as fractions of it.
    flash_crowds:
        The trace's burst windows; goodput inside each is reported
        separately (the overload windows are where shedding earns its
        keep).
    registry:
        A telemetry registry to export the ``repro_serving_*`` counter
        series from; without one the counters section is built from the
        core's own tallies.
    """
    statuses = sim.by_status()
    reasons = sim.by_reason()
    served = statuses.get("served", 0) + statuses.get("served_degraded", 0)
    lanes: dict[str, Any] = {}
    for lane in sim.config.lanes:
        latencies = sim.served_latencies(lane.name)
        achieved = _achieved_quantiles(latencies)
        declared = lane.slo.as_dict()
        met = all(
            achieved[name] is not None and achieved[name] <= declared[name]
            for name in declared
        ) if len(latencies) else None
        lane_records = [
            record for record in sim.records
            if record.response.lane == lane.name
        ]
        lane_served = [
            record for record in lane_records if record.response.served
        ]
        rejected_by_reason = dict.fromkeys(REJECT_REASONS, 0)
        for record in lane_records:
            if not record.response.served:
                reason = record.response.reason or "unknown"
                rejected_by_reason[reason] = (
                    rejected_by_reason.get(reason, 0) + 1
                )
        lanes[lane.name] = {
            "declared": declared,
            "achieved": achieved,
            "slo_met": met,
            "offered": len(lane_records),
            "served": len(lane_served),
            "degraded": sum(
                1 for record in lane_served
                if record.response.degrade_level > 0
            ),
            "rejected_by_reason": rejected_by_reason,
            "deadline_met_fraction": (
                sum(
                    1 for record in lane_served
                    if record.response.deadline_met
                ) / len(lane_served)
                if lane_served else None
            ),
        }
    overload: dict[str, Any] = {
        "degraded_total": statuses.get("served_degraded", 0),
        "shed_total": reasons.get("shed", 0),
        "windows": [],
    }
    for crowd in flash_crowds:
        window_end = min(crowd.start + crowd.duration, sim.duration)
        if window_end <= crowd.start:
            continue
        window_goodput = sim.goodput(crowd.start, window_end)
        overload["windows"].append({
            "start": crowd.start,
            "duration": window_end - crowd.start,
            "multiplier": crowd.multiplier,
            "goodput_qps": window_goodput,
            "goodput_vs_serial": (
                window_goodput / serial_capacity_qps
                if serial_capacity_qps else None
            ),
        })
    if registry is not None:
        counters = [
            {"metric": str(metric), "labels": str(labels),
             "value": str(value)}
            for metric, labels, value in counter_rows(registry)
            if str(metric).startswith("repro_serving_")
        ]
    else:
        counters = [
            {"metric": "core_stats", "labels": key, "value": str(value)}
            for key, value in sim.core_stats.items()
        ]
    total_goodput = sim.goodput() if sim.duration > 0 else 0.0
    return {
        "schema": SLO_REPORT_SCHEMA,
        "duration_seconds": sim.duration,
        "per_query_cost": sim.per_query_cost,
        "batch_overhead": sim.batch_overhead,
        "offered": len(sim.records),
        "served": statuses.get("served", 0),
        "served_degraded": statuses.get("served_degraded", 0),
        "rejected": statuses.get("rejected", 0),
        "rejected_by_reason": {
            reason: reasons.get(reason, 0) for reason in REJECT_REASONS
        },
        "accepted_fraction": sim.accepted_fraction(),
        "goodput_qps": total_goodput,
        "serial_capacity_qps": serial_capacity_qps,
        "goodput_vs_serial": (
            total_goodput / serial_capacity_qps
            if serial_capacity_qps else None
        ),
        "batches": sim.core_stats.get("batches", 0),
        "mean_batch_size": (
            sim.core_stats.get("batched_tickets", 0)
            / max(1, sim.core_stats.get("batches", 0))
        ),
        "lanes": lanes,
        "overload": overload,
        "counters": counters,
    }


def format_slo_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`slo_report`'s output."""

    def ms(value: float | None) -> str:
        return "-" if value is None else f"{value:.2f}"

    lane_rows = []
    for name, lane in report["lanes"].items():
        declared, achieved = lane["declared"], lane["achieved"]
        lane_rows.append([
            name,
            lane["served"],
            lane["degraded"],
            sum(lane["rejected_by_reason"].values()),
            f"{ms(achieved['p50_ms'])}/{ms(declared['p50_ms'])}",
            f"{ms(achieved['p99_ms'])}/{ms(declared['p99_ms'])}",
            f"{ms(achieved['p999_ms'])}/{ms(declared['p999_ms'])}",
            {True: "yes", False: "NO", None: "-"}[lane["slo_met"]],
        ])
    lines = [
        f"offered {report['offered']}  served {report['served']}  "
        f"degraded {report['served_degraded']}  "
        f"rejected {report['rejected']}  "
        f"goodput {report['goodput_qps']:.1f} q/s"
        + (
            f" ({report['goodput_vs_serial']:.2f}x serial)"
            if report.get("goodput_vs_serial") is not None else ""
        ),
        format_table(
            ["lane", "served", "degraded", "rejected",
             "p50 ach/slo (ms)", "p99 ach/slo (ms)",
             "p999 ach/slo (ms)", "slo met"],
            lane_rows,
        ),
    ]
    reason_rows = [
        [reason, count]
        for reason, count in report["rejected_by_reason"].items()
        if count
    ]
    if reason_rows:
        lines.append(format_table(["reject reason", "count"], reason_rows))
    for window in report["overload"]["windows"]:
        versus = window["goodput_vs_serial"]
        lines.append(
            f"flash crowd @{window['start']:.1f}s "
            f"x{window['multiplier']:.0f} for "
            f"{window['duration']:.1f}s: goodput "
            f"{window['goodput_qps']:.1f} q/s"
            + (f" ({versus:.2f}x serial)" if versus is not None else "")
        )
    return "\n".join(lines)


def validate_slo_report(report: dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``report`` is structurally incomplete.

    The CI ``serving-slo`` job runs this over the uploaded JSON: every
    top-level key, every configured lane's declared/achieved block, and
    every rejection-reason bucket must be present — shed/degrade/reject
    decisions may be zero but never *missing*.
    """
    if report.get("schema") != SLO_REPORT_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != "
            f"{SLO_REPORT_SCHEMA!r}"
        )
    missing = [key for key in _TOP_LEVEL_KEYS if key not in report]
    if missing:
        raise ValueError(f"report is missing top-level keys: {missing}")
    for reason in REJECT_REASONS:
        if reason not in report["rejected_by_reason"]:
            raise ValueError(f"missing rejection-reason bucket: {reason}")
    if not report["lanes"]:
        raise ValueError("report has no lanes")
    for name, lane in report["lanes"].items():
        lane_missing = [key for key in _LANE_KEYS if key not in lane]
        if lane_missing:
            raise ValueError(
                f"lane {name!r} is missing keys: {lane_missing}"
            )
        for block in ("declared", "achieved"):
            for quantile, _ in _QUANTILES:
                if quantile not in lane[block]:
                    raise ValueError(
                        f"lane {name!r} {block} block is missing {quantile}"
                    )
        for reason in REJECT_REASONS:
            if reason not in lane["rejected_by_reason"]:
                raise ValueError(
                    f"lane {name!r} is missing rejection-reason bucket: "
                    f"{reason}"
                )
    counts = sum(
        report["lanes"][name]["offered"] for name in report["lanes"]
    )
    if counts != report["offered"]:
        raise ValueError(
            f"lane offered counts ({counts}) do not partition the total "
            f"({report['offered']})"
        )
