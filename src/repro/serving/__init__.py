"""Async serving front door: admission, scheduling, load shedding.

The querying engine (PRs 1–7) answers one batch as fast as it can; this
package decides *which* requests get to be that batch when offered load
exceeds capacity.  Four cooperating mechanisms, declared in
:mod:`~repro.serving.config` and implemented sans-io in
:mod:`~repro.serving.core`:

* **admission control** — bounded per-lane queues; beyond the backlog
  budget requests are rejected immediately with a machine-readable
  reason instead of queueing without bound;
* **deadline-aware coalescing** — queued queries with *equal* plans
  (the same identity the result cache hashes) merge into one
  ``search_batch`` call within a per-lane latency budget;
* **priority lanes** — interactive vs. batch traffic drains under
  smooth weighted round-robin, so background work never starves the
  low-latency lane;
* **graduated load shedding** — a hysteretic controller watching queue
  delay first *degrades* admitted queries to cheaper plans
  (:meth:`QueryPlan.downgraded`; responses carry the distributed
  layer's ``degraded`` / ``coverage`` vocabulary) and only sheds
  outright beyond the last degrade level.

Two drivers share that core: :class:`AsyncFrontDoor` serves a real
index on an asyncio event loop, and :class:`ServingSimulator` replays
seeded traffic (:func:`repro.data.workloads.traffic_trace`) in virtual
time for deterministic capacity studies — graded by
:func:`slo_report` against the declared SLOs.  ``python -m repro
serve-sim`` runs the whole loop from the command line.
"""

from repro.serving.config import (
    FrontDoorConfig,
    LaneConfig,
    OverloadConfig,
    SLOTarget,
    default_config,
)
from repro.serving.core import (
    REASON_DEADLINE_EXPIRED,
    REASON_DEADLINE_INFEASIBLE,
    REASON_EXECUTION_ERROR,
    REASON_INVALID_QUERY,
    REASON_QUEUE_FULL,
    REASON_SHED,
    REASON_SHUTDOWN,
    REJECT_REASONS,
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_SERVED_DEGRADED,
    STATUSES,
    Batch,
    FrontDoorCore,
    OverloadController,
    ServedResponse,
    Ticket,
    coalescible,
)
from repro.serving.frontdoor import AsyncFrontDoor, execute_batch
from repro.serving.simulator import (
    ServingSimulator,
    SimRecord,
    SimulationResult,
    measure_serial_cost,
)
from repro.serving.slo import (
    SLO_REPORT_SCHEMA,
    format_slo_report,
    slo_report,
    validate_slo_report,
)

__all__ = [
    "AsyncFrontDoor",
    "Batch",
    "FrontDoorConfig",
    "FrontDoorCore",
    "LaneConfig",
    "OverloadConfig",
    "OverloadController",
    "REASON_DEADLINE_EXPIRED",
    "REASON_DEADLINE_INFEASIBLE",
    "REASON_EXECUTION_ERROR",
    "REASON_INVALID_QUERY",
    "REASON_QUEUE_FULL",
    "REASON_SHED",
    "REASON_SHUTDOWN",
    "REJECT_REASONS",
    "SLOTarget",
    "SLO_REPORT_SCHEMA",
    "STATUSES",
    "STATUS_REJECTED",
    "STATUS_SERVED",
    "STATUS_SERVED_DEGRADED",
    "ServedResponse",
    "ServingSimulator",
    "SimRecord",
    "SimulationResult",
    "Ticket",
    "coalescible",
    "default_config",
    "execute_batch",
    "format_slo_report",
    "measure_serial_cost",
    "slo_report",
    "validate_slo_report",
]
