"""Asyncio front door: the :class:`FrontDoorCore` on a real event loop.

:class:`AsyncFrontDoor` wraps an index with an admission-controlled,
deadline-aware async serving surface::

    door = AsyncFrontDoor(index)
    await door.start()
    response = await door.submit(query, plan)   # a ServedResponse
    await door.close()

``submit`` never raises for overload — every request resolves to a
:class:`~repro.serving.core.ServedResponse` whose status is ``served``,
``served_degraded`` or ``rejected`` (with a machine-readable reason).
All policy lives in the sans-io core; this module only supplies the io:
the event loop's clock drives the core's timestamps, a drain task polls
the core and executes its batches, and the *blocking* engine calls run
on a thread-pool executor so the event loop never stalls (reprolint
RL015 enforces that no blocking search runs inside an ``async def``
here).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any

import numpy as np

from repro.search.engine import validate_query
from repro.search.results import SearchResult
from repro.serving.config import FrontDoorConfig, default_config
from repro.serving.core import (
    Batch,
    FrontDoorCore,
    ServedResponse,
    coalescible,
)

__all__ = ["AsyncFrontDoor", "execute_batch"]


def execute_batch(index: Any, batch: Batch) -> list[SearchResult]:
    """Run one coalesced batch against ``index`` — blocking.

    Coalescible plans (candidate budget only) go through the index's
    genuinely batched ``search_batch``; plans carrying bucket or time
    budgets fall back to per-ticket ``search`` calls with the effective
    plan's exact parameters.  Either way the results are bit-identical
    to running the effective plan directly — degradation changes *which*
    plan runs, never how it runs.
    """
    plan = batch.effective_plan
    if coalescible(plan) and hasattr(index, "search_batch"):
        assert plan.n_candidates is not None
        return list(index.search_batch(
            batch.queries, plan.k, plan.n_candidates,
            rerank=plan.rerank, fusion=plan.fusion,
        ))
    return [
        index.search(
            ticket.query,
            plan.k,
            n_candidates=plan.n_candidates,
            max_buckets=plan.max_buckets,
            time_budget=plan.time_budget,
            rerank=plan.rerank,
            fusion=plan.fusion,
        )
        for ticket in batch.tickets
    ]


class AsyncFrontDoor:
    """Admission-controlled async serving surface over one index.

    Parameters
    ----------
    index:
        Any engine-backed index exposing ``search`` /
        ``search_batch`` (e.g. :class:`~repro.search.HashIndex`).
    config:
        The declared serving policy; defaults to
        :func:`~repro.serving.config.default_config`.
    max_workers:
        Threads executing batches.  The default of 1 keeps batch
        completions in dispatch order, which is also the fair choice
        when the engine itself may parallelise internally.
    """

    def __init__(
        self,
        index: Any,
        config: FrontDoorConfig | None = None,
        *,
        max_workers: int = 1,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.index = index
        self.config = config or default_config()
        self.core = FrontDoorCore(self.config)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serving"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drainer: asyncio.Task[None] | None = None
        self._wake = asyncio.Event()
        self._closing = False
        self._inflight: set[asyncio.Task[None]] = set()

    async def start(self) -> None:
        """Bind to the running loop and start the drain task."""
        if self._drainer is not None:
            raise RuntimeError("front door already started")
        self._loop = asyncio.get_running_loop()
        self._closing = False
        self._drainer = self._loop.create_task(self._drain())

    async def close(self) -> None:
        """Stop draining; resolve still-queued tickets as ``shutdown``."""
        if self._drainer is None:
            return
        self._closing = True
        self._wake.set()
        await self._drainer
        self._drainer = None
        assert self._loop is not None
        for _, response in self.core.shutdown(self._loop.time()):
            self._resolve(response)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> AsyncFrontDoor:
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def submit(
        self,
        query: np.ndarray,
        plan: Any,
        *,
        lane: str = "interactive",
        deadline_seconds: float | None = None,
    ) -> ServedResponse:
        """Offer one request; await its terminal response.

        Overload and malformed queries resolve as ``rejected``
        responses, never exceptions — the caller always gets a
        :class:`~repro.serving.core.ServedResponse` to inspect.
        """
        if self._loop is None or self._drainer is None or self._closing:
            raise RuntimeError("front door is not running; call start()")
        try:
            query = validate_query(query)
        except ValueError as error:
            return self.core.reject_invalid(lane, str(error))
        future: asyncio.Future[ServedResponse] = self._loop.create_future()
        ticket, rejection = self.core.admit(
            lane, query, plan, self._loop.time(),
            deadline_seconds=deadline_seconds, payload=future,
        )
        if rejection is not None:
            return rejection
        assert ticket is not None
        self._wake.set()
        return await future

    def _resolve(self, response: ServedResponse) -> None:
        """Deliver a terminal response to its awaiting submitter."""
        future = response.payload
        if isinstance(future, asyncio.Future) and not future.done():
            # Strip the future from the response the caller sees.
            future.set_result(replace(response, payload=None))

    async def _drain(self) -> None:
        """Poll the core, execute its batches, deliver responses."""
        assert self._loop is not None
        while True:
            now = self._loop.time()
            expired, batch, next_wake = self.core.poll(now)
            for _, response in expired:
                self._resolve(response)
            if batch is not None:
                task = self._loop.create_task(self._run_batch(batch))
                self._inflight.add(task)
                task.add_done_callback(self._batch_done)
                continue
            if self._closing and not self._inflight:
                return
            timeout = None
            if next_wake is not None:
                timeout = max(0.0, next_wake - now)
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    async def _run_batch(self, batch: Batch) -> None:
        """Execute one batch off-loop and resolve its tickets."""
        assert self._loop is not None
        try:
            results = await self._loop.run_in_executor(
                self._executor, execute_batch, self.index, batch
            )
            resolved = self.core.complete(
                batch, results, self._loop.time()
            )
        except Exception as error:  # reprolint: disable=RL005 -- any engine failure must resolve the batch's tickets as execution_error responses, never escape the drain loop
            resolved = self.core.fail(
                batch, self._loop.time(), detail=repr(error)
            )
        for _, response in resolved:
            self._resolve(response)

    def _batch_done(self, task: asyncio.Task[None]) -> None:
        self._inflight.discard(task)
        self._wake.set()
