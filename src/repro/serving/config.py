"""Declared serving policy: lanes, SLO targets, overload thresholds.

Everything the front door *promises* lives here as frozen dataclasses,
separated from the mechanism (:mod:`repro.serving.core`) so a config is
pure data: the SLO report compares these declared targets against
achieved behaviour, and the traffic simulator runs the same config the
asyncio front door serves with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SLOTarget",
    "LaneConfig",
    "OverloadConfig",
    "FrontDoorConfig",
    "default_config",
]


@dataclass(frozen=True)
class SLOTarget:
    """Declared latency objectives for one lane, in seconds.

    The targets are *declarations*, not enforcement: the front door
    enforces deadlines per request, and the SLO report grades achieved
    p50/p99/p999 of served requests against these numbers.
    """

    p50_seconds: float
    p99_seconds: float
    p999_seconds: float

    def __post_init__(self) -> None:
        if not 0 < self.p50_seconds <= self.p99_seconds <= self.p999_seconds:
            raise ValueError(
                "SLO targets must satisfy 0 < p50 <= p99 <= p999; got "
                f"{self.p50_seconds}/{self.p99_seconds}/{self.p999_seconds}"
            )

    def as_dict(self) -> dict[str, float]:
        """The targets in milliseconds, keyed for the SLO report."""
        return {
            "p50_ms": self.p50_seconds * 1e3,
            "p99_ms": self.p99_seconds * 1e3,
            "p999_ms": self.p999_seconds * 1e3,
        }


@dataclass(frozen=True)
class LaneConfig:
    """One priority lane: its queue budget, deadline and drain weight.

    Attributes
    ----------
    name:
        Lane label; also the ``lane`` value on every serving metric.
    weight:
        Share of drain opportunities under smooth weighted round-robin;
        a weight-4 interactive lane dispatches four batches for every
        one a weight-1 batch lane gets when both have work ready.
    max_depth:
        Backlog budget — admissions beyond this queue depth are
        rejected with reason ``queue_full``.
    deadline_seconds:
        Default per-request deadline (admission to completion) when the
        caller does not give one.
    coalesce_seconds:
        Batching latency budget: how long a queued head may wait for
        compatible queries to coalesce behind it before the lane
        becomes dispatchable.
    slo:
        Declared latency targets the SLO report grades against.
    """

    name: str
    weight: int = 1
    max_depth: int = 256
    deadline_seconds: float = 0.05
    coalesce_seconds: float = 0.002
    slo: SLOTarget = field(
        default_factory=lambda: SLOTarget(0.02, 0.05, 0.08)
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("lane name must be non-empty")
        if self.weight < 1:
            raise ValueError(f"lane weight must be >= 1, got {self.weight}")
        if self.max_depth < 1:
            raise ValueError(
                f"lane max_depth must be >= 1, got {self.max_depth}"
            )
        if self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got "
                f"{self.deadline_seconds}"
            )
        if self.coalesce_seconds < 0:
            raise ValueError(
                f"coalesce_seconds must be >= 0, got {self.coalesce_seconds}"
            )


@dataclass(frozen=True)
class OverloadConfig:
    """Hysteretic overload controller thresholds.

    The controller tracks an EWMA of observed queue delay (time tickets
    waited before dispatch).  Degrade level ``l`` (``1..max_level``)
    engages when the EWMA exceeds ``degrade_delay_seconds * 2**(l-1)``;
    shedding engages beyond ``shed_delay_seconds``.  Each state exits
    only when the EWMA falls below ``recover_ratio`` times its entry
    threshold, and at most one step is taken per ``dwell_seconds`` —
    the two hysteresis mechanisms that keep the controller from
    flapping on bursty delay samples.
    """

    degrade_delay_seconds: float = 0.010
    shed_delay_seconds: float = 0.040
    recover_ratio: float = 0.5
    ewma_alpha: float = 0.3
    max_level: int = 2
    dwell_seconds: float = 0.020

    def __post_init__(self) -> None:
        if self.degrade_delay_seconds <= 0:
            raise ValueError("degrade_delay_seconds must be positive")
        if self.shed_delay_seconds <= self.degrade_delay_seconds:
            raise ValueError(
                "shed_delay_seconds must exceed degrade_delay_seconds"
            )
        if not 0 < self.recover_ratio < 1:
            raise ValueError(
                f"recover_ratio must be in (0, 1), got {self.recover_ratio}"
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {self.max_level}")
        if self.dwell_seconds < 0:
            raise ValueError(
                f"dwell_seconds must be >= 0, got {self.dwell_seconds}"
            )

    def entry_threshold(self, severity: int) -> float:
        """EWMA queue delay at which severity ``severity`` engages.

        Severities ``1..max_level`` are the degrade ladder; severity
        ``max_level + 1`` is shedding.
        """
        if severity < 1 or severity > self.max_level + 1:
            raise ValueError(f"severity out of range: {severity}")
        if severity == self.max_level + 1:
            return self.shed_delay_seconds
        return self.degrade_delay_seconds * 2 ** (severity - 1)


@dataclass(frozen=True)
class FrontDoorConfig:
    """The front door's complete declared policy."""

    lanes: tuple[LaneConfig, ...]
    max_batch: int = 32
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    downgrade_floor: int = 16

    def __post_init__(self) -> None:
        if not self.lanes:
            raise ValueError("at least one lane is required")
        names = [lane.name for lane in self.lanes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate lane names: {names}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.downgrade_floor < 1:
            raise ValueError(
                f"downgrade_floor must be >= 1, got {self.downgrade_floor}"
            )

    def lane(self, name: str) -> LaneConfig:
        """The lane named ``name``, or a clear error."""
        for lane in self.lanes:
            if lane.name == name:
                return lane
        raise KeyError(
            f"unknown lane {name!r}; configured: "
            f"{[lane.name for lane in self.lanes]}"
        )


def default_config(
    interactive_deadline: float = 0.05,
    batch_deadline: float = 2.0,
) -> FrontDoorConfig:
    """The two-lane default: interactive (weight 4) over batch (weight 1)."""
    return FrontDoorConfig(
        lanes=(
            LaneConfig(
                name="interactive",
                weight=4,
                max_depth=256,
                deadline_seconds=interactive_deadline,
                coalesce_seconds=0.002,
                slo=SLOTarget(
                    interactive_deadline * 0.4,
                    interactive_deadline,
                    interactive_deadline * 1.6,
                ),
            ),
            LaneConfig(
                name="batch",
                weight=1,
                max_depth=1024,
                deadline_seconds=batch_deadline,
                coalesce_seconds=0.02,
                slo=SLOTarget(
                    batch_deadline * 0.25, batch_deadline, batch_deadline * 1.5
                ),
            ),
        ),
        max_batch=32,
    )
