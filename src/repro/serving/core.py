"""Sans-io serving state machine: admission, scheduling, shedding.

All front-door *decisions* live here, in a class driven entirely by
explicit ``now`` timestamps: :class:`FrontDoorCore` owns the per-lane
bounded queues (admission control), the smooth-weighted-round-robin
drain order (priority lanes), plan-equality coalescing into batches
(deadline-aware batching) and the hysteretic
:class:`OverloadController` (graduated load shedding).  It never
sleeps, never spawns a thread and never calls an engine — the asyncio
front door (:mod:`repro.serving.frontdoor`) drives it with the event
loop's clock against a real index, and the traffic simulator
(:mod:`repro.serving.simulator`) drives it with virtual time, so both
exercise the *same* decision logic and the acceptance invariants can be
pinned deterministically.

The request lifecycle::

    admit(now) ──rejected──▶ ServedResponse(status="rejected", reason=…)
       │accepted
       ▼
    queued Ticket ──deadline passes──▶ rejected (deadline_expired)
       │poll(now) picks the lane (SWRR) and coalesces a Batch
       ▼
    Batch (shared effective plan, possibly downgraded)
       │caller executes batch.effective_plan on the engine
       ▼
    complete(batch, results, now) ──▶ ServedResponse(status="served" /
                                      "served_degraded")
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro import obs
from repro.search.engine import QueryPlan
from repro.search.results import SearchResult
from repro.serving.config import FrontDoorConfig, OverloadConfig

__all__ = [
    "REASON_QUEUE_FULL",
    "REASON_SHED",
    "REASON_DEADLINE_EXPIRED",
    "REASON_DEADLINE_INFEASIBLE",
    "REASON_INVALID_QUERY",
    "REASON_EXECUTION_ERROR",
    "REASON_SHUTDOWN",
    "REJECT_REASONS",
    "STATUS_SERVED",
    "STATUS_SERVED_DEGRADED",
    "STATUS_REJECTED",
    "STATUSES",
    "Ticket",
    "ServedResponse",
    "Batch",
    "OverloadController",
    "FrontDoorCore",
    "coalescible",
]

#: Admission refused: the lane's queue is at its backlog budget.
REASON_QUEUE_FULL = "queue_full"
#: Admission refused: the overload controller is shedding.
REASON_SHED = "shed"
#: Queued past its deadline before any batch picked it up.
REASON_DEADLINE_EXPIRED = "deadline_expired"
#: Dispatch would complete after the deadline; dropped instead.
REASON_DEADLINE_INFEASIBLE = "deadline_infeasible"
#: The query failed validation before queueing.
REASON_INVALID_QUERY = "invalid_query"
#: The engine raised while executing the ticket's batch.
REASON_EXECUTION_ERROR = "execution_error"
#: The front door was closed while the ticket was queued.
REASON_SHUTDOWN = "shutdown"

REJECT_REASONS = (
    REASON_QUEUE_FULL,
    REASON_SHED,
    REASON_DEADLINE_EXPIRED,
    REASON_DEADLINE_INFEASIBLE,
    REASON_INVALID_QUERY,
    REASON_EXECUTION_ERROR,
    REASON_SHUTDOWN,
)

STATUS_SERVED = "served"
STATUS_SERVED_DEGRADED = "served_degraded"
STATUS_REJECTED = "rejected"
STATUSES = (STATUS_SERVED, STATUS_SERVED_DEGRADED, STATUS_REJECTED)


def coalescible(plan: QueryPlan) -> bool:
    """Whether ``plan`` may share a batched ``search_batch`` call.

    Batched execution needs a candidate budget and runs without
    per-query bucket or time budgets, so only plans of that shape
    coalesce; anything else dispatches as a singleton batch.
    """
    return (
        plan.n_candidates is not None
        and plan.max_buckets is None
        and plan.time_budget is None
    )


@dataclass(frozen=True)
class Ticket:
    """One admitted request waiting in a lane queue."""

    seq: int
    lane: str
    query: np.ndarray
    plan: QueryPlan
    enqueue_time: float
    deadline: float
    payload: Any = None

    def queue_delay(self, now: float) -> float:
        """Seconds this ticket has waited since admission."""
        return max(0.0, now - self.enqueue_time)


@dataclass(frozen=True)
class ServedResponse:
    """The front door's terminal answer for one request.

    Every request resolves to exactly one of these — the front door
    never raises for overload.  ``status`` partitions the outcomes:

    * ``served`` — full-fidelity result, ``result`` is set;
    * ``served_degraded`` — ``result`` is set but was produced by a
      downgraded plan; ``degrade_level`` and ``coverage`` quantify the
      fidelity loss, mirroring the distributed layer's vocabulary;
    * ``rejected`` — no result; ``reason`` is one of
      :data:`REJECT_REASONS`.
    """

    status: str
    lane: str
    seq: int
    result: SearchResult | None = None
    reason: str | None = None
    detail: str | None = None
    latency_seconds: float = 0.0
    queue_seconds: float = 0.0
    degrade_level: int = 0
    coverage: float = 1.0
    deadline_met: bool = True
    effective_plan: QueryPlan | None = None
    payload: Any = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}")
        if self.status == STATUS_REJECTED:
            if self.reason not in REJECT_REASONS:
                raise ValueError(
                    f"rejected response needs a known reason, got "
                    f"{self.reason!r}"
                )
        elif self.result is None:
            raise ValueError(f"{self.status} response needs a result")

    @property
    def served(self) -> bool:
        """Whether a result was produced (possibly degraded)."""
        return self.status != STATUS_REJECTED


@dataclass(frozen=True)
class Batch:
    """A coalesced dispatch unit: tickets sharing one effective plan."""

    lane: str
    tickets: tuple[Ticket, ...]
    plan: QueryPlan
    effective_plan: QueryPlan
    degrade_level: int
    dispatch_time: float

    def __len__(self) -> int:
        return len(self.tickets)

    @property
    def queries(self) -> np.ndarray:
        """The batch's queries stacked ``(B, dim)`` for ``search_batch``."""
        return np.stack([ticket.query for ticket in self.tickets])


class OverloadController:
    """Hysteretic queue-delay ladder: degrade levels, then shedding.

    Tracks an EWMA of observed queue delays and maps it onto a severity
    axis ``0 .. max_level + 1``, where ``1..max_level`` are the degrade
    levels applied at dispatch and ``max_level + 1`` means admission
    shedding.  Two hysteresis mechanisms prevent flapping: a state
    exits only when the EWMA drops below ``recover_ratio`` times its
    entry threshold, and transitions step at most one severity per
    ``dwell_seconds`` (see :class:`~repro.serving.config.OverloadConfig`).
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.ewma = 0.0
        self._severity = 0
        self._last_transition = -np.inf

    @property
    def severity(self) -> int:
        """Current ladder position (0 = healthy, max_level+1 = shedding)."""
        return self._severity

    @property
    def degrade_level(self) -> int:
        """The plan-downgrade level applied to dispatches right now."""
        return min(self._severity, self.config.max_level)

    @property
    def shedding(self) -> bool:
        """Whether new admissions are currently shed."""
        return self._severity > self.config.max_level

    def observe(self, queue_delay: float, now: float) -> None:
        """Fold one observed queue delay into the ladder state."""
        alpha = self.config.ewma_alpha
        self.ewma += alpha * (queue_delay - self.ewma)
        if now - self._last_transition < self.config.dwell_seconds:
            return
        top = self.config.max_level + 1
        if (
            self._severity < top
            and self.ewma >= self.config.entry_threshold(self._severity + 1)
        ):
            self._severity += 1
            self._last_transition = now
        elif (
            self._severity > 0
            and self.ewma < self.config.entry_threshold(self._severity)
            * self.config.recover_ratio
        ):
            self._severity -= 1
            self._last_transition = now
        obs.observe_serving_overload(self.degrade_level, self.shedding)


class _Lane:
    """One priority lane's queue plus its SWRR drain credit."""

    def __init__(self, config: Any) -> None:
        self.config = config
        self.queue: deque[Ticket] = deque()
        self.credit = 0


class FrontDoorCore:
    """The serving front door's complete decision logic, sans io.

    Drive it with three calls: :meth:`admit` for each arriving request,
    :meth:`poll` whenever the clock advances (it expires overdue
    tickets and proposes at most one :class:`Batch` to execute), and
    :meth:`complete` / :meth:`fail` when the caller has run the batch.
    Every path that resolves a request emits the matching
    ``repro_serving_*`` telemetry and tallies :attr:`stats`, which the
    SLO report reads without requiring telemetry to be enabled.
    """

    def __init__(self, config: FrontDoorConfig) -> None:
        self.config = config
        self.controller = OverloadController(config.overload)
        self._lanes = {
            lane.name: _Lane(lane) for lane in config.lanes
        }
        self._seq = 0
        self.stats: dict[str, Any] = {
            "offered": {name: 0 for name in self._lanes},
            "admitted": {name: 0 for name in self._lanes},
            "served": {name: 0 for name in self._lanes},
            "degraded": {name: 0 for name in self._lanes},
            "rejected": {
                name: dict.fromkeys(REJECT_REASONS, 0)
                for name in self._lanes
            },
            "batches": 0,
            "batched_tickets": 0,
        }

    # -- admission -----------------------------------------------------

    def depth(self, lane: str) -> int:
        """Current queue depth of ``lane``."""
        return len(self._lanes[lane].queue)

    def pending(self) -> int:
        """Total tickets queued across all lanes."""
        return sum(len(lane.queue) for lane in self._lanes.values())

    def _backlog_delay(self, now: float) -> float:
        """The oldest queued ticket's wait so far — the live backlog signal."""
        delay = 0.0
        for state in self._lanes.values():
            if state.queue:
                delay = max(
                    delay, now - state.queue[0].enqueue_time
                )
        return delay

    def admit(
        self,
        lane: str,
        query: np.ndarray,
        plan: QueryPlan,
        now: float,
        deadline_seconds: float | None = None,
        payload: Any = None,
    ) -> tuple[Ticket | None, ServedResponse | None]:
        """Decide one arriving request: queue it or reject with reason.

        Returns ``(ticket, None)`` on admission or ``(None, response)``
        on rejection — exactly one side is set.  Admission latency is
        measured with :func:`repro.obs.now` (the real monotonic clock,
        even under the simulator: the decision itself runs in real
        time).
        """
        decision_start = obs.now()
        state = self._lanes[lane]  # unknown lane: caller bug, raise
        self._seq += 1
        seq = self._seq
        self.stats["offered"][lane] += 1
        obs.observe_serving_request(lane)
        # Every arrival feeds the controller the live backlog delay.
        # Dispatch-time observations alone would freeze the ladder while
        # shedding (no admissions → no batches → no observations), so
        # shedding could never recover; arrivals over drained queues
        # observe ~0 and walk the ladder back down.
        self.controller.observe(self._backlog_delay(now), now)
        reason = None
        if self.controller.shedding:
            reason = REASON_SHED
        elif len(state.queue) >= state.config.max_depth:
            reason = REASON_QUEUE_FULL
        if reason is not None:
            self.stats["rejected"][lane][reason] += 1
            obs.observe_serving_admission(
                lane, False, reason=reason,
                seconds=obs.now() - decision_start,
            )
            return None, ServedResponse(
                status=STATUS_REJECTED,
                lane=lane,
                seq=seq,
                reason=reason,
                payload=payload,
            )
        horizon = (
            deadline_seconds
            if deadline_seconds is not None
            else state.config.deadline_seconds
        )
        ticket = Ticket(
            seq=seq,
            lane=lane,
            query=query,
            plan=plan,
            enqueue_time=now,
            deadline=now + horizon,
            payload=payload,
        )
        state.queue.append(ticket)
        self.stats["admitted"][lane] += 1
        obs.observe_serving_admission(
            lane, True, seconds=obs.now() - decision_start
        )
        obs.observe_serving_queue_depth(lane, len(state.queue))
        return ticket, None

    # -- scheduling ----------------------------------------------------

    def poll(
        self, now: float
    ) -> tuple[list[tuple[Ticket, ServedResponse]], Batch | None, float | None]:
        """Advance the scheduler to ``now``.

        Returns ``(expired, batch, next_wake)``:

        * ``expired`` — tickets whose deadline passed while queued, each
          already resolved to a ``deadline_expired`` rejection;
        * ``batch`` — at most one :class:`Batch` ready to execute (call
          :meth:`poll` again after completing it: more lanes may be
          ready);
        * ``next_wake`` — the earliest future time at which polling
          again could change anything (a coalesce window closing or a
          deadline expiring), or ``None`` when every queue is empty.
        """
        expired = self._expire(now)
        batch = self._dispatch(now)
        return expired, batch, self._next_wake(now) if batch is None else now

    def _expire(self, now: float) -> list[tuple[Ticket, ServedResponse]]:
        """Resolve every queued ticket whose deadline has passed."""
        expired: list[tuple[Ticket, ServedResponse]] = []
        for name, state in self._lanes.items():
            if not state.queue:
                continue
            survivors = deque()
            changed = False
            for ticket in state.queue:
                if ticket.deadline <= now:
                    changed = True
                    expired.append(
                        (ticket, self._reject_ticket(
                            ticket, REASON_DEADLINE_EXPIRED, now
                        ))
                    )
                else:
                    survivors.append(ticket)
            if changed:
                state.queue = survivors
                obs.observe_serving_queue_depth(name, len(state.queue))
        return expired

    def _ready(self, state: _Lane, now: float) -> bool:
        """Whether a lane's head batch should dispatch now.

        A lane is ready when its coalesce window has elapsed since the
        head ticket enqueued, when a full batch is already waiting, or
        when waiting longer would push the head past its deadline.
        """
        if not state.queue:
            return False
        head = state.queue[0]
        if len(state.queue) >= self.config.max_batch:
            return True
        # Same addition as _next_wake's candidate — comparing via
        # subtraction instead can round the other way at the exact wake
        # instant and livelock a time-stepped driver.
        if now >= head.enqueue_time + state.config.coalesce_seconds:
            return True
        return head.deadline <= now + state.config.coalesce_seconds

    def _dispatch(self, now: float) -> Batch | None:
        """Pick the next lane by SWRR and coalesce its head batch."""
        ready = [
            state for state in self._lanes.values() if self._ready(state, now)
        ]
        if not ready:
            return None
        # Smooth weighted round-robin over the lanes with work ready:
        # each gains its weight in credit, the richest dispatches and
        # pays back the total — interleaving dispatches 4:1 instead of
        # bursting.
        total = sum(state.config.weight for state in ready)
        for state in ready:
            state.credit += state.config.weight
        chosen = max(ready, key=lambda state: (state.credit,
                                               state.config.weight))
        chosen.credit -= total
        return self._coalesce(chosen, now)

    def _coalesce(self, state: _Lane, now: float) -> Batch | None:
        """Build the head batch: same-plan tickets, degraded together.

        Takes the queue head's plan and pulls every queued ticket with
        an *equal* plan (frozen-dataclass equality — the same identity
        cache keys hash), up to ``max_batch``.  Non-matching tickets
        keep their queue order for a later batch.  The controller's
        current degrade level is applied batch-wide at dispatch time;
        tickets that cannot meet their deadline even if dispatched now
        are dropped as ``deadline_infeasible`` rather than executed and
        thrown away.
        """
        head = state.queue[0]
        taken: list[Ticket] = []
        kept = deque()
        limit = self.config.max_batch
        one_shot = not coalescible(head.plan)
        for ticket in state.queue:
            if len(taken) < limit and ticket.plan == head.plan:
                taken.append(ticket)
                if one_shot:
                    limit = 1
            else:
                kept.append(ticket)
        state.queue = kept
        obs.observe_serving_queue_depth(state.config.name, len(kept))
        level = self.controller.degrade_level
        effective = head.plan.downgraded(
            level, floor=self.config.downgrade_floor
        )
        delays = [ticket.queue_delay(now) for ticket in taken]
        for delay in delays:
            self.controller.observe(delay, now)
        obs.observe_serving_batch(state.config.name, len(taken), delays)
        self.stats["batches"] += 1
        self.stats["batched_tickets"] += len(taken)
        return Batch(
            lane=state.config.name,
            tickets=tuple(taken),
            plan=head.plan,
            effective_plan=effective,
            degrade_level=level,
            dispatch_time=now,
        )

    def _next_wake(self, now: float) -> float | None:
        """Earliest future instant at which :meth:`poll` could act."""
        wake: float | None = None
        for state in self._lanes.values():
            if not state.queue:
                continue
            head = state.queue[0]
            candidate = min(
                head.enqueue_time + state.config.coalesce_seconds,
                head.deadline,
            )
            wake = candidate if wake is None else min(wake, candidate)
        if wake is None:
            return None
        return max(wake, now)

    # -- completion ----------------------------------------------------

    def complete(
        self,
        batch: Batch,
        results: list[SearchResult],
        now: float,
    ) -> list[tuple[Ticket, ServedResponse]]:
        """Resolve a batch the caller executed with ``effective_plan``.

        ``results`` align with ``batch.tickets``.  Degraded batches get
        the degradation vocabulary stamped into each result's extras
        (``degraded`` / ``coverage`` / ``degrade_level``) — the same
        keys the distributed layer uses for partial-coverage results.
        """
        if len(results) != len(batch.tickets):
            raise ValueError(
                f"batch of {len(batch.tickets)} tickets got "
                f"{len(results)} results"
            )
        level = batch.degrade_level
        degraded = level > 0
        coverage = (
            batch.plan.budget_fraction(batch.effective_plan)
            if degraded else 1.0
        )
        out: list[tuple[Ticket, ServedResponse]] = []
        for ticket, result in zip(batch.tickets, results):
            if degraded:
                result = replace(result, extras={
                    **result.extras,
                    "degraded": True,
                    "coverage": coverage,
                    "degrade_level": level,
                })
            latency = max(0.0, now - ticket.enqueue_time)
            response = ServedResponse(
                status=(
                    STATUS_SERVED_DEGRADED if degraded else STATUS_SERVED
                ),
                lane=ticket.lane,
                seq=ticket.seq,
                result=result,
                latency_seconds=latency,
                queue_seconds=ticket.queue_delay(batch.dispatch_time),
                degrade_level=level,
                coverage=coverage,
                deadline_met=now <= ticket.deadline,
                effective_plan=batch.effective_plan,
                payload=ticket.payload,
            )
            self.stats["served"][ticket.lane] += 1
            if degraded:
                self.stats["degraded"][ticket.lane] += 1
            obs.observe_serving_served(ticket.lane, latency, degraded)
            out.append((ticket, response))
        return out

    def fail(
        self,
        batch: Batch,
        now: float,
        detail: str | None = None,
    ) -> list[tuple[Ticket, ServedResponse]]:
        """Resolve every ticket of a batch whose execution raised."""
        return [
            (ticket, self._reject_ticket(
                ticket, REASON_EXECUTION_ERROR, now, detail
            ))
            for ticket in batch.tickets
        ]

    def drop_infeasible(
        self, batch: Batch, service_estimate: float, now: float
    ) -> tuple[Batch, list[tuple[Ticket, ServedResponse]]]:
        """Split out tickets that cannot meet their deadline.

        Given an estimate of the batch's service time, tickets whose
        deadline falls before ``now + service_estimate`` are resolved as
        ``deadline_infeasible`` instead of being executed and discarded;
        the returned batch keeps only the feasible tickets (it may be
        empty).  The simulator uses this so that *every* completion in
        virtual time meets its deadline by construction; the asyncio
        front door, with no reliable service estimate, skips it.
        """
        feasible: list[Ticket] = []
        dropped: list[tuple[Ticket, ServedResponse]] = []
        horizon = now + service_estimate
        for ticket in batch.tickets:
            if ticket.deadline < horizon:
                dropped.append(
                    (ticket, self._reject_ticket(
                        ticket, REASON_DEADLINE_INFEASIBLE, now
                    ))
                )
            else:
                feasible.append(ticket)
        if not dropped:
            return batch, []
        return replace(batch, tickets=tuple(feasible)), dropped

    def shutdown(self, now: float) -> list[tuple[Ticket, ServedResponse]]:
        """Drain every queue, resolving the remainder as ``shutdown``."""
        drained: list[tuple[Ticket, ServedResponse]] = []
        for name, state in self._lanes.items():
            while state.queue:
                ticket = state.queue.popleft()
                drained.append(
                    (ticket, self._reject_ticket(
                        ticket, REASON_SHUTDOWN, now
                    ))
                )
            obs.observe_serving_queue_depth(name, 0)
        return drained

    def reject_invalid(
        self, lane: str, detail: str, payload: Any = None
    ) -> ServedResponse:
        """Resolve a request whose query failed validation."""
        self._seq += 1
        self.stats["offered"][lane] += 1
        self.stats["rejected"][lane][REASON_INVALID_QUERY] += 1
        obs.observe_serving_request(lane)
        obs.observe_serving_rejected(lane, REASON_INVALID_QUERY)
        return ServedResponse(
            status=STATUS_REJECTED,
            lane=lane,
            seq=self._seq,
            reason=REASON_INVALID_QUERY,
            detail=detail,
            payload=payload,
        )

    def _reject_ticket(
        self,
        ticket: Ticket,
        reason: str,
        now: float,
        detail: str | None = None,
    ) -> ServedResponse:
        self.stats["rejected"][ticket.lane][reason] += 1
        obs.observe_serving_rejected(ticket.lane, reason)
        return ServedResponse(
            status=STATUS_REJECTED,
            lane=ticket.lane,
            seq=ticket.seq,
            reason=reason,
            detail=detail,
            latency_seconds=max(0.0, now - ticket.enqueue_time),
            queue_seconds=ticket.queue_delay(now),
            deadline_met=False,
            payload=ticket.payload,
        )
