"""Virtual-time traffic simulator for the serving front door.

Runs the *same* :class:`~repro.serving.core.FrontDoorCore` the asyncio
front door serves with, but drives it as a discrete-event simulation in
virtual time: search results are real (every dispatched batch executes
against the real index), while *service times* come from a calibrated
cost model, so a ten-second flash crowd simulates in however long the
actual searches take and the outcome is deterministic per seed —
timestamps never depend on machine speed.

The cost model is deliberately simple and monotone in what degradation
changes::

    service = batch_overhead + n_tickets * per_query_cost * fraction

where ``fraction`` is the effective (possibly downgraded) plan's
candidate budget as a fraction of the base plan's
(:meth:`QueryPlan.budget_fraction`) — degrading genuinely buys
capacity, which is the feedback loop the overload controller's
acceptance tests exercise.  Calibrate ``per_query_cost`` on real
hardware with :func:`measure_serial_cost`, or pin it in tests.

The simulator dispatches only when its single virtual server is idle
and drops tickets whose deadline cannot be met even if dispatched
immediately (:meth:`FrontDoorCore.drop_infeasible`), so every completed
request meets its deadline *by construction* — the acceptance
invariant "accepted-and-completed latencies respect deadlines" is a
property of the scheduler, not luck.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.data.workloads import TrafficTrace, zipfian_stream
from repro.search.engine import QueryPlan
from repro.serving.config import FrontDoorConfig, default_config
from repro.serving.core import (
    STATUS_REJECTED,
    Batch,
    FrontDoorCore,
    ServedResponse,
)
from repro.serving.frontdoor import execute_batch

__all__ = [
    "SimRecord",
    "SimulationResult",
    "ServingSimulator",
    "measure_serial_cost",
]


@dataclass(frozen=True)
class SimRecord:
    """One simulated request's complete story."""

    arrival: float
    resolved: float
    response: ServedResponse


@dataclass(frozen=True)
class SimulationResult:
    """Everything a simulation run produced, ready for the SLO report."""

    records: tuple[SimRecord, ...]
    duration: float
    per_query_cost: float
    batch_overhead: float
    config: FrontDoorConfig
    core_stats: dict[str, Any] = field(repr=False)

    def __len__(self) -> int:
        return len(self.records)

    def by_status(self) -> dict[str, int]:
        """Request counts per terminal status."""
        counts: dict[str, int] = {}
        for record in self.records:
            status = record.response.status
            counts[status] = counts.get(status, 0) + 1
        return counts

    def by_reason(self) -> dict[str, int]:
        """Rejection counts per reason."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.response.status == STATUS_REJECTED:
                reason = record.response.reason or "unknown"
                counts[reason] = counts.get(reason, 0) + 1
        return counts

    def served_latencies(self, lane: str | None = None) -> np.ndarray:
        """Latencies (seconds) of served requests, optionally one lane's."""
        values = [
            record.response.latency_seconds
            for record in self.records
            if record.response.served
            and (lane is None or record.response.lane == lane)
        ]
        return np.asarray(values, dtype=np.float64)

    def goodput(
        self, start: float | None = None, end: float | None = None
    ) -> float:
        """Served requests per second of virtual time in ``[start, end)``.

        Degraded responses count — they carried a real (reduced-
        coverage) answer; rejections do not.  Defaults to the whole run.
        """
        lo = 0.0 if start is None else start
        hi = self.duration if end is None else end
        if hi <= lo:
            raise ValueError("end must exceed start")
        served = sum(
            1 for record in self.records
            if record.response.served and lo <= record.resolved < hi
        )
        return served / (hi - lo)

    def accepted_fraction(self) -> float:
        """Fraction of offered requests that were served (even degraded)."""
        if not self.records:
            return 0.0
        served = sum(1 for r in self.records if r.response.served)
        return served / len(self.records)


#: An event on the virtual-time arrival heap.
_Arrival = tuple[float, int, str, int, Any]


class ServingSimulator:
    """Discrete-event serving simulation over a real index.

    Parameters
    ----------
    index:
        The engine-backed index batches execute against (results are
        real; only their timing is simulated).
    config:
        The front door policy under test; defaults to
        :func:`~repro.serving.config.default_config`.
    per_query_cost:
        Virtual seconds one full-fidelity query costs the server.
    batch_overhead:
        Fixed virtual seconds per dispatched batch (what coalescing
        amortises).
    """

    def __init__(
        self,
        index: Any,
        config: FrontDoorConfig | None = None,
        *,
        per_query_cost: float = 1e-3,
        batch_overhead: float = 0.0,
    ) -> None:
        if per_query_cost <= 0:
            raise ValueError(
                f"per_query_cost must be positive, got {per_query_cost}"
            )
        if batch_overhead < 0:
            raise ValueError(
                f"batch_overhead must be >= 0, got {batch_overhead}"
            )
        self.index = index
        self.config = config or default_config()
        self.per_query_cost = per_query_cost
        self.batch_overhead = batch_overhead

    # -- entry points --------------------------------------------------

    def run_open(
        self,
        trace: TrafficTrace,
        queries: np.ndarray,
        plan: QueryPlan,
    ) -> SimulationResult:
        """Open-loop run: offer every trace arrival regardless of backlog.

        ``trace.query_ids`` index into ``queries``; ``trace.lanes`` must
        name lanes the config declares.
        """
        arrivals: list[_Arrival] = [
            (float(t), seq, trace.lanes[seq], int(qid), None)
            for seq, (t, qid) in enumerate(
                zip(trace.arrivals, trace.query_ids)
            )
        ]
        heapq.heapify(arrivals)
        return self._simulate(arrivals, queries, plan, on_resolve=None)

    def run_closed(
        self,
        queries: np.ndarray,
        plan: QueryPlan,
        *,
        n_clients: int,
        n_requests: int,
        think_seconds: float = 0.0,
        lane: str = "interactive",
        zipf_exponent: float = 1.1,
        seed: int = 0,
    ) -> SimulationResult:
        """Closed-loop run: each client re-submits after its response.

        ``n_clients`` clients issue ``n_requests`` total requests; each
        waits ``think_seconds`` of virtual time after its previous
        request *resolves* (served or rejected) before issuing the next
        — the backpressure-respecting load shape, in contrast to
        :meth:`run_open`.
        """
        if n_clients < 1 or n_requests < 1:
            raise ValueError("n_clients and n_requests must be positive")
        query_ids = zipfian_stream(
            len(queries), n_requests, exponent=zipf_exponent, seed=seed
        )
        issued = min(n_clients, n_requests)
        arrivals: list[_Arrival] = [
            (0.0, seq, lane, int(query_ids[seq]), seq)
            for seq in range(issued)
        ]
        heapq.heapify(arrivals)
        state = {"issued": issued}

        def on_resolve(record: SimRecord) -> _Arrival | None:
            if state["issued"] >= n_requests:
                return None
            seq = state["issued"]
            state["issued"] += 1
            return (
                record.resolved + think_seconds,
                seq,
                lane,
                int(query_ids[seq]),
                record.response.payload,
            )

        return self._simulate(arrivals, queries, plan, on_resolve=on_resolve)

    # -- the event loop ------------------------------------------------

    def _service_seconds(self, n_tickets: int, fraction: float) -> float:
        return (
            self.batch_overhead
            + n_tickets * self.per_query_cost * fraction
        )

    def _simulate(
        self,
        arrivals: list[_Arrival],
        queries: np.ndarray,
        plan: QueryPlan,
        on_resolve: Callable[[SimRecord], _Arrival | None] | None,
    ) -> SimulationResult:
        core = FrontDoorCore(self.config)
        records: list[SimRecord] = []
        now = 0.0
        inflight: tuple[Batch, float, list] | None = None

        def resolve(response: ServedResponse, at: float) -> None:
            record = SimRecord(
                arrival=float(response.payload["arrival"]),
                resolved=at,
                response=replace(
                    response, payload=response.payload.get("client")
                ),
            )
            records.append(record)
            if on_resolve is not None:
                follow_up = on_resolve(record)
                if follow_up is not None:
                    heapq.heappush(arrivals, follow_up)

        while True:
            next_wake: float | None = None
            if inflight is None:
                expired, batch, next_wake = core.poll(now)
                for _, response in expired:
                    resolve(response, now)
                if batch is not None:
                    fraction = batch.plan.budget_fraction(
                        batch.effective_plan
                    )
                    estimate = self._service_seconds(len(batch), fraction)
                    batch, dropped = core.drop_infeasible(
                        batch, estimate, now
                    )
                    for _, response in dropped:
                        resolve(response, now)
                    if batch.tickets:
                        service = self._service_seconds(
                            len(batch), fraction
                        )
                        results = execute_batch(self.index, batch)
                        inflight = (batch, now + service, results)
                    continue

            next_arrival = arrivals[0][0] if arrivals else np.inf
            next_completion = inflight[1] if inflight is not None else np.inf
            wake = (
                next_wake
                if inflight is None and next_wake is not None
                else np.inf
            )
            upcoming = min(next_arrival, next_completion, wake)
            if not np.isfinite(upcoming):
                break
            now = max(now, float(upcoming))
            if next_completion <= upcoming:
                batch, _, results = inflight  # type: ignore[misc]
                inflight = None
                for _, response in core.complete(batch, results, now):
                    resolve(response, now)
            elif next_arrival <= upcoming:
                _, _, lane, query_id, client = heapq.heappop(arrivals)
                payload = {"arrival": now, "client": client}
                _, rejection = core.admit(
                    lane, queries[query_id], plan, now, payload=payload
                )
                if rejection is not None:
                    resolve(rejection, now)
            # A bare wake just re-enters the dispatch block above.

        records.sort(key=lambda record: (record.arrival, record.resolved))
        return SimulationResult(
            records=tuple(records),
            duration=now,
            per_query_cost=self.per_query_cost,
            batch_overhead=self.batch_overhead,
            config=self.config,
            core_stats=core.stats,
        )


def measure_serial_cost(
    index: Any,
    plan: QueryPlan,
    queries: np.ndarray,
    repeats: int = 1,
) -> float:
    """Measured real seconds per query of serial batch execution.

    Calibrates :class:`ServingSimulator`'s ``per_query_cost`` (and the
    SLO report's serial-capacity baseline) by timing the index's real
    ``search_batch`` over ``queries`` with ``plan``'s budget.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if plan.n_candidates is None:
        raise ValueError("serial-cost calibration needs a candidate budget")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    index.search_batch(
        queries, plan.k, plan.n_candidates,
        rerank=plan.rerank, fusion=plan.fusion,
    )  # warm caches and lazy layouts before timing
    start = obs.now()
    for _ in range(repeats):
        index.search_batch(
            queries, plan.k, plan.n_candidates,
            rerank=plan.rerank, fusion=plan.fusion,
        )
    elapsed = obs.now() - start
    return elapsed / (repeats * len(queries))
