"""Index persistence: save a trained index to disk and reload it.

Training (ITQ iterations, k-means, spectral decompositions) is the
expensive phase of L2H; production systems train once and serve many
processes.  This module serialises a :class:`~repro.search.searcher.HashIndex`
— data, hasher state, prober choice, metric — into a single ``.npz``
archive with a JSON manifest, using no pickling (the archive is
inspectable and safe to load from untrusted storage).

Supported hashers: every :class:`~repro.hashing.base.ProjectionHasher`
(ITQ, PCAH, LSH), spectral hashing, and K-means hashing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.hashing.base import BinaryHasher, ProjectionHasher
from repro.hashing.itq import ITQ
from repro.hashing.kmh import KMeansHashing
from repro.hashing.lsh import RandomProjectionLSH
from repro.hashing.pcah import PCAHashing
from repro.hashing.sh import SpectralHashing
from repro.probing.ghr import GenerateHammingRanking
from repro.probing.hamming_ranking import HammingRanking
from repro.probing.multiprobe_lsh import MultiProbeLSH
from repro.search.searcher import HashIndex

__all__ = ["save_index", "load_index", "FORMAT_VERSION", "SUPPORTED_VERSIONS"]

#: Version 2 added ``multi_table_strategy`` to the manifest; version 1
#: archives load with the constructor default (``"round_robin"``), which
#: is what they were silently given before the field was persisted.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_PROBERS = {
    "gqr": GQR,
    "qr": QDRanking,
    "hr": HammingRanking,
    "ghr": GenerateHammingRanking,
    "multiprobe_lsh": MultiProbeLSH,
}


def _prober_name(prober) -> str:
    # MultiProbeLSH subclasses GQR, so check the subclass first.
    if isinstance(prober, MultiProbeLSH):
        return "multiprobe_lsh"
    for name, cls in _PROBERS.items():
        if type(prober) is cls:
            return name
    raise TypeError(
        f"cannot persist prober {type(prober).__name__}; "
        f"supported: {sorted(_PROBERS)}"
    )


def _hasher_state(hasher: BinaryHasher, tag: str) -> tuple[dict, dict]:
    """``(manifest_entry, arrays)`` describing one fitted hasher."""
    arrays: dict[str, np.ndarray] = {}
    if isinstance(hasher, SpectralHashing):
        entry = {"kind": "sh", "code_length": hasher.code_length}
        arrays[f"{tag}_basis"] = hasher._basis
        arrays[f"{tag}_mean"] = hasher._mean
        arrays[f"{tag}_mins"] = hasher._mins
        arrays[f"{tag}_omegas"] = hasher._omegas
        arrays[f"{tag}_dims"] = hasher._dims
    elif isinstance(hasher, KMeansHashing):
        entry = {
            "kind": "kmh",
            "code_length": hasher.code_length,
            "bits_per_subspace": hasher.bits_per_subspace,
            "scales": list(hasher._scales),
        }
        arrays[f"{tag}_splits"] = np.asarray(hasher._splits, dtype=np.int64)
        for u, codebook in enumerate(hasher._codebooks):
            arrays[f"{tag}_codebook{u}"] = codebook
        entry["n_subspaces"] = hasher.n_subspaces
    elif isinstance(hasher, ProjectionHasher):
        kinds = {ITQ: "itq", PCAHashing: "pcah", RandomProjectionLSH: "lsh"}
        kind = kinds.get(type(hasher), "projection")
        entry = {"kind": kind, "code_length": hasher.code_length}
        arrays[f"{tag}_weights"] = hasher._weights
        arrays[f"{tag}_mean"] = hasher._mean
    else:
        raise TypeError(
            f"cannot persist hasher {type(hasher).__name__}"
        )
    return entry, arrays


class _RestoredProjectionHasher(ProjectionHasher):
    """Generic affine-linear hasher rebuilt from persisted weights."""

    def _learn(self, centered):  # pragma: no cover - never retrained
        raise RuntimeError("restored hashers cannot be refit")


def _restore_hasher(entry: dict, tag: str, arrays) -> BinaryHasher:
    kind = entry["kind"]
    m = int(entry["code_length"])
    if kind == "sh":
        hasher = SpectralHashing(code_length=m)
        hasher._basis = arrays[f"{tag}_basis"]
        hasher._mean = arrays[f"{tag}_mean"]
        hasher._mins = arrays[f"{tag}_mins"]
        hasher._omegas = arrays[f"{tag}_omegas"]
        hasher._dims = arrays[f"{tag}_dims"]
        hasher._fitted = True
        return hasher
    if kind == "kmh":
        hasher = KMeansHashing(
            code_length=m, bits_per_subspace=int(entry["bits_per_subspace"])
        )
        hasher._splits = arrays[f"{tag}_splits"]
        hasher._codebooks = [
            arrays[f"{tag}_codebook{u}"]
            for u in range(int(entry["n_subspaces"]))
        ]
        hasher._scales = [float(s) for s in entry["scales"]]
        hasher._fitted = True
        return hasher
    # All affine-linear hashers restore to the same behaviour; keep the
    # original class where it matters for isinstance checks.
    classes = {
        "itq": ITQ,
        "pcah": PCAHashing,
        "lsh": RandomProjectionLSH,
        "projection": _RestoredProjectionHasher,
    }
    hasher = classes[kind].__new__(classes[kind])
    ProjectionHasher.__init__(hasher, m)
    hasher._weights = arrays[f"{tag}_weights"]
    hasher._mean = arrays[f"{tag}_mean"]
    hasher._fitted = True
    return hasher


def save_index(index: HashIndex, path: str | Path) -> Path:
    """Serialise a :class:`HashIndex` to ``<path>`` (``.npz`` appended).

    Stores the raw data, every hasher's learned state, the prober name
    and the metric.  Bucket tables are cheap to rebuild and are not
    stored.
    """
    path = Path(path)
    manifest = {
        "format_version": FORMAT_VERSION,
        "metric": index.metric,
        "prober": _prober_name(index.prober),
        "multi_table_strategy": index.multi_table_strategy,
        "hashers": [],
    }
    arrays: dict[str, np.ndarray] = {"data": index.data}
    for i, hasher in enumerate(index._hashers):
        entry, hasher_arrays = _hasher_state(hasher, f"hasher{i}")
        manifest["hashers"].append(entry)
        arrays.update(hasher_arrays)
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, **arrays)
    return path


def load_index(path: str | Path) -> HashIndex:
    """Rebuild a :class:`HashIndex` saved by :func:`save_index`."""
    with np.load(Path(path)) as archive:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        version = manifest.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported index format version {version!r}; this "
                f"build reads versions {SUPPORTED_VERSIONS} — refusing "
                "to guess at newer metadata"
            )
        data = archive["data"]
        hashers = [
            _restore_hasher(entry, f"hasher{i}", archive)
            for i, entry in enumerate(manifest["hashers"])
        ]
    prober = _PROBERS[manifest["prober"]]()
    return HashIndex(
        hashers if len(hashers) > 1 else hashers[0],
        data,
        prober=prober,
        metric=manifest["metric"],
        multi_table_strategy=manifest.get(
            "multi_table_strategy", "round_robin"
        ),
    )
