"""Persistence: save and load trained indexes."""

from repro.io.persistence import load_index, save_index

__all__ = ["load_index", "save_index"]
