"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered paper-dataset stand-ins and their statistics.
``compare``
    Run the hasher/prober comparison on one dataset and print recall
    at a candidate budget (a scriptable slice of Figures 7/13/15).
``demo``
    Build an index on synthetic data and answer a few queries,
    narrating each stage — a zero-setup smoke test.
``obs``
    Run a demo workload under the telemetry subsystem and print the
    metrics it recorded — as a summary table, a JSON snapshot, or
    Prometheus exposition text.  Includes a faulted distributed
    workload so the retry / hedge / breaker series are populated.
``chaos``
    Fault-injection drill: run the distributed index under each fault
    type and print recall, coverage and simulated makespan per
    scenario.
``eval``
    Score the stage pipeline's variants — candidate-only, exact
    rerank, ADC rerank, fused — against exact ground truth and print
    an MRR@k / Recall@k / NDCG@k table at a matched candidate budget.
``serve-sim``
    Drive the async serving front door's decision core through a
    seeded flash-crowd traffic trace in virtual time and print the SLO
    report: declared vs achieved latency quantiles per lane, goodput
    against serial capacity, and every shed/degrade/reject count.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.data import DATASETS, ground_truth_knn, load_dataset
from repro.eval.reporting import format_table
from repro.hashing import ITQ, PCAHashing, SpectralHashing
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.search.searcher import HashIndex

__all__ = ["build_parser", "main"]

_HASHERS = {
    "itq": lambda m: ITQ(code_length=m, seed=0),
    "pcah": lambda m: PCAHashing(code_length=m),
    "sh": lambda m: SpectralHashing(code_length=m),
}

_PROBERS = {
    "hr": HammingRanking,
    "ghr": GenerateHammingRanking,
    "qr": QDRanking,
    "gqr": GQR,
}


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.kind,
            f"{spec.paper_items:,}",
            spec.paper_dims,
            f"{spec.scaled_items:,}",
            spec.scaled_dims,
            spec.code_length,
        ]
        for spec in DATASETS.values()
    ]
    print(format_table(
        ["name", "type", "paper items", "paper dim",
         "our items", "our dim", "m"],
        rows,
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale)
    truth = ground_truth_knn(dataset.queries, dataset.data, args.k)
    hasher = _HASHERS[args.hasher](dataset.code_length).fit(dataset.data)

    rows = []
    for name, factory in _PROBERS.items():
        index = HashIndex(hasher, dataset.data, prober=factory())
        start = time.perf_counter()
        hits = 0
        for query, truth_row in zip(dataset.queries, truth):
            result = index.search(query, k=args.k, n_candidates=args.budget)
            hits += len(np.intersect1d(result.ids, truth_row))
        elapsed = time.perf_counter() - start
        rows.append([
            name.upper(),
            f"{hits / (args.k * len(dataset.queries)):.3f}",
            f"{1000 * elapsed / len(dataset.queries):.2f}ms",
        ])
    print(f"{dataset.name}: {dataset.data.shape}, m={dataset.code_length}, "
          f"{args.hasher.upper()}, k={args.k}, budget={args.budget}")
    print(format_table(["prober", f"recall@{args.k}", "per query"], rows))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import list_experiments, run_experiment

    if args.list:
        rows = [[name, desc] for name, desc in list_experiments().items()]
        print(format_table(["experiment", "description"], rows))
        return 0
    if args.experiment is None:
        print("give --experiment <id> or --list", file=sys.stderr)
        return 2
    print(run_experiment(args.experiment, scale=args.scale, k=args.k))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.data import gaussian_mixture, sample_queries

    print("generating 10,000 synthetic 32-d points ...")
    data = gaussian_mixture(10_000, 32, n_clusters=40,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, 3, seed=1)
    print("training 10-bit ITQ and building the GQR index ...")
    index = HashIndex(ITQ(code_length=10, seed=0), data, prober=GQR())
    table = index.tables[0]
    print(f"  {table.num_buckets} buckets, "
          f"{table.expected_population():.1f} items/bucket")
    for i, query in enumerate(queries):
        result = index.search(query, k=10, n_candidates=400)
        print(f"query {i}: top ids {result.ids[:5].tolist()} "
              f"(evaluated {result.n_candidates} items in "
              f"{result.n_buckets_probed} buckets)")
        stats = result.stats
        print(f"  engine: retrieval {stats.retrieval_seconds * 1e3:.3f}ms, "
              f"evaluation {stats.evaluation_seconds * 1e3:.3f}ms, "
              f"total {stats.total_seconds * 1e3:.3f}ms"
              + (", early stop" if stats.early_stop_triggered else ""))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.data import gaussian_mixture, sample_queries

    from repro.search.cache import QueryResultCache

    data = gaussian_mixture(10_000, 32, n_clusters=40,
                            cluster_spread=1.0, seed=0)
    queries = sample_queries(data, args.queries, seed=1)
    index = HashIndex(
        ITQ(code_length=10, seed=0), data, prober=GQR(),
        cache=QueryResultCache(capacity=256, name="hash"),
    )

    # A small faulted, replicated cluster so the fault-tolerance
    # series (retries, hedges, breaker state, coverage) have data.
    from repro.distributed import (
        DistributedHashIndex,
        FaultPlan,
        WorkerFaultSpec,
    )

    dist_data = data[:2000]
    dist = DistributedHashIndex(
        ITQ(code_length=8, seed=0).fit(dist_data),
        dist_data,
        num_workers=4,
        seed=0,
        replication_factor=2,
        fault_plan=FaultPlan(
            {
                0: WorkerFaultSpec(crashed=True),
                1: WorkerFaultSpec(slowdown_seconds=0.03),
            },
            seed=0,
        ),
    )

    sampler = obs.TraceSampler(every_n=args.sample_every, seed=0)
    with obs.telemetry_session(sampler=sampler) as telemetry:
        for query in queries:
            index.search(query, k=10, n_candidates=400)
        # Re-issue a slice of the workload so the cache hit/miss series
        # have data (the first pass populated the cache).
        for query in queries[:16]:
            index.search(query, k=10, n_candidates=400)
        batch = index.search_batch(queries[:32], k=10, n_candidates=400)
        assert len(batch) == min(32, len(queries))
        for query in queries[:16]:
            dist.search(query, k=10, n_candidates=200)
        if args.format == "json":
            print(obs.snapshot_json(telemetry.registry))
        elif args.format == "prometheus":
            print(obs.to_prometheus_text(telemetry.registry), end="")
        else:
            print(f"{args.queries} single + {len(batch)} batched + "
                  "16 distributed (faulted, 2x replicated) queries "
                  "under telemetry:")
            print(format_table(
                ["metric", "labels", "count", "mean", "p50", "p95"],
                obs.summary_rows(telemetry.registry),
            ))
            print("totals (counters and gauges):")
            print(format_table(
                ["metric", "labels", "value"],
                obs.counter_rows(telemetry.registry),
            ))
            traces = sampler.traces()
            print(f"sampled traces: {len(traces)} "
                  f"(every {sampler.every_n}th query)")
            last = sampler.last()
            if last is not None and last.spans is not None:
                stages = ", ".join(
                    f"{child['name']} {child['duration_seconds'] * 1e3:.3f}ms"
                    for child in last.spans["children"]
                )
                print(f"last sampled query #{last.seq}: {stages}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.data import gaussian_mixture, sample_queries
    from repro.eval.ir_report import format_ir_report, ir_report
    from repro.quantization.pq import ProductQuantizer
    from repro.search.stages import FusionSpec, RerankSpec

    k = args.k
    data = gaussian_mixture(args.items, 32, n_clusters=40,
                            cluster_spread=1.0, seed=args.seed)
    queries = sample_queries(data, args.queries, seed=args.seed + 1)
    truth = ground_truth_knn(queries, data, k)

    # The primary index scores candidates by asymmetric code distance,
    # so candidate-only rankings are coarse and reranking has headroom.
    index = HashIndex(
        ITQ(code_length=12, seed=0), data, prober=GQR(),
        evaluation="code",
        rerank_quantizer=ProductQuantizer(n_subspaces=8, seed=0),
    )
    # Fusion partner: an independent view of the same corpus (different
    # hash seed, exact evaluation).
    partner = HashIndex(ITQ(code_length=12, seed=7), data, prober=GQR())
    index.fuse_with(partner)

    pipelines: dict[str, list[np.ndarray]] = {
        "candidate-only": [],
        "rerank-exact": [],
        "rerank-adc": [],
        "fused": [],
    }
    for query in queries:
        budget = args.budget
        pipelines["candidate-only"].append(
            index.search(query, k=k, n_candidates=budget).ids
        )
        pipelines["rerank-exact"].append(
            index.search(query, k=k, n_candidates=budget,
                         rerank=RerankSpec(mode="exact")).ids
        )
        pipelines["rerank-adc"].append(
            index.search(query, k=k, n_candidates=budget,
                         rerank=RerankSpec(mode="adc")).ids
        )
        pipelines["fused"].append(
            index.search(query, k=k, n_candidates=budget,
                         rerank=RerankSpec(mode="exact"),
                         fusion=FusionSpec(weight=args.fusion_weight)).ids
        )
    print(f"pipeline eval: {args.items} items, {len(queries)} queries, "
          f"k={k}, budget={args.budget}, "
          f"fusion weight={args.fusion_weight}")
    print(format_ir_report(ir_report(pipelines, truth, k=k)))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.data import gaussian_mixture, sample_queries
    from repro.distributed import DistributedHashIndex, FaultPlan

    workers = args.workers
    total_workers = workers * args.replication
    seed = args.seed
    data = gaussian_mixture(3000, 24, n_clusters=12, seed=seed)
    queries = sample_queries(data, args.queries, seed=seed + 1)
    truth = ground_truth_knn(queries, data, args.k)
    hasher = ITQ(code_length=8, seed=0).fit(data)

    scenarios = [
        ("fault-free", FaultPlan.none(seed=seed)),
        ("crash", FaultPlan.crash(seed % workers, seed=seed)),
        (
            "transient",
            FaultPlan.transient((seed + 1) % workers, failures=1, seed=seed),
        ),
        ("slow", FaultPlan.slow(seed % workers, 0.03, seed=seed)),
        (
            "corrupt",
            FaultPlan.corrupt((seed + 2) % workers, attempts=1, seed=seed),
        ),
        ("random", FaultPlan.random(total_workers, seed=seed)),
    ]
    rows = []
    for name, plan in scenarios:
        index = DistributedHashIndex(
            hasher,
            data,
            num_workers=workers,
            seed=0,
            replication_factor=args.replication,
            fault_plan=plan,
        )
        hits = coverage = makespan = 0.0
        retries = hedges = degraded = 0
        for query, truth_row in zip(queries, truth):
            result = index.search(query, k=args.k, n_candidates=args.budget)
            hits += len(np.intersect1d(result.ids, truth_row))
            coverage += result.extras["coverage"]
            makespan += result.extras["makespan_seconds"]
            retries += result.extras["retries"]
            hedges += result.extras["hedges"]
            degraded += int(result.extras["degraded"])
        n = len(queries)
        rows.append([
            name,
            plan.describe(),
            f"{hits / (args.k * n):.3f}",
            f"{coverage / n:.3f}",
            f"{degraded}/{n}",
            retries,
            hedges,
            f"{1000 * makespan / n:.2f}ms",
        ])
    print(f"chaos drill: {workers} partitions x {args.replication} "
          f"replicas, {len(queries)} queries, seed={seed}, "
          f"k={args.k}, budget={args.budget}")
    print(format_table(
        ["scenario", "faults", f"recall@{args.k}", "coverage",
         "degraded", "retries", "hedges", "makespan"],
        rows,
    ))
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    import json

    from repro.data import gaussian_mixture, sample_queries
    from repro.data.workloads import FlashCrowd, traffic_trace
    from repro.serving import (
        ServingSimulator,
        format_slo_report,
        measure_serial_cost,
        slo_report,
    )

    data = gaussian_mixture(args.items, 32, n_clusters=40,
                            cluster_spread=1.0, seed=args.seed)
    queries = sample_queries(data, args.distinct, seed=args.seed + 1)
    index = HashIndex(ITQ(code_length=10, seed=0), data, prober=GQR())
    plan = index.plan(k=args.k, n_candidates=args.budget)

    per_query_cost = (
        1.0 / args.capacity_qps
        if args.capacity_qps > 0
        else measure_serial_cost(index, plan, queries[:32])
    )
    capacity = 1.0 / per_query_cost

    crowd = FlashCrowd(
        start=args.flash_start,
        duration=args.flash_duration,
        multiplier=args.flash_multiplier,
    )
    trace = traffic_trace(
        duration=args.duration, base_rate=args.base_rate,
        n_distinct=len(queries), seed=args.seed, flash_crowds=(crowd,),
    )
    print(f"serve-sim: {args.items} items, {len(queries)} distinct "
          f"queries, base rate {args.base_rate:g}/s with "
          f"{args.flash_multiplier:g}x crowd @{args.flash_start:g}s "
          f"for {args.flash_duration:g}s, serial capacity "
          f"{capacity:.0f} q/s, seed={args.seed}")
    simulator = ServingSimulator(index, per_query_cost=per_query_cost)
    sim = simulator.run_open(trace, queries, plan)
    report = slo_report(
        sim, serial_capacity_qps=capacity, flash_crowds=(crowd,)
    )
    print(format_slo_report(report))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote SLO report to {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GQR (SIGMOD 2018) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list dataset stand-ins")

    compare = commands.add_parser(
        "compare", help="compare querying methods on one dataset"
    )
    compare.add_argument(
        "--dataset", default="CIFAR60K",
        choices=sorted(DATASETS), help="registered dataset name",
    )
    compare.add_argument("--hasher", default="itq", choices=sorted(_HASHERS))
    compare.add_argument("--k", type=int, default=20)
    compare.add_argument("--budget", type=int, default=300,
                         help="candidate budget per query")
    compare.add_argument("--scale", type=float, default=1.0,
                         help="dataset downscale factor in (0, 1]")

    commands.add_parser("demo", help="end-to-end smoke demo")

    obs_cmd = commands.add_parser(
        "obs", help="demo workload under telemetry; print the metrics"
    )
    obs_cmd.add_argument("--queries", type=int, default=200,
                         help="single-query workload size")
    obs_cmd.add_argument("--sample-every", type=int, default=32,
                         help="trace-sampling period (every Nth query)")
    obs_cmd.add_argument(
        "--format", choices=("table", "json", "prometheus"),
        default="table", help="output format",
    )

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection drill: recall/coverage/makespan per "
             "fault type",
    )
    chaos.add_argument("--queries", type=int, default=20,
                       help="queries per scenario")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (chaos runs are "
                            "deterministic per seed)")
    chaos.add_argument("--workers", type=int, default=4,
                       help="number of partitions")
    chaos.add_argument("--replication", type=int, default=1,
                       help="replicas per partition")
    chaos.add_argument("--k", type=int, default=10)
    chaos.add_argument("--budget", type=int, default=300,
                       help="total candidate budget per query")

    eval_cmd = commands.add_parser(
        "eval",
        help="IR-metric table for candidate-only vs reranked vs fused "
             "pipelines",
    )
    eval_cmd.add_argument("--items", type=int, default=8000,
                          help="synthetic corpus size")
    eval_cmd.add_argument("--queries", type=int, default=50)
    eval_cmd.add_argument("--k", type=int, default=10)
    eval_cmd.add_argument("--budget", type=int, default=400,
                          help="candidate budget per query")
    eval_cmd.add_argument("--fusion-weight", type=float, default=0.5,
                          help="primary engine's weight in [0, 1]")
    eval_cmd.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve-sim",
        help="flash-crowd serving simulation; print the SLO report",
    )
    serve.add_argument("--duration", type=float, default=6.0,
                       help="simulated trace length in seconds")
    serve.add_argument("--base-rate", type=float, default=300.0,
                       help="calm-period arrival rate (queries/s)")
    serve.add_argument("--flash-multiplier", type=float, default=10.0,
                       help="rate multiplier inside the flash crowd")
    serve.add_argument("--flash-start", type=float, default=2.0,
                       help="flash-crowd onset (seconds into the trace)")
    serve.add_argument("--flash-duration", type=float, default=2.0,
                       help="flash-crowd length in seconds")
    serve.add_argument("--items", type=int, default=4000,
                       help="synthetic corpus size")
    serve.add_argument("--distinct", type=int, default=64,
                       help="distinct queries behind the zipfian stream")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--budget", type=int, default=200,
                       help="candidate budget of the full-fidelity plan")
    serve.add_argument("--capacity-qps", type=float, default=800.0,
                       help="virtual serial capacity (queries/s); 0 "
                            "calibrates from a timed serial run")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--json", default=None, metavar="PATH",
                       help="also write the SLO report as JSON")

    reproduce = commands.add_parser(
        "reproduce", help="regenerate a paper table/figure"
    )
    reproduce.add_argument("--experiment", default=None,
                           help="experiment id (see --list)")
    reproduce.add_argument("--list", action="store_true",
                           help="list available experiments")
    reproduce.add_argument("--scale", type=float, default=1.0)
    reproduce.add_argument("--k", type=int, default=20)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Internal failures (bad parameter combinations, workload errors)
    exit nonzero with a one-line diagnostic instead of a traceback, so
    shell pipelines and CI steps see the failure.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "compare": _cmd_compare,
        "demo": _cmd_demo,
        "obs": _cmd_obs,
        "chaos": _cmd_chaos,
        "eval": _cmd_eval,
        "serve-sim": _cmd_serve_sim,
        "reproduce": _cmd_reproduce,
    }
    try:
        return handlers[args.command](args)
    except Exception as err:  # reprolint: disable=RL005
        print(f"repro: error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
