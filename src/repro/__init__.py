"""repro — reproduction of *A General and Efficient Querying Method for
Learning to Hash* (Li et al., SIGMOD 2018).

The package implements the paper's contribution — quantization-distance
(QD) ranking and its generate-to-probe variant GQR — together with every
substrate the evaluation depends on: L2H hash learners (ITQ, PCAH, SH,
KMH, LSH), Hamming-based querying baselines (HR, GHR, MIH), the
vector-quantization comparator stack (k-means, PQ, OPQ, IMI), synthetic
datasets, and a recall-time experiment harness.

Quickstart::

    from repro import ITQ, GQR, HashIndex
    from repro.data import gaussian_mixture

    data = gaussian_mixture(10_000, 64, seed=0)
    index = HashIndex(ITQ(code_length=10, seed=0), data, prober=GQR())
    result = index.search(data[0], k=10, n_candidates=500)
    print(result.ids, result.distances)
"""

from repro import obs
from repro.core import (
    GQR,
    FlippingVectorGenerator,
    QDRanking,
    SharedGenerationTree,
    quantization_distance,
    quantization_distances,
    theorem2_mu,
)
from repro.distributed import (
    DistributedHashIndex,
    FaultPlan,
    NetworkModel,
    RetryPolicy,
)
from repro.hashing import (
    ITQ,
    AnchorGraphHashing,
    BinaryHasher,
    KMeansHashing,
    PCAHashing,
    RandomProjectionLSH,
    SemiSupervisedHashing,
    SpectralHashing,
)
from repro.index import (
    C2LSH,
    E2LSH,
    QALSH,
    HashTable,
    LinearScan,
    LSBForest,
    MultiIndexHashing,
)
from repro.io import load_index, save_index
from repro.probing import (
    BucketProber,
    GenerateHammingRanking,
    HammingRanking,
    MultiProbeLSH,
    PrefixRanking,
)
from repro.quantization import (
    InvertedMultiIndex,
    KMeans,
    OptimizedProductQuantizer,
    ProductQuantizer,
)
from repro.search import (
    CompactHashIndex,
    DynamicHashIndex,
    HashIndex,
    IMISearchIndex,
    MIHSearchIndex,
    SearchResult,
    StreamSearchIndex,
)
from repro.trees import KDTree, KMeansTree, RandomizedKDForest

__version__ = "1.0.0"

__all__ = [
    "GQR",
    "ITQ",
    "AnchorGraphHashing",
    "BinaryHasher",
    "BucketProber",
    "C2LSH",
    "CompactHashIndex",
    "E2LSH",
    "DistributedHashIndex",
    "DynamicHashIndex",
    "FaultPlan",
    "FlippingVectorGenerator",
    "GenerateHammingRanking",
    "HammingRanking",
    "HashIndex",
    "HashTable",
    "IMISearchIndex",
    "InvertedMultiIndex",
    "KDTree",
    "KMeans",
    "KMeansHashing",
    "KMeansTree",
    "LSBForest",
    "LinearScan",
    "MIHSearchIndex",
    "MultiIndexHashing",
    "MultiProbeLSH",
    "NetworkModel",
    "PrefixRanking",
    "OptimizedProductQuantizer",
    "PCAHashing",
    "ProductQuantizer",
    "QALSH",
    "QDRanking",
    "RandomizedKDForest",
    "RandomProjectionLSH",
    "RetryPolicy",
    "SemiSupervisedHashing",
    "SearchResult",
    "load_index",
    "obs",
    "save_index",
    "SharedGenerationTree",
    "StreamSearchIndex",
    "SpectralHashing",
    "quantization_distance",
    "quantization_distances",
    "theorem2_mu",
]
