"""Per-query trace sampling: keep the last K interesting query records.

Aggregates (histograms) answer "how slow is the p99"; they cannot
answer "*why* was that query slow".  The sampler keeps the raw material
for the second question without the cost of tracing everything: a
seeded deterministic every-``n``-th selector and a fixed-capacity ring
buffer of :class:`SampledTrace` records — each one a query's span tree,
its :class:`~repro.search.engine.ExecutionContext` stats, the probed
bucket sizes, and (when an offline harness attaches one) a full
:class:`~repro.eval.trace.ProbeTrace` dict, under the same schema
``ProbeTrace.to_dict`` produces, so online samples and offline traces
are interchangeable to tooling.

The selector is deterministic: with ``every_n = N`` and a fixed seed,
exactly the queries whose sequence number is congruent to a
seed-derived phase (mod N) are sampled — replaying a workload replays
the samples, which is what makes "query 4161 was slow yesterday"
reproducible.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["SampledTrace", "TraceSampler"]

#: Schema tag shared by sampled traces; the ``probe_trace`` field, when
#: present, follows ``repro.eval.trace.ProbeTrace.to_dict``'s schema.
_SCHEMA = "repro.sampled_trace/v1"


@dataclass(frozen=True)
class SampledTrace:
    """One captured query: span tree + stats + optional probe detail."""

    seq: int
    spans: dict | None
    stats: dict | None
    bucket_sizes: list[int] | None = None
    probe_trace: dict | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready record; ``probe_trace`` uses the ProbeTrace schema."""
        return {
            "schema": _SCHEMA,
            "seq": self.seq,
            "spans": self.spans,
            "stats": self.stats,
            "bucket_sizes": self.bucket_sizes,
            "probe_trace": self.probe_trace,
        }


class TraceSampler:
    """Deterministic every-``n``-th query sampler with a ring buffer.

    Parameters
    ----------
    every_n:
        Sampling period: one query in every ``every_n`` is captured.
    capacity:
        Ring-buffer size — only the most recent ``capacity`` samples are
        retained (post-hoc debugging wants *recent* slow queries).
    seed:
        Seeds the phase (which residue class mod ``every_n`` is
        sampled); the same seed always samples the same queries.
    """

    def __init__(
        self, every_n: int = 64, capacity: int = 32, seed: int = 0
    ) -> None:
        if every_n < 1:
            raise ValueError(f"every_n must be >= 1, got {every_n}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.every_n = every_n
        self.capacity = capacity
        self._phase = random.Random(seed).randrange(every_n)
        self._seen = 0
        self._ring: deque[SampledTrace] = deque(maxlen=capacity)
        # Samplers are shared across ParallelBatchExecutor worker
        # threads; counter and ring mutations must be atomic or
        # concurrent queries lose counts and tear the ring.
        self._lock = threading.Lock()

    @property
    def seen(self) -> int:
        """Queries that have passed through :meth:`should_sample`."""
        return self._seen

    def should_sample(self) -> bool:
        """Advance the query counter; True when this query is selected."""
        with self._lock:
            decision = self._seen % self.every_n == self._phase
            self._seen += 1
        return decision

    def record(
        self,
        spans: dict | None,
        stats: dict | None,
        bucket_sizes: list[int] | None = None,
        probe_trace: dict | None = None,
    ) -> SampledTrace:
        """Store a sample for the most recent selected query."""
        with self._lock:
            trace = SampledTrace(
                seq=self._seen - 1,
                spans=spans,
                stats=stats,
                bucket_sizes=bucket_sizes,
                probe_trace=probe_trace,
            )
            self._ring.append(trace)
        return trace

    def traces(self) -> list[SampledTrace]:
        """Retained samples, oldest first."""
        with self._lock:
            return list(self._ring)

    def last(self) -> SampledTrace | None:
        """The most recent sample, if any."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        """Drop retained samples and restart the query counter."""
        with self._lock:
            self._ring.clear()
            self._seen = 0
