"""Exporters: Prometheus text exposition and JSON snapshots.

Two machine-readable views of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``le``-cumulative histogram
  buckets, ``_sum`` / ``_count`` series), ready to serve from a
  ``/metrics`` endpoint or write to a scrape file;
* :func:`snapshot_json` — ``registry.snapshot()`` serialised, for CI
  artifacts and offline diffing.

:func:`parse_prometheus_text` is the inverse of the exposition renderer
over the subset this module emits — it exists so the round-trip can be
*tested* (render → parse → same numbers) rather than asserted by eye,
and doubles as a scrape-file reader for tooling.
"""

from __future__ import annotations

import json
import re

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramChild,
    MetricsRegistry,
)

__all__ = [
    "counter_rows",
    "parse_prometheus_text",
    "snapshot_json",
    "summary_rows",
    "to_prometheus_text",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in ``registry`` as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, (Counter, Gauge)):
            for labels, child in family.samples():
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"  # type: ignore[attr-defined]
                )
        elif isinstance(family, Histogram):
            for labels, child in family.samples():
                assert isinstance(child, HistogramChild)
                cumulative = child.cumulative_counts()
                bounds = [_format_value(b) for b in child.upper_bounds]
                for bound, running in zip(bounds + ["+Inf"], cumulative):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(bucket_labels)} {running}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} "
                    f"{child.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(text: str) -> str:
    return (
        text.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``(name, labels) -> value``.

    Labels are returned as a sorted tuple of ``(name, value)`` pairs so
    the dict key is hashable and order-insensitive.  Comment and blank
    lines are skipped; a malformed sample line raises ``ValueError``.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels_src = match.group("labels") or ""
        labels = tuple(
            sorted(
                (m.group("name"), _unescape_label_value(m.group("value")))
                for m in _LABEL_PAIR_RE.finditer(labels_src)
            )
        )
        out[(match.group("name"), labels)] = float(match.group("value"))
    return out


def snapshot_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def counter_rows(registry: MetricsRegistry) -> list[list[object]]:
    """Totals table rows: one per counter / gauge series.

    Each row is ``[metric, labels, value]``.  Zero-valued counter
    series are dropped (they carry no signal in a summary); gauges are
    always shown because 0 is a meaningful state (e.g. a closed
    breaker).  Renders the fault-tolerance series behind
    ``python -m repro obs``.
    """
    rows: list[list[object]] = []
    for family in registry.collect():
        if not isinstance(family, (Counter, Gauge)):
            continue
        for labels, child in family.samples():
            value = child.value  # type: ignore[attr-defined]
            if value == 0 and isinstance(family, Counter):
                continue
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            rows.append([family.name, label_text or "-", _format_value(value)])
    return rows


def summary_rows(registry: MetricsRegistry) -> list[list[object]]:
    """Top-line table rows: one per labelled histogram series.

    Each row is ``[metric, labels, count, mean, p50, p95]`` with times
    pre-scaled to milliseconds for the ``*_seconds`` metrics
    — the rendering behind ``python -m repro obs``.
    """
    rows: list[list[object]] = []
    for family in registry.collect():
        if not isinstance(family, Histogram):
            continue
        in_ms = family.name.endswith("_seconds")
        scale = 1e3 if in_ms else 1.0
        unit = "ms" if in_ms else ""
        for labels, child in family.samples():
            assert isinstance(child, HistogramChild)
            if child.count == 0:
                continue
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            rows.append(
                [
                    family.name,
                    label_text or "-",
                    child.count,
                    f"{child.mean * scale:.3f}{unit}",
                    f"{child.quantile(0.5) * scale:.3f}{unit}",
                    f"{child.quantile(0.95) * scale:.3f}{unit}",
                ]
            )
    return rows
