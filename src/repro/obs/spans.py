"""Span API: monotonic, nestable stage timing for the query pipeline.

A span times one named stage with :func:`time.perf_counter` and hooks
itself into the enclosing span (per-thread stack), producing a tree::

    with span("query") as root:
        with span("retrieve"):
            ...
        with span("evaluate"):
            ...
    root.duration            # total
    root.children[0].name    # "retrieve"

Spans are deliberately dumb: they only *measure*.  They never touch the
metrics registry or the sampler — recording span-derived durations into
histograms happens once per query in
:func:`repro.obs.telemetry.observe_query`, so a span costs two
``perf_counter`` calls and a few list operations whether telemetry is
enabled or not.  That keeps the disabled path within noise of the
inline arithmetic it replaced (``benchmarks/bench_obs_overhead.py``
measures both), while the per-query
:class:`~repro.search.engine.ExecutionContext` keeps getting real
numbers even with the registry off.

Reprolint rule RL009 makes this module the only legitimate home of
``perf_counter`` in ``repro.search`` / ``repro.index`` /
``repro.distributed``: stage timing goes through spans, and code that
needs a raw monotonic timestamp (e.g. the engine's ``time_budget``
deadline) uses :data:`now`.
"""

from __future__ import annotations

import threading
from time import perf_counter

__all__ = ["Span", "current_span", "now", "span"]

#: Monotonic timestamp in seconds — the one sanctioned clock for
#: deadline arithmetic outside this module (see RL009).
now = perf_counter

_LOCAL = threading.local()


def _stack() -> list[Span]:
    try:
        return _LOCAL.stack  # type: ignore[no-any-return]
    except AttributeError:
        stack: list[Span] = []
        _LOCAL.stack = stack
        return stack


class Span:
    """One timed stage; use as a context manager (see :func:`span`)."""

    __slots__ = ("name", "duration", "children", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.duration = 0.0
        self.children: list[Span] = []
        self._start = 0.0

    def __enter__(self) -> Span:
        _stack().append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.duration = perf_counter() - self._start
        stack = _stack()
        stack.pop()
        if stack:
            stack[-1].children.append(self)

    def child_duration(self, name: str) -> float:
        """Summed duration of direct children named ``name``."""
        return sum(c.duration for c in self.children if c.name == name)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready span tree (the sampled-trace schema's span form)."""
        return {
            "name": self.name,
            "duration_seconds": float(self.duration),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


def span(name: str) -> Span:
    """Open a new span; nesting is tracked per thread."""
    return Span(name)


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None
