"""Process-global telemetry state and the engine's recording hooks.

The query engine calls three tiny hooks — :func:`should_sample`,
:func:`observe_query` / :func:`observe_batch`, and the distributed
layer's :func:`observe_shard` / :func:`observe_distributed` — all of
which reduce to a single ``None`` check when telemetry is disabled
(the default).  :func:`enable_telemetry` installs a
:class:`TelemetryState` binding a
:class:`~repro.obs.metrics.MetricsRegistry` (injected or fresh) and an
optional :class:`~repro.obs.sampling.TraceSampler`; the state
pre-registers every instrument and caches per-index label children so
the per-query cost is a handful of histogram observes.

Instrument inventory (all under the ``repro_`` prefix):

========================================  =========  =====================
metric                                    kind       labels
========================================  =========  =====================
``repro_queries_total``                   counter    ``index``
``repro_query_stage_seconds``             histogram  ``index``, ``stage``
``repro_query_candidates``                histogram  ``index``
``repro_query_buckets_probed``            histogram  ``index``
``repro_early_stops_total``               counter    ``index``
``repro_sampled_traces_total``            counter    —
``repro_shard_queries_total``             counter    ``worker``
``repro_shard_seconds``                   histogram  ``worker``
``repro_parallel_shards_total``           counter    ``mode``
``repro_parallel_shard_seconds``          histogram  ``mode``
``repro_distributed_queries_total``       counter    —
``repro_distributed_workers_contacted``   histogram  —
``repro_distributed_stage_seconds``       histogram  ``stage``
``repro_distributed_retries_total``       counter    —
``repro_distributed_hedges_total``        counter    —
``repro_distributed_degraded_total``      counter    —
``repro_distributed_coverage``            histogram  —
``repro_shard_faults_total``              counter    ``worker``, ``kind``
``repro_breaker_state``                   gauge      ``worker``
``repro_cache_hits_total``                counter    ``cache``
``repro_cache_misses_total``              counter    ``cache``
``repro_cache_evictions_total``           counter    ``cache``
``repro_cache_occupancy``                 gauge      ``cache``
``repro_cache_hit_seconds``               histogram  ``cache``
``repro_serving_requests_total``          counter    ``lane``
``repro_serving_admitted_total``          counter    ``lane``
``repro_serving_rejected_total``          counter    ``lane``, ``reason``
``repro_serving_shed_total``              counter    ``lane``
``repro_serving_degraded_total``          counter    ``lane``
``repro_serving_served_total``            counter    ``lane``
``repro_serving_queue_depth``             gauge      ``lane``
``repro_serving_queue_delay_seconds``     histogram  ``lane``
``repro_serving_latency_seconds``         histogram  ``lane``
``repro_serving_admission_seconds``       histogram  —
``repro_serving_batch_size``              histogram  ``lane``
``repro_serving_overload_level``          gauge      —
========================================  =========  =====================

``index`` is the engine's name ("hash", "mih", "imi", "compact",
"dynamic", "stream", "shard").  ``stage`` is a first-class label over
the engine's pipeline stages: ``retrieval`` / ``evaluation`` /
``total`` always, plus ``rerank`` and ``fuse`` for queries whose plan
ran those stages (``fanout`` / ``merge`` / ``rerank`` for the
distributed coordinator).  The fault-tolerance series (PR 4) are fed
by the coordinator: ``kind`` is a fault-taxonomy slug (``crash`` /
``transient`` / ``timeout`` / ``corrupt``), and ``repro_breaker_state``
encodes the circuit-breaker automaton as 0 = closed, 1 = half-open,
2 = open.  When a trace sampler is installed, sampled distributed
queries embed their classified fault events in the trace's ``stats``.
The cache series (PR 5) are fed by
:class:`~repro.search.cache.QueryResultCache`; ``cache`` is the cache's
name ("hash", "shard", …).

The serving series are fed by the asynchronous front door
(:mod:`repro.serving`): ``lane`` is the priority lane's name
("interactive", "batch", …) and ``reason`` a rejection slug
(``queue_full`` / ``shed`` / ``deadline_expired`` /
``deadline_infeasible`` / ``invalid_query`` / ``execution_error`` /
``shutdown``).  ``repro_serving_shed_total`` double-counts the
``reason="shed"`` rejections so shedding is visible as its own series;
``repro_serving_overload_level`` encodes the hysteretic overload
controller's position on the degrade ladder (shedding is reported as
``max_level + 1``).
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Protocol

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    Counter,
    CounterChild,
    Gauge,
    Histogram,
    HistogramChild,
    MetricsRegistry,
)
from repro.obs.sampling import TraceSampler

if TYPE_CHECKING:
    from repro.obs.spans import Span

__all__ = [
    "QueryStats",
    "TelemetryState",
    "disable_telemetry",
    "enable_telemetry",
    "get_registry",
    "get_sampler",
    "observe_batch",
    "observe_breaker",
    "observe_cache",
    "observe_cache_evictions",
    "observe_cache_occupancy",
    "observe_distributed",
    "observe_fault",
    "observe_parallel_shard",
    "observe_query",
    "observe_serving_admission",
    "observe_serving_batch",
    "observe_serving_overload",
    "observe_serving_queue_depth",
    "observe_serving_rejected",
    "observe_serving_request",
    "observe_serving_served",
    "observe_shard",
    "should_sample",
    "telemetry_enabled",
    "telemetry_session",
]

_WORKERS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
_COVERAGE_BUCKETS = (0.25, 0.5, 0.75, 0.9, 0.99, 1.0)

#: Circuit-breaker automaton states encoded for the gauge.
_BREAKER_STATES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class QueryStats(Protocol):
    """The slice of ``ExecutionContext`` the hooks read (duck-typed so
    ``repro.obs`` stays import-independent of the engine)."""

    n_buckets_probed: int
    n_candidates: int
    early_stop_triggered: bool
    retrieval_seconds: float
    evaluation_seconds: float
    total_seconds: float
    bucket_sizes: list[int] | None
    stage_seconds: dict[str, float]

    def as_dict(self) -> dict: ...


class _IndexInstruments:
    """Cached recording methods for one ``index`` label value.

    Holds the children's *bound* ``observe``/``inc`` methods rather
    than the children: these run on every query, and skipping the
    attribute lookup and method bind per call is measurable against
    sub-millisecond query latencies.
    """

    __slots__ = (
        "inc_queries",
        "observe_retrieval",
        "observe_evaluation",
        "observe_total",
        "observe_candidates",
        "observe_buckets",
        "inc_early_stops",
        "observe_rerank",
        "observe_fuse",
    )

    def __init__(
        self,
        queries: CounterChild,
        retrieval: HistogramChild,
        evaluation: HistogramChild,
        total: HistogramChild,
        candidates: HistogramChild,
        buckets: HistogramChild,
        early_stops: CounterChild,
        rerank: HistogramChild,
        fuse: HistogramChild,
    ) -> None:
        self.inc_queries = queries.inc
        self.observe_retrieval = retrieval.observe
        self.observe_evaluation = evaluation.observe
        self.observe_total = total.observe
        self.observe_candidates = candidates.observe
        self.observe_buckets = buckets.observe
        self.inc_early_stops = early_stops.inc
        self.observe_rerank = rerank.observe
        self.observe_fuse = fuse.observe


class TelemetryState:
    """Everything telemetry-on means: registry, sampler, instruments."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sampler: TraceSampler | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sampler = sampler
        reg = self.registry
        self.queries: Counter = reg.counter(
            "repro_queries_total",
            "Queries executed by the query engine",
            labels=("index",),
        )
        self.stage_seconds: Histogram = reg.histogram(
            "repro_query_stage_seconds",
            "Per-stage query latency as measured by the engine's spans",
            labels=("index", "stage"),
        )
        self.candidates: Histogram = reg.histogram(
            "repro_query_candidates",
            "Candidate ids gathered per query (evaluation cost)",
            labels=("index",),
            buckets=DEFAULT_COUNT_BUCKETS,
        )
        self.buckets_probed: Histogram = reg.histogram(
            "repro_query_buckets_probed",
            "Non-empty buckets fetched per query (retrieval cost)",
            labels=("index",),
            buckets=DEFAULT_COUNT_BUCKETS,
        )
        self.early_stops: Counter = reg.counter(
            "repro_early_stops_total",
            "Queries terminated early by the Theorem 2 bound",
            labels=("index",),
        )
        self.sampled_traces: Counter = reg.counter(
            "repro_sampled_traces_total",
            "Queries captured by the trace sampler",
        )
        self.shard_queries: Counter = reg.counter(
            "repro_shard_queries_total",
            "Local searches answered per shard worker",
            labels=("worker",),
        )
        self.shard_seconds: Histogram = reg.histogram(
            "repro_shard_seconds",
            "Per-shard local search latency",
            labels=("worker",),
        )
        self.parallel_shards: Counter = reg.counter(
            "repro_parallel_shards_total",
            "Batch shards dispatched by the parallel batch executor",
            labels=("mode",),
        )
        self.parallel_shard_seconds: Histogram = reg.histogram(
            "repro_parallel_shard_seconds",
            "Wall time of one parallel batch shard, by execution mode",
            labels=("mode",),
        )
        self.distributed_queries: Counter = reg.counter(
            "repro_distributed_queries_total",
            "Scatter-gather queries answered by the coordinator",
        )
        self.workers_contacted: Histogram = reg.histogram(
            "repro_distributed_workers_contacted",
            "Workers contacted per distributed query (fan-out)",
            buckets=_WORKERS_BUCKETS,
        )
        self.distributed_stage_seconds: Histogram = reg.histogram(
            "repro_distributed_stage_seconds",
            "Coordinator stage latency (fanout = scatter + local work, "
            "merge = gather + global top-k)",
            labels=("stage",),
        )
        self.distributed_retries: Counter = reg.counter(
            "repro_distributed_retries_total",
            "Failed shard attempts that were retried or degraded",
        )
        self.distributed_hedges: Counter = reg.counter(
            "repro_distributed_hedges_total",
            "Hedged requests issued to replicas for straggler attempts",
        )
        self.distributed_degraded: Counter = reg.counter(
            "repro_distributed_degraded_total",
            "Distributed queries answered with partial coverage",
        )
        self.distributed_coverage: Histogram = reg.histogram(
            "repro_distributed_coverage",
            "Reachable fraction of routed items per distributed query",
            buckets=_COVERAGE_BUCKETS,
        )
        self.shard_faults: Counter = reg.counter(
            "repro_shard_faults_total",
            "Classified shard failures by fault-taxonomy kind",
            labels=("worker", "kind"),
        )
        self.breaker_state: Gauge = reg.gauge(
            "repro_breaker_state",
            "Per-worker circuit-breaker state "
            "(0 = closed, 1 = half-open, 2 = open)",
            labels=("worker",),
        )
        self.cache_hits: Counter = reg.counter(
            "repro_cache_hits_total",
            "Query-result cache lookups answered from the cache",
            labels=("cache",),
        )
        self.cache_misses: Counter = reg.counter(
            "repro_cache_misses_total",
            "Query-result cache lookups that fell through to execution",
            labels=("cache",),
        )
        self.cache_evictions: Counter = reg.counter(
            "repro_cache_evictions_total",
            "Entries dropped by LRU pressure, TTL expiry or invalidation",
            labels=("cache",),
        )
        self.cache_occupancy: Gauge = reg.gauge(
            "repro_cache_occupancy",
            "Entries currently held by the query-result cache",
            labels=("cache",),
        )
        self.cache_hit_seconds: Histogram = reg.histogram(
            "repro_cache_hit_seconds",
            "Lookup latency of cache hits (key build excluded)",
            labels=("cache",),
        )
        self.serving_requests: Counter = reg.counter(
            "repro_serving_requests_total",
            "Requests offered to the serving front door per lane",
            labels=("lane",),
        )
        self.serving_admitted: Counter = reg.counter(
            "repro_serving_admitted_total",
            "Requests admitted past the front door's backlog budget",
            labels=("lane",),
        )
        self.serving_rejected: Counter = reg.counter(
            "repro_serving_rejected_total",
            "Requests rejected with a reason instead of being served",
            labels=("lane", "reason"),
        )
        self.serving_shed: Counter = reg.counter(
            "repro_serving_shed_total",
            "Requests rejected by the overload controller's shed state",
            labels=("lane",),
        )
        self.serving_degraded: Counter = reg.counter(
            "repro_serving_degraded_total",
            "Requests served with a downgraded (cheaper) plan",
            labels=("lane",),
        )
        self.serving_served: Counter = reg.counter(
            "repro_serving_served_total",
            "Requests served to completion (full-fidelity or degraded)",
            labels=("lane",),
        )
        self.serving_queue_depth: Gauge = reg.gauge(
            "repro_serving_queue_depth",
            "Tickets currently queued per priority lane",
            labels=("lane",),
        )
        self.serving_queue_delay: Histogram = reg.histogram(
            "repro_serving_queue_delay_seconds",
            "Time tickets spent queued before dispatch",
            labels=("lane",),
        )
        self.serving_latency: Histogram = reg.histogram(
            "repro_serving_latency_seconds",
            "Admission-to-completion latency of served requests",
            labels=("lane",),
        )
        self.serving_admission_seconds: Histogram = reg.histogram(
            "repro_serving_admission_seconds",
            "Wall time of the admission decision itself",
        )
        self.serving_batch_size: Histogram = reg.histogram(
            "repro_serving_batch_size",
            "Queries coalesced into each dispatched engine batch",
            labels=("lane",),
            buckets=_WORKERS_BUCKETS,
        )
        self.serving_overload_level: Gauge = reg.gauge(
            "repro_serving_overload_level",
            "Overload controller position: 0 = normal, 1..N = degrade "
            "ladder, N+1 = shedding",
        )
        self._per_index: dict[str, _IndexInstruments] = {}
        # Worker threads resolve instruments for their engine's index
        # label concurrently; the per-child locks inside the registry
        # make the cells safe, but this cache itself needs its own
        # guard.
        self._per_index_lock = threading.Lock()

    def index_instruments(self, index: str) -> _IndexInstruments:
        """Label children for ``index``, resolved once and cached."""
        instruments = self._per_index.get(index)
        if instruments is not None:
            return instruments
        with self._per_index_lock:
            instruments = self._per_index.get(index)
            if instruments is None:
                instruments = _IndexInstruments(
                    queries=self.queries.labels(index=index),
                    retrieval=self.stage_seconds.labels(
                        index=index, stage="retrieval"
                    ),
                    evaluation=self.stage_seconds.labels(
                        index=index, stage="evaluation"
                    ),
                    total=self.stage_seconds.labels(
                        index=index, stage="total"
                    ),
                    candidates=self.candidates.labels(index=index),
                    buckets=self.buckets_probed.labels(index=index),
                    early_stops=self.early_stops.labels(index=index),
                    rerank=self.stage_seconds.labels(
                        index=index, stage="rerank"
                    ),
                    fuse=self.stage_seconds.labels(index=index, stage="fuse"),
                )
                self._per_index[index] = instruments
            return instruments


_STATE: TelemetryState | None = None


def enable_telemetry(
    registry: MetricsRegistry | None = None,
    sampler: TraceSampler | None = None,
) -> TelemetryState:
    """Install (and return) the process-global telemetry state."""
    global _STATE
    _STATE = TelemetryState(registry=registry, sampler=sampler)
    return _STATE


def disable_telemetry() -> None:
    """Remove the global state; every hook returns to its no-op path."""
    global _STATE
    _STATE = None


def telemetry_enabled() -> bool:
    """Whether a telemetry state is currently installed."""
    return _STATE is not None


def get_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when telemetry is disabled."""
    return _STATE.registry if _STATE is not None else None


def get_sampler() -> TraceSampler | None:
    """The active sampler, or ``None``."""
    return _STATE.sampler if _STATE is not None else None


@contextmanager
def telemetry_session(
    registry: MetricsRegistry | None = None,
    sampler: TraceSampler | None = None,
) -> Iterator[TelemetryState]:
    """Enable telemetry for a scope, restoring the previous state after.

    The isolation primitive tests and the CLI use: whatever state was
    installed before (including none) comes back on exit.
    """
    global _STATE
    previous = _STATE
    state = TelemetryState(registry=registry, sampler=sampler)
    _STATE = state
    try:
        yield state
    finally:
        _STATE = previous


def should_sample() -> bool:
    """Advance the sampler; True when the coming query is selected."""
    state = _STATE
    if state is None or state.sampler is None:
        return False
    return state.sampler.should_sample()


def observe_query(
    index: str,
    ctx: QueryStats,
    root: Span | None = None,
    sampled: bool = False,
) -> None:
    """Record one executed query into the registry (and the sampler).

    ``ctx`` is the query's ``ExecutionContext``; ``root`` its span tree
    when the caller kept one; ``sampled`` the decision
    :func:`should_sample` returned before execution.
    """
    state = _STATE
    if state is None:
        return
    ins = state.index_instruments(index)
    ins.inc_queries()
    ins.observe_retrieval(ctx.retrieval_seconds)
    ins.observe_evaluation(ctx.evaluation_seconds)
    ins.observe_total(ctx.total_seconds)
    ins.observe_candidates(ctx.n_candidates)
    ins.observe_buckets(ctx.n_buckets_probed)
    if ctx.early_stop_triggered:
        ins.inc_early_stops()
    stage_seconds = getattr(ctx, "stage_seconds", None)
    if stage_seconds:
        if "rerank" in stage_seconds:
            ins.observe_rerank(stage_seconds["rerank"])
        if "fuse" in stage_seconds:
            ins.observe_fuse(stage_seconds["fuse"])
    if sampled and state.sampler is not None:
        state.sampled_traces.inc()
        state.sampler.record(
            spans=root.to_dict() if root is not None else None,
            stats=ctx.as_dict(),
            bucket_sizes=ctx.bucket_sizes,
        )


def observe_batch(index: str, contexts: list) -> None:
    """Record a batch of executed queries (no sampling on batch paths)."""
    state = _STATE
    if state is None or not contexts:
        return
    ins = state.index_instruments(index)
    for ctx in contexts:
        ins.inc_queries()
        ins.observe_retrieval(ctx.retrieval_seconds)
        ins.observe_evaluation(ctx.evaluation_seconds)
        ins.observe_total(ctx.total_seconds)
        ins.observe_candidates(ctx.n_candidates)
        ins.observe_buckets(ctx.n_buckets_probed)
        if ctx.early_stop_triggered:
            ins.inc_early_stops()
        stage_seconds = getattr(ctx, "stage_seconds", None)
        if stage_seconds:
            if "rerank" in stage_seconds:
                ins.observe_rerank(stage_seconds["rerank"])
            if "fuse" in stage_seconds:
                ins.observe_fuse(stage_seconds["fuse"])


def observe_shard(worker_id: int, seconds: float) -> None:
    """Record one shard-local search (called by ``ShardWorker``)."""
    state = _STATE
    if state is None:
        return
    state.shard_queries.labels(worker=worker_id).inc()
    state.shard_seconds.labels(worker=worker_id).observe(seconds)


def observe_parallel_shard(mode: str, seconds: float) -> None:
    """Record one batch shard the parallel executor dispatched.

    ``mode`` is the execution mode that ran the shard (``"thread"`` /
    ``"process"``); ``seconds`` the shard's wall time as measured on
    the worker.
    """
    state = _STATE
    if state is None:
        return
    state.parallel_shards.labels(mode=mode).inc()
    state.parallel_shard_seconds.labels(mode=mode).observe(seconds)


def observe_distributed(
    workers_contacted: int,
    fanout_seconds: float,
    merge_seconds: float,
    retries: int = 0,
    hedges: int = 0,
    coverage: float = 1.0,
    degraded: bool = False,
    root: Span | None = None,
    sampled: bool = False,
    fault_events: list[dict] | None = None,
    rerank_seconds: float | None = None,
) -> None:
    """Record one scatter-gather query (called by the coordinator).

    Beyond the stage latencies, the coordinator reports its
    fault-tolerance activity: ``retries`` failed attempts, ``hedges``
    issued, the query's ``coverage`` fraction and whether it was
    ``degraded``.  When ``sampled`` (decided by :func:`should_sample`
    before execution) the query's span tree and classified
    ``fault_events`` are stored as a sampled trace, so "why was this
    query degraded" is answerable post hoc.  ``rerank_seconds`` is the
    post-merge exact rerank stage's latency, when the plan ran one.
    """
    state = _STATE
    if state is None:
        return
    state.distributed_queries.inc()
    state.workers_contacted.observe(workers_contacted)
    state.distributed_stage_seconds.labels(stage="fanout").observe(
        fanout_seconds
    )
    state.distributed_stage_seconds.labels(stage="merge").observe(
        merge_seconds
    )
    if rerank_seconds is not None:
        state.distributed_stage_seconds.labels(stage="rerank").observe(
            rerank_seconds
        )
    if retries:
        state.distributed_retries.inc(retries)
    if hedges:
        state.distributed_hedges.inc(hedges)
    state.distributed_coverage.observe(coverage)
    if degraded:
        state.distributed_degraded.inc()
    if sampled and state.sampler is not None:
        state.sampled_traces.inc()
        state.sampler.record(
            spans=root.to_dict() if root is not None else None,
            stats={
                "type": "distributed",
                "workers_contacted": workers_contacted,
                "retries": retries,
                "hedges": hedges,
                "coverage": coverage,
                "degraded": degraded,
                "fault_events": list(fault_events or ()),
            },
        )


def observe_cache(
    cache: str, hit: bool, seconds: float | None = None
) -> None:
    """Record one cache lookup; ``seconds`` is a hit's lookup latency."""
    state = _STATE
    if state is None:
        return
    if hit:
        state.cache_hits.labels(cache=cache).inc()
        if seconds is not None:
            state.cache_hit_seconds.labels(cache=cache).observe(seconds)
    else:
        state.cache_misses.labels(cache=cache).inc()


def observe_cache_evictions(cache: str, count: int) -> None:
    """Record entries dropped by LRU pressure, TTL or invalidation."""
    state = _STATE
    if state is None:
        return
    state.cache_evictions.labels(cache=cache).inc(count)


def observe_cache_occupancy(cache: str, occupancy: int) -> None:
    """Mirror the cache's current entry count into the gauge."""
    state = _STATE
    if state is None:
        return
    state.cache_occupancy.labels(cache=cache).set(float(occupancy))


def observe_serving_request(lane: str) -> None:
    """Record one request offered to the serving front door."""
    state = _STATE
    if state is None:
        return
    state.serving_requests.labels(lane=lane).inc()


def observe_serving_admission(
    lane: str, admitted: bool, reason: str | None = None,
    seconds: float | None = None,
) -> None:
    """Record one admission decision (and its decision latency)."""
    state = _STATE
    if state is None:
        return
    if admitted:
        state.serving_admitted.labels(lane=lane).inc()
    else:
        state.serving_rejected.labels(
            lane=lane, reason=reason or "unknown"
        ).inc()
        if reason == "shed":
            state.serving_shed.labels(lane=lane).inc()
    if seconds is not None:
        state.serving_admission_seconds.observe(seconds)


def observe_serving_rejected(lane: str, reason: str) -> None:
    """Record a post-admission rejection (expiry, shutdown, error)."""
    state = _STATE
    if state is None:
        return
    state.serving_rejected.labels(lane=lane, reason=reason).inc()
    if reason == "shed":
        state.serving_shed.labels(lane=lane).inc()


def observe_serving_queue_depth(lane: str, depth: int) -> None:
    """Mirror one lane's current queue depth into the gauge."""
    state = _STATE
    if state is None:
        return
    state.serving_queue_depth.labels(lane=lane).set(float(depth))


def observe_serving_batch(
    lane: str, size: int, queue_delays: list[float]
) -> None:
    """Record one dispatched batch: its size and its tickets' waits."""
    state = _STATE
    if state is None:
        return
    state.serving_batch_size.labels(lane=lane).observe(size)
    delay_child = state.serving_queue_delay.labels(lane=lane)
    for delay in queue_delays:
        delay_child.observe(delay)


def observe_serving_served(
    lane: str, latency_seconds: float, degraded: bool
) -> None:
    """Record one completed request (full-fidelity or degraded)."""
    state = _STATE
    if state is None:
        return
    state.serving_served.labels(lane=lane).inc()
    state.serving_latency.labels(lane=lane).observe(latency_seconds)
    if degraded:
        state.serving_degraded.labels(lane=lane).inc()


def observe_serving_overload(level: int, shedding: bool) -> None:
    """Mirror the overload controller's ladder position into the gauge.

    Shedding is encoded one past the deepest degrade level so the gauge
    is a single monotone severity axis.
    """
    state = _STATE
    if state is None:
        return
    state.serving_overload_level.set(float(level + 1 if shedding else level))


def observe_fault(worker_id: int, kind: str) -> None:
    """Record one classified shard failure (fault-taxonomy ``kind``)."""
    state = _STATE
    if state is None:
        return
    state.shard_faults.labels(worker=worker_id, kind=kind).inc()


def observe_breaker(worker_id: int, breaker_state: str) -> None:
    """Mirror a circuit-breaker transition into the state gauge."""
    state = _STATE
    if state is None:
        return
    state.breaker_state.labels(worker=worker_id).set(
        _BREAKER_STATES.get(breaker_state, 2.0)
    )
