"""Metrics registry: counters, gauges and fixed-bucket histograms.

The serving-side aggregation layer the per-query
:class:`~repro.search.engine.ExecutionContext` lacks: a query's stats
are discarded unless the caller keeps the result, whereas a metric
accumulates across every query the process answers.  The model follows
Prometheus:

* a **metric family** has a name, a help string and a fixed tuple of
  label names; :meth:`labels` resolves one *child* per label-value
  combination (``queries.labels(index="hash").inc()``);
* children are cheap value cells — :class:`CounterChild`,
  :class:`GaugeChild`, :class:`HistogramChild` — safe to cache and hit
  on the hot path;
* a :class:`MetricsRegistry` owns families, deduplicates registration,
  and renders to JSON (:meth:`MetricsRegistry.snapshot`) or Prometheus
  text (:func:`repro.obs.export.to_prometheus_text`).

Two guard rails keep telemetry from hurting the system it watches: a
**label-cardinality cap** per family (unbounded label values are the
classic way a metrics layer eats the heap), and a registry-wide
``enabled`` flag giving every child a two-instruction fast path when
telemetry is off.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterator, Sequence

__all__ = [
    "Counter",
    "CounterChild",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "GaugeChild",
    "Histogram",
    "HistogramChild",
    "MetricError",
    "MetricsRegistry",
]

#: Upper bounds (seconds) sized for per-query ANN latencies: 10µs-2.5s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Upper bounds for discrete work counts (candidates, buckets probed).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1000, 2000, 5000, 10_000, 20_000, 50_000,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(RuntimeError):
    """Misuse of the metrics API (bad name, label mismatch, type clash)."""


class CounterChild:
    """A monotonically increasing value cell.

    Updates take a per-child lock: the parallel batch executor records
    from several threads at once, and an unlocked ``+=`` is a
    read-modify-write race that silently drops increments.  The
    disabled fast path stays lock-free.
    """

    __slots__ = ("_registry", "_value", "_lock")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricError("counters only go up; inc() needs amount >= 0")
        if self._registry.enabled:
            with self._lock:
                self._value += amount

    def sample_dict(self) -> dict[str, object]:
        return {"value": self._value}


class GaugeChild:
    """A value cell that can go up and down (thread-safe updates)."""

    __slots__ = ("_registry", "_value", "_lock")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        if self._registry.enabled:
            with self._lock:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            with self._lock:
                self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            with self._lock:
                self._value -= amount

    def sample_dict(self) -> dict[str, object]:
        return {"value": self._value}


class HistogramChild:
    """Fixed-bucket distribution cell.

    ``observe(v)`` lands ``v`` in the first bucket whose upper bound is
    ``>= v`` (Prometheus ``le`` semantics) — in particular a value
    exactly equal to the top finite bound lands in that bucket, not
    ``+Inf``; only values strictly beyond the last bound go to the
    implicit overflow bucket.  Invariant (tested):
    ``sum(bucket_counts) == count`` after any sequence of observations,
    including concurrent ones — ``observe`` takes a per-child lock like
    the other cells.
    """

    __slots__ = ("_registry", "_uppers", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self, registry: MetricsRegistry, uppers: tuple[float, ...]
    ) -> None:
        self._registry = registry
        self._uppers = uppers
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def upper_bounds(self) -> tuple[float, ...]:
        """Finite bucket upper bounds (the ``+Inf`` bucket is implicit)."""
        return self._uppers

    @property
    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; last entry is ``+Inf``."""
        return list(self._counts)

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        slot = bisect_left(self._uppers, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style running totals, ending at ``count``."""
        out = []
        running = 0
        for c in self._counts:
            running += c
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile estimate from the buckets.

        The usual histogram-quantile approximation: find the bucket the
        ``q``-th observation falls in and interpolate within it.  Values
        in the ``+Inf`` overflow bucket clamp to the last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        target = q * self._count
        cumulative = 0.0
        lower = 0.0
        for upper, bucket_count in zip(self._uppers, self._counts):
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * max(fraction, 0.0)
            cumulative += bucket_count
            lower = upper
        return self._uppers[-1] if self._uppers else math.nan

    def sample_dict(self) -> dict[str, object]:
        buckets: list[dict[str, object]] = [
            {"le": upper, "count": c}
            for upper, c in zip(self._uppers, self._counts)
        ]
        buckets.append({"le": "+Inf", "count": self._counts[-1]})
        return {"count": self._count, "sum": self._sum, "buckets": buckets}


class _Family:
    """Shared family machinery: label resolution and sampling."""

    kind = ""

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        max_label_sets: int,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(label_names):
            raise MetricError(f"duplicate label names in {label_names!r}")
        self.name = name
        self.help = help
        self.label_names = label_names
        self._registry = registry
        self._max_label_sets = max_label_sets
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _new_child(self) -> object:
        raise NotImplementedError

    def _resolve(self, labels: dict[str, object]) -> object:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= self._max_label_sets:
                        raise MetricError(
                            f"metric {self.name!r} exceeded its label-"
                            f"cardinality cap ({self._max_label_sets}); "
                            "unbounded label values leak memory — bucket "
                            "them or raise max_label_sets deliberately"
                        )
                    child = self._new_child()
                    self._children[key] = child
        return child

    def samples(self) -> Iterator[tuple[dict[str, str], object]]:
        """Yield ``(label_dict, child)`` pairs, sorted by label values."""
        for key in sorted(self._children):
            yield dict(zip(self.label_names, key)), self._children[key]

    def snapshot(self) -> dict[str, object]:
        """JSON-ready description of this family and all its children."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "samples": [
                {"labels": labels, **child.sample_dict()}  # type: ignore[attr-defined]
                for labels, child in self.samples()
            ],
        }

    def reset(self) -> None:
        """Drop every child (used by tests and the CLI between runs)."""
        with self._lock:
            self._children.clear()


class Counter(_Family):
    """Counter family; unlabelled families support ``inc`` directly."""

    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild(self._registry)

    def labels(self, **labels: object) -> CounterChild:
        child = self._resolve(labels)
        assert isinstance(child, CounterChild)
        return child

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        return self.labels().value


class Gauge(_Family):
    """Gauge family; unlabelled families support ``set``/``inc``/``dec``."""

    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild(self._registry)

    def labels(self, **labels: object) -> GaugeChild:
        child = self._resolve(labels)
        assert isinstance(child, GaugeChild)
        return child

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    @property
    def value(self) -> float:
        return self.labels().value


class Histogram(_Family):
    """Histogram family with one fixed bucket layout for all children."""

    kind = "histogram"

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        max_label_sets: int,
        buckets: Sequence[float],
    ) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise MetricError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in uppers):
            raise MetricError("bucket bounds must be finite (+Inf is implicit)")
        if any(b2 <= b1 for b1, b2 in zip(uppers, uppers[1:])):
            raise MetricError("bucket bounds must be strictly increasing")
        super().__init__(registry, name, help, label_names, max_label_sets)
        self.buckets = uppers

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self._registry, self.buckets)

    def labels(self, **labels: object) -> HistogramChild:
        child = self._resolve(labels)
        assert isinstance(child, HistogramChild)
        return child

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """Owns metric families; the unit of export and of enable/disable.

    A process normally has one registry (see
    :func:`repro.obs.telemetry.enable_telemetry`), but registries are
    plain objects — tests and embedders inject their own.  Registration
    is get-or-create: asking twice for the same name returns the same
    family, and asking with a different kind or label set raises
    :class:`MetricError` instead of silently forking the series.
    """

    def __init__(
        self, enabled: bool = True, max_label_sets: int = 256
    ) -> None:
        self.enabled = enabled
        self._max_label_sets = max_label_sets
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, kind: str, name: str, factory: Callable[[], _Family]
    ) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            family = factory()
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family."""
        family = self._get_or_create(
            "counter",
            name,
            lambda: Counter(
                self, name, help, tuple(labels), self._max_label_sets
            ),
        )
        self._check_labels(family, labels)
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge family."""
        family = self._get_or_create(
            "gauge",
            name,
            lambda: Gauge(
                self, name, help, tuple(labels), self._max_label_sets
            ),
        )
        self._check_labels(family, labels)
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family with fixed ``buckets``."""
        family = self._get_or_create(
            "histogram",
            name,
            lambda: Histogram(
                self, name, help, tuple(labels), self._max_label_sets, buckets
            ),
        )
        self._check_labels(family, labels)
        assert isinstance(family, Histogram)
        if tuple(float(b) for b in buckets) != family.buckets:
            raise MetricError(
                f"histogram {name!r} already registered with different "
                "buckets"
            )
        return family

    @staticmethod
    def _check_labels(family: _Family, labels: Sequence[str]) -> None:
        if tuple(labels) != family.label_names:
            raise MetricError(
                f"metric {family.name!r} already registered with labels "
                f"{list(family.label_names)}, not {list(labels)}"
            )

    def collect(self) -> list[_Family]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> _Family | None:
        """Look up one family by name (``None`` if unregistered)."""
        return self._families.get(name)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready snapshot of every family and child."""
        return {
            "schema": "repro.metrics/v1",
            "metrics": [family.snapshot() for family in self.collect()],
        }

    def reset(self) -> None:
        """Zero the registry: drop every family's children."""
        for family in self.collect():
            family.reset()
