"""Observability subsystem: metrics, spans, trace sampling, exporters.

PR 1 made every index answer queries through one instrumented engine;
this package is where those numbers go.  Four self-contained layers:

* :mod:`repro.obs.metrics` — a Prometheus-style registry of counters,
  gauges and fixed-bucket labelled histograms, with a label-cardinality
  guard and a disabled fast path;
* :mod:`repro.obs.spans` — nestable monotonic stage timing; the only
  sanctioned home of ``perf_counter`` in the search/index/distributed
  packages (reprolint RL009);
* :mod:`repro.obs.sampling` — a seeded every-Nth sampler ring-buffering
  the last K queries' span trees and probe detail for post-hoc "why was
  this query slow" debugging;
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  snapshots (plus a parser so the round-trip is testable).

Telemetry is **off by default** and enabled explicitly::

    from repro import obs

    with obs.telemetry_session(sampler=obs.TraceSampler(every_n=32)) as t:
        index.search(query, k=10, n_candidates=400)
        print(obs.to_prometheus_text(t.registry))

`python -m repro obs` runs a demo workload under this harness and
prints the top-line table.
"""

from repro.obs.export import (
    counter_rows,
    parse_prometheus_text,
    snapshot_json,
    summary_rows,
    to_prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.sampling import SampledTrace, TraceSampler
from repro.obs.spans import Span, current_span, now, span
from repro.obs.telemetry import (
    TelemetryState,
    disable_telemetry,
    enable_telemetry,
    get_registry,
    get_sampler,
    observe_batch,
    observe_breaker,
    observe_cache,
    observe_cache_evictions,
    observe_cache_occupancy,
    observe_distributed,
    observe_fault,
    observe_parallel_shard,
    observe_query,
    observe_serving_admission,
    observe_serving_batch,
    observe_serving_overload,
    observe_serving_queue_depth,
    observe_serving_rejected,
    observe_serving_request,
    observe_serving_served,
    observe_shard,
    should_sample,
    telemetry_enabled,
    telemetry_session,
)

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "SampledTrace",
    "Span",
    "TelemetryState",
    "TraceSampler",
    "counter_rows",
    "current_span",
    "disable_telemetry",
    "enable_telemetry",
    "get_registry",
    "get_sampler",
    "now",
    "observe_batch",
    "observe_breaker",
    "observe_cache",
    "observe_cache_evictions",
    "observe_cache_occupancy",
    "observe_distributed",
    "observe_fault",
    "observe_parallel_shard",
    "observe_query",
    "observe_serving_admission",
    "observe_serving_batch",
    "observe_serving_overload",
    "observe_serving_queue_depth",
    "observe_serving_rejected",
    "observe_serving_request",
    "observe_serving_served",
    "observe_shard",
    "parse_prometheus_text",
    "should_sample",
    "snapshot_json",
    "span",
    "summary_rows",
    "telemetry_enabled",
    "telemetry_session",
    "to_prometheus_text",
]
