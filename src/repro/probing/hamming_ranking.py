"""Hamming ranking (HR) — the default L2H querying method the paper
improves upon.

HR sorts every occupied bucket by the Hamming distance between its
signature and the query's code, probing nearer rings first; ties inside
a ring are broken arbitrarily (here: by signature, for determinism).
Because the key is a small integer, a counting sort keeps retrieval
O(B) — still a full pass over all buckets up front, HR's share of the
slow-start problem.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.index.codes import hamming_distance
from repro.index.hash_table import HashTable
from repro.probing.base import BucketProber

__all__ = ["HammingRanking"]


class HammingRanking(BucketProber):
    """Sort all occupied buckets by Hamming distance to the query."""

    generates_unoccupied = False

    def probe(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[int]:
        del flip_costs  # HR only looks at binary codes.
        buckets = np.fromiter(
            table.signatures(), dtype=np.int64, count=table.num_buckets
        )
        if not len(buckets):
            return
        distances = hamming_distance(buckets, np.int64(signature))
        # Counting sort on distance (0..m), signature order inside rings.
        bucket_order = np.argsort(buckets, kind="stable")
        ring_order = np.argsort(distances[bucket_order], kind="stable")
        for index in bucket_order[ring_order]:
            yield int(buckets[index])

    def batch_scores(
        self,
        bucket_signatures: np.ndarray,
        bucket_bits: np.ndarray,
        query_signatures: np.ndarray,
        query_bits: np.ndarray,
        cost_matrix: np.ndarray,
    ) -> np.ndarray:
        """Hamming distance of every (query, bucket) pair in one XOR.

        Integer scores, so the batched order (score, then signature) is
        bit-for-bit the per-query probe order — and the engine can sort
        on a collision-free composite integer key.
        """
        del bucket_bits, query_bits, cost_matrix
        return np.asarray(hamming_distance(
            np.asarray(query_signatures, dtype=np.int64)[:, np.newaxis],
            np.asarray(bucket_signatures, dtype=np.int64)[np.newaxis, :],
        ), dtype=np.int64)
