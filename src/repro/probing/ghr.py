"""Generate-to-probe Hamming ranking (GHR), a.k.a. hash lookup.

The generate-to-probe counterpart of HR that the paper implements as a
stronger baseline (Section 6.3): instead of sorting buckets, enumerate
bucket signatures ring by ring — all codes at Hamming distance 0, then
1, then 2, … — by flipping every ``r``-subset of the query's bits.
Enumeration is lazy, so the slow start disappears, but the indicator is
still coarse: inside a ring the order is arbitrary (here: positional,
cheap bits first, purely for determinism).
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations

import numpy as np

from repro.index.hash_table import HashTable
from repro.probing.base import BucketProber

__all__ = ["GenerateHammingRanking", "hamming_ring_signatures"]


def hamming_ring_signatures(
    signature: int, code_length: int, radius: int
) -> Iterator[int]:
    """All signatures at exact Hamming distance ``radius`` from a code."""
    for positions in combinations(range(code_length), radius):
        flip = 0
        for pos in positions:
            flip |= 1 << pos
        yield signature ^ flip


class GenerateHammingRanking(BucketProber):
    """Enumerate the code space ring by ring around the query (hash lookup)."""

    generates_unoccupied = True

    def probe(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[int]:
        del flip_costs  # GHR only looks at binary codes.
        m = table.code_length
        for radius in range(m + 1):
            yield from hamming_ring_signatures(signature, m, radius)

    def probe_scored(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(bucket_signature, hamming_distance)`` pairs."""
        m = table.code_length
        for radius in range(m + 1):
            for bucket in hamming_ring_signatures(signature, m, radius):
                yield bucket, radius
