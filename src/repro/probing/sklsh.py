"""SK-LSH-style prefix probing.

Liu et al., *SK-LSH: An Efficient Index Structure for Approximate
Nearest Neighbor Search* (PVLDB 2014), from the paper's related work:
buckets sharing the *longest common prefix* with the query's compound
key are probed first.  Adapted to binary codes, the compound key is the
bit string read from the most-significant projection downward, and the
probe order is by descending common-prefix length (ties broken by the
numeric distance of the suffix, then signature).

Included as a baseline showing why prefix order underperforms QD: a
mismatch in the first bit costs everything regardless of how close the
projection was to the threshold.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.index.hash_table import HashTable
from repro.probing.base import BucketProber

__all__ = ["PrefixRanking", "common_prefix_length"]


def common_prefix_length(a: int, b: int, m: int) -> int:
    """Shared leading bits of two ``m``-bit signatures (MSB first)."""
    diff = (a ^ b) & ((1 << m) - 1)
    if diff == 0:
        return m
    return m - diff.bit_length()


class PrefixRanking(BucketProber):
    """Probe occupied buckets by descending common-prefix length."""

    generates_unoccupied = False

    def probe(
        self, table: HashTable, signature: int, flip_costs: np.ndarray
    ) -> Iterator[int]:
        del flip_costs  # prefix order only looks at binary codes
        m = table.code_length
        buckets = np.fromiter(
            table.signatures(), dtype=np.int64, count=table.num_buckets
        )
        if not len(buckets):
            return
        prefix = np.asarray(
            [common_prefix_length(int(b), signature, m) for b in buckets]
        )
        suffix_gap = np.abs(buckets - np.int64(signature))
        order = np.lexsort((buckets, suffix_gap, -prefix))
        yield from (int(b) for b in buckets[order])
