"""Prober interface re-export.

The :class:`~repro.core.prober.BucketProber` contract lives in
:mod:`repro.core.prober` (QR and GQR implement it there); this module
re-exports it so baseline probers and user code can import it from the
:mod:`repro.probing` namespace alongside HR/GHR.
"""

from repro.core.prober import BucketProber, collect_candidates

__all__ = ["BucketProber", "collect_candidates"]
