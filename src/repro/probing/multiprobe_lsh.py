"""Multi-Probe LSH-style probing, adapted to binary codes.

Lv et al. (VLDB 2007) probe LSH buckets by perturbing the query's hash
values, scoring a perturbation set by the *sum of squared* distances of
the query's projections to the crossed boundaries.  The paper credits
Multi-Probe LSH as inspiration for GQR and lists the differences
(Section 5.3): QD uses absolute rather than squared differences, works
on binary rather than integer codes, can share a generation tree, and
never generates invalid buckets.

For sign-threshold binary hashing the boundary distance of bit ``i`` is
``|p_i(q)|``, so the Multi-Probe score of flipping a bit set ``S`` is
``Σ_{i∈S} p_i(q)²`` — i.e. GQR's machinery with squared costs.  Squaring
is monotone on non-negative costs, so the same Append/Swap generation
tree stays valid; only multi-bit probe order differs from GQR (squared
costs exaggerate large flips).  This adapter exists to measure exactly
that difference.
"""

from __future__ import annotations

import numpy as np

from repro.core.generation_tree import SharedGenerationTree
from repro.core.gqr import GQR

__all__ = ["MultiProbeLSH"]


class MultiProbeLSH(GQR):
    """GQR with Multi-Probe LSH's squared-boundary-distance score."""

    def __init__(self, shared_tree: SharedGenerationTree | None = None) -> None:
        super().__init__(shared_tree=shared_tree, cost_transform=np.square)
