"""Querying methods (bucket probers): HR, GHR, Multi-Probe LSH.

QR and GQR — the paper's contribution — live in :mod:`repro.core` and
implement the same :class:`~repro.probing.base.BucketProber` interface.
"""

from repro.probing.base import BucketProber, collect_candidates
from repro.probing.ghr import GenerateHammingRanking, hamming_ring_signatures
from repro.probing.hamming_ranking import HammingRanking
from repro.probing.multiprobe_lsh import MultiProbeLSH
from repro.probing.sklsh import PrefixRanking, common_prefix_length

__all__ = [
    "BucketProber",
    "GenerateHammingRanking",
    "HammingRanking",
    "MultiProbeLSH",
    "PrefixRanking",
    "common_prefix_length",
    "collect_candidates",
    "hamming_ring_signatures",
]
