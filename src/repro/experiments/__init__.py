"""Programmatic reproduction of the paper's tables and figures.

Usage::

    from repro.experiments import list_experiments, run_experiment

    print(list_experiments())         # {'fig07': 'GQR vs GHR/HR, ITQ', ...}
    print(run_experiment("fig07"))    # the figure's series as text

or from the shell: ``python -m repro reproduce --experiment fig07``.
The benchmark suite (`benchmarks/`) covers the same exhibits *with
assertions*; this package is the user-facing, assertion-free path.
"""

from repro.experiments.context import ExperimentContext, budget_sweep
from repro.experiments.figures import EXPERIMENTS, prober_curves

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "budget_sweep",
    "list_experiments",
    "prober_curves",
    "run_experiment",
]


def list_experiments() -> dict[str, str]:
    """Experiment ids mapped to one-line descriptions."""
    return {name: description for name, (description, _) in EXPERIMENTS.items()}


def run_experiment(
    name: str,
    scale: float = 1.0,
    k: int = 20,
    context: ExperimentContext | None = None,
) -> str:
    """Run one registered experiment and return its report text."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        )
    if context is None:
        context = ExperimentContext(scale=scale, k=k)
    _, runner = EXPERIMENTS[name]
    return runner(context)
