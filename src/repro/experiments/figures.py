"""Library-level reproductions of the paper's tables and figures.

Each function takes an :class:`~repro.experiments.context.ExperimentContext`
and returns the exhibit's report text (the same series the paper
plots).  The benchmark suite additionally *asserts* the qualitative
claims; these functions exist so users can regenerate any exhibit
programmatically or via ``python -m repro reproduce``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.gqr import GQR
from repro.core.qd_ranking import QDRanking
from repro.eval.harness import CurvePoint, sweep_budgets, time_to_recall
from repro.eval.plotting import plot_recall_time
from repro.eval.reporting import format_curves, format_table
from repro.experiments.context import ExperimentContext, budget_sweep
from repro.hashing import PCAHashing
from repro.index.linear_scan import LinearScan
from repro.probing import GenerateHammingRanking, HammingRanking
from repro.quantization.opq import OptimizedProductQuantizer
from repro.search.searcher import HashIndex, IMISearchIndex

__all__ = [
    "EXPERIMENTS",
    "MAIN_NAMES",
    "prober_curves",
    "table1",
    "table2",
    "fig02",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig13",
    "fig15",
    "fig17",
    "fig20",
]

MAIN_NAMES = ["CIFAR60K", "GIST1M", "TINY5M", "SIFT10M"]

PROBERS = {
    "GQR": GQR,
    "GHR": GenerateHammingRanking,
    "HR": HammingRanking,
}


def prober_curves(
    ctx: ExperimentContext,
    dataset_name: str,
    algo: str = "itq",
    probers: dict | None = None,
    k: int | None = None,
) -> dict[str, list[CurvePoint]]:
    """Recall-time curves of several probers on one dataset."""
    dataset, truth = ctx.workload(dataset_name, k)
    hasher = ctx.hasher(dataset_name, algo)
    budgets = budget_sweep(len(dataset.data))
    probers = PROBERS if probers is None else probers
    return {
        label: sweep_budgets(
            HashIndex(hasher, dataset.data, prober=factory()),
            dataset.queries, truth, k or ctx.k, budgets,
        )
        for label, factory in probers.items()
    }


def _per_dataset_curves(ctx: ExperimentContext, algo: str) -> str:
    sections = []
    for name in MAIN_NAMES:
        curves = prober_curves(ctx, name, algo)
        sections.append(f"--- {name} ({algo.upper()}) ---")
        sections.append(plot_recall_time(curves))
        sections.append(format_curves(curves))
    return "\n".join(sections)


def table1(ctx: ExperimentContext) -> str:
    """Table 1: dataset statistics and linear-search time."""
    rows = []
    for name in MAIN_NAMES:
        dataset, _ = ctx.workload(name)
        scan = LinearScan(dataset.data)
        start = time.perf_counter()
        scan.search(dataset.queries, ctx.k)
        elapsed = time.perf_counter() - start
        spec = dataset.spec
        rows.append([
            name, spec.paper_dims, f"{spec.paper_items:,}",
            spec.scaled_dims, f"{spec.scaled_items:,}",
            spec.code_length, f"{elapsed:.3f}s",
        ])
    return format_table(
        ["Dataset", "paper dim", "paper items", "our dim", "our items",
         "m", "linear search"],
        rows,
    )


def fig02(ctx: ExperimentContext) -> str:
    """Figure 2: buckets per Hamming ring, C(20, r)."""
    rows = [[r, math.comb(20, r)] for r in range(21)]
    return format_table(["hamming r", "C(20, r) buckets"], rows)


def fig06(ctx: ExperimentContext) -> str:
    """Figure 6: GQR versus QR (slow start)."""
    sections = []
    for name in MAIN_NAMES:
        curves = prober_curves(
            ctx, name, "itq", probers={"GQR": GQR, "QR": QDRanking}
        )
        sections.append(f"--- {name} ---")
        sections.append(format_curves(curves))
    return "\n".join(sections)


def fig07(ctx: ExperimentContext) -> str:
    """Figure 7: GQR versus GHR/HR with ITQ."""
    return _per_dataset_curves(ctx, "itq")


def fig08(ctx: ExperimentContext) -> str:
    """Figure 8: recall versus retrieved items."""
    from repro.eval.harness import recall_at_budgets

    sections = []
    for name in MAIN_NAMES:
        dataset, truth = ctx.workload(name)
        hasher = ctx.hasher(name, "itq")
        budgets = budget_sweep(len(dataset.data), n_points=8)
        gqr = recall_at_budgets(
            HashIndex(hasher, dataset.data, prober=GQR()),
            dataset.queries, truth, budgets,
        )
        ghr = recall_at_budgets(
            HashIndex(hasher, dataset.data, prober=GenerateHammingRanking()),
            dataset.queries, truth, budgets,
        )
        rows = [
            [b, round(g, 4), round(h, 4)]
            for b, g, h in zip(budgets, gqr, ghr)
        ]
        sections.append(f"--- {name} ---")
        sections.append(format_table(["# items", "GQR", "GHR & HR"], rows))
    return "\n".join(sections)


def fig09(ctx: ExperimentContext) -> str:
    """Figure 9: querying time at typical recalls."""
    targets = [0.80, 0.85, 0.90, 0.95]
    sections = []
    for name in MAIN_NAMES:
        curves = prober_curves(ctx, name, "itq")
        rows = [
            [f"{t:.0%}"]
            + [round(time_to_recall(curves[label], t), 4)
               for label in ("HR", "GHR", "GQR")]
            for t in targets
        ]
        sections.append(f"--- {name} ---")
        sections.append(format_table(["recall", "HR", "GHR", "GQR"], rows))
    return "\n".join(sections)


def fig13(ctx: ExperimentContext) -> str:
    """Figures 13-14: the Figure 7 comparison with PCAH."""
    return _per_dataset_curves(ctx, "pcah")


def fig15(ctx: ExperimentContext) -> str:
    """Figures 15-16: the Figure 7 comparison with SH."""
    return _per_dataset_curves(ctx, "sh")


def fig17(ctx: ExperimentContext) -> str:
    """Figure 17: PCAH+GQR vs PCAH+GHR vs OPQ+IMI (recall at items)."""
    from repro.eval.harness import recall_at_budgets

    sections = []
    for name in ["CIFAR60K", "GIST1M", "TINY5M", "SIFT1M"]:
        dataset, truth = ctx.workload(name)
        budgets = budget_sweep(len(dataset.data), n_points=5)
        hasher = ctx.hasher(name, "pcah")
        n_centroids = max(8, int(np.sqrt(len(dataset.data) / 10)) + 1)
        opq = OptimizedProductQuantizer(
            2, n_centroids=n_centroids, n_iterations=4,
            kmeans_iterations=10, seed=0,
        ).fit(dataset.data)
        series = {
            "PCAH+GQR": recall_at_budgets(
                HashIndex(hasher, dataset.data, prober=GQR()),
                dataset.queries, truth, budgets,
            ),
            "PCAH+GHR": recall_at_budgets(
                HashIndex(
                    hasher, dataset.data, prober=GenerateHammingRanking()
                ),
                dataset.queries, truth, budgets,
            ),
            "OPQ+IMI": recall_at_budgets(
                IMISearchIndex(opq, dataset.data),
                dataset.queries, truth, budgets,
            ),
        }
        rows = [
            [b] + [round(series[label][i], 4) for label in series]
            for i, b in enumerate(budgets)
        ]
        sections.append(f"--- {name} ---")
        sections.append(format_table(["# items"] + list(series), rows))
    return "\n".join(sections)


def table2(ctx: ExperimentContext) -> str:
    """Table 2: training cost of OPQ versus PCAH."""
    rows = []
    for name in ["CIFAR60K", "GIST1M", "TINY5M", "SIFT1M"]:
        dataset, _ = ctx.workload(name)
        n_centroids = max(8, int(np.sqrt(len(dataset.data) / 10)) + 1)
        start = time.perf_counter()
        OptimizedProductQuantizer(
            2, n_centroids=n_centroids, n_iterations=4,
            kmeans_iterations=10, seed=0,
        ).fit(dataset.data)
        opq_time = time.perf_counter() - start
        start = time.perf_counter()
        PCAHashing(dataset.code_length).fit(dataset.data)
        pcah_time = time.perf_counter() - start
        rows.append([
            name, round(opq_time, 3), round(pcah_time, 3),
            round(opq_time / pcah_time, 1),
        ])
    return format_table(
        ["Dataset", "OPQ wall (s)", "PCAH wall (s)", "ratio"], rows
    )


def fig20(ctx: ExperimentContext) -> str:
    """Figure 20: GQR versus GHR on K-means hashing."""
    from repro.eval.harness import recall_at_budgets

    sections = []
    for name in ["CIFAR60K", "GIST1M", "TINY5M"]:
        dataset, truth = ctx.workload(name)
        hasher = ctx.hasher(name, "kmh")
        budgets = budget_sweep(len(dataset.data), n_points=5)
        gqr = recall_at_budgets(
            HashIndex(hasher, dataset.data, prober=GQR()),
            dataset.queries, truth, budgets,
        )
        ghr = recall_at_budgets(
            HashIndex(hasher, dataset.data, prober=GenerateHammingRanking()),
            dataset.queries, truth, budgets,
        )
        rows = [
            [b, round(g, 4), round(h, 4)]
            for b, g, h in zip(budgets, gqr, ghr)
        ]
        sections.append(f"--- {name} (KMH) ---")
        sections.append(format_table(["# items", "GQR", "GHR"], rows))
    return "\n".join(sections)


#: Experiment registry: id -> (description, runner).
EXPERIMENTS = {
    "table1": ("dataset statistics + linear-search time", table1),
    "fig02": ("buckets per Hamming ring", fig02),
    "fig06": ("GQR vs QR (slow start)", fig06),
    "fig07": ("GQR vs GHR/HR, ITQ", fig07),
    "fig08": ("recall vs retrieved items", fig08),
    "fig09": ("time at typical recalls", fig09),
    "fig13": ("GQR vs GHR/HR, PCAH (Figs. 13-14)", fig13),
    "fig15": ("GQR vs GHR/HR, SH (Figs. 15-16)", fig15),
    "fig17": ("PCAH+GQR vs OPQ+IMI", fig17),
    "table2": ("training cost, OPQ vs PCAH", table2),
    "fig20": ("GQR vs GHR on KMH", fig20),
}
