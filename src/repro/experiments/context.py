"""Shared experiment machinery: cached workloads and fitted hashers.

The benchmarks and the :mod:`repro.experiments` runner both need the
same heavyweight artefacts — materialised datasets, exact ground truth,
fitted hashers.  An :class:`ExperimentContext` memoises them per scale
so a session reproducing several figures trains each hasher once.
"""

from __future__ import annotations

import numpy as np

from repro.data import Dataset, ground_truth_knn, load_dataset
from repro.hashing import (
    ITQ,
    KMeansHashing,
    PCAHashing,
    SpectralHashing,
)
from repro.hashing.base import BinaryHasher

__all__ = ["ExperimentContext", "budget_sweep"]


def budget_sweep(
    n_items: int, n_points: int = 6, top_fraction: float = 0.35
) -> list[int]:
    """Geometric candidate budgets up to ``top_fraction·N``."""
    lo = max(20, n_items // 500)
    hi = max(lo + 1, int(n_items * top_fraction))
    return [int(b) for b in np.unique(np.geomspace(lo, hi, n_points).astype(int))]


class ExperimentContext:
    """Per-scale cache of datasets, truth sets, and fitted hashers.

    Parameters
    ----------
    scale:
        Uniform downscale factor applied to every registered dataset
        (1.0 = the registry's default laptop scale).
    k:
        Default number of target neighbours (the paper uses 20).
    """

    def __init__(self, scale: float = 1.0, k: int = 20) -> None:
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if k < 1:
            raise ValueError("k must be positive")
        self.scale = scale
        self.k = k
        self._truth: dict[tuple[str, int], np.ndarray] = {}
        self._hashers: dict[tuple[str, str, int], BinaryHasher] = {}

    def dataset(self, name: str) -> Dataset:
        return load_dataset(name, scale=self.scale)

    def workload(
        self, name: str, k: int | None = None
    ) -> tuple[Dataset, np.ndarray]:
        """``(dataset, truth)`` with exact kNN truth memoised."""
        k = self.k if k is None else k
        dataset = self.dataset(name)
        key = (dataset.name, k)
        if key not in self._truth:
            self._truth[key] = ground_truth_knn(
                dataset.queries, dataset.data, k
            )
        return dataset, self._truth[key]

    def hasher(
        self, name: str, algo: str, code_length: int | None = None
    ) -> BinaryHasher:
        """A fitted hasher for a dataset, memoised by (dataset, algo, m)."""
        dataset = self.dataset(name)
        m = code_length if code_length is not None else dataset.code_length
        key = (dataset.name, algo, m)
        if key not in self._hashers:
            if algo == "itq":
                hasher = ITQ(code_length=m, seed=0)
            elif algo == "pcah":
                hasher = PCAHashing(code_length=m)
            elif algo == "sh":
                hasher = SpectralHashing(code_length=m)
            elif algo == "kmh":
                m = max(4, m - m % 4)
                hasher = KMeansHashing(
                    code_length=m, bits_per_subspace=4,
                    kmeans_iterations=15, seed=0,
                )
            else:
                raise ValueError(f"unknown hasher algo {algo!r}")
            self._hashers[key] = hasher.fit(dataset.data)
        return self._hashers[key]
