"""Inverted multi-index (IMI).

Babenko & Lempitsky (CVPR 2012).  A product quantizer with two
codebooks of ``K`` codewords induces a grid of ``K²`` cells; the IMI
stores every item in its cell and answers a query by visiting cells in
non-decreasing ``d₁(q, u_i) + d₂(q, v_j)`` using the *multi-sequence
algorithm*: a min-heap seeded with cell ``(0, 0)`` of the per-codebook
sorted distance lists, pushing the two successor cells of each popped
cell.

This is the querying side of the OPQ + IMI comparator (Figure 17).
Candidates are re-ranked with exact distances by the caller, matching
how the other querying methods in this package are evaluated.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.quantization.opq import OptimizedProductQuantizer
from repro.quantization.pq import ProductQuantizer

__all__ = ["InvertedMultiIndex", "multi_sequence"]


def multi_sequence(
    row_costs: np.ndarray, column_costs: np.ndarray
) -> Iterator[tuple[int, int, float]]:
    """Visit grid cells in non-decreasing ``row_costs[i] + column_costs[j]``.

    Both cost arrays must be sorted ascending.  Yields
    ``(i, j, total_cost)`` over the full grid, each cell exactly once,
    using the multi-sequence algorithm's frontier heap.
    """
    rows = len(row_costs)
    columns = len(column_costs)
    if not rows or not columns:
        return
    heap: list[tuple[float, int, int]] = [
        (float(row_costs[0] + column_costs[0]), 0, 0)
    ]
    pushed = {(0, 0)}
    while heap:
        cost, i, j = heapq.heappop(heap)
        yield i, j, cost
        # Push (i+1, j) only from j == 0 or when (i+1, j-1) was already
        # popped; the standard guard "predecessors pushed" is subsumed by
        # the visited set, which is simpler and still O(K²) total.
        for ni, nj in ((i + 1, j), (i, j + 1)):
            if ni < rows and nj < columns and (ni, nj) not in pushed:
                pushed.add((ni, nj))
                heapq.heappush(
                    heap, (float(row_costs[ni] + column_costs[nj]), ni, nj)
                )


class InvertedMultiIndex:
    """Second-order inverted multi-index over a (O)PQ with 2 codebooks.

    Parameters
    ----------
    quantizer:
        A fitted :class:`ProductQuantizer` or
        :class:`OptimizedProductQuantizer` with ``n_subspaces == 2``.
    data:
        The ``(n, d)`` indexed items (in original, un-rotated space).
    """

    def __init__(
        self,
        quantizer: ProductQuantizer | OptimizedProductQuantizer,
        data: np.ndarray,
    ) -> None:
        if quantizer.n_subspaces != 2:
            raise ValueError("InvertedMultiIndex requires exactly 2 subspaces")
        self._quantizer = quantizer
        codes = quantizer.encode(np.asarray(data, dtype=np.float64))
        k = quantizer.n_centroids
        self._k = k
        cells: dict[tuple[int, int], list[int]] = {}
        for item_id, (a, b) in enumerate(codes):
            cells.setdefault((int(a), int(b)), []).append(item_id)
        self._cells = {
            cell: np.asarray(ids, dtype=np.int64) for cell, ids in cells.items()
        }

    @property
    def num_cells(self) -> int:
        """Number of occupied cells (≤ K²)."""
        return len(self._cells)

    def _query_tables(self, query: np.ndarray) -> list[np.ndarray]:
        if isinstance(self._quantizer, OptimizedProductQuantizer):
            rotated = self._quantizer.rotate(
                np.asarray(query, dtype=np.float64)[np.newaxis, :]
            )[0]
            return self._quantizer.pq.distance_tables(rotated)
        return self._quantizer.distance_tables(np.asarray(query, dtype=np.float64))

    def probe(self, query: np.ndarray) -> Iterator[np.ndarray]:
        """Yield item-id arrays cell by cell in multi-sequence order.

        Empty cells are skipped (nothing is yielded for them); iteration
        covers all ``K²`` cells, so every item is eventually returned
        exactly once.
        """
        table_a, table_b = self._query_tables(query)
        order_a = np.argsort(table_a, kind="stable")
        order_b = np.argsort(table_b, kind="stable")
        sorted_a = table_a[order_a]
        sorted_b = table_b[order_b]
        for i, j, _ in multi_sequence(sorted_a, sorted_b):
            cell = (int(order_a[i]), int(order_b[j]))
            ids = self._cells.get(cell)
            if ids is not None:
                yield ids

    def collect(self, query: np.ndarray, n_candidates: int) -> np.ndarray:
        """First ``n_candidates`` item ids in multi-sequence cell order."""
        found: list[np.ndarray] = []
        total = 0
        for ids in self.probe(query):
            found.append(ids)
            total += len(ids)
            if total >= n_candidates:
                break
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(found)
