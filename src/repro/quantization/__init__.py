"""Vector-quantization stack: k-means, PQ, OPQ, inverted multi-index."""

from repro.quantization.imi import InvertedMultiIndex, multi_sequence
from repro.quantization.kmeans import KMeans, kmeans_plus_plus
from repro.quantization.opq import OptimizedProductQuantizer
from repro.quantization.pq import ProductQuantizer

__all__ = [
    "InvertedMultiIndex",
    "KMeans",
    "OptimizedProductQuantizer",
    "ProductQuantizer",
    "kmeans_plus_plus",
    "multi_sequence",
]
