"""Optimized product quantization (OPQ), non-parametric solution.

Ge, He, Ke & Sun (CVPR 2013).  OPQ learns an orthogonal rotation ``R``
of the feature space jointly with the PQ codebooks to minimise the total
quantization error ``‖XR − Q(XR)‖_F²``, alternating:

1. fix ``R``: fit/refresh PQ on the rotated data and reconstruct ``Y``;
2. fix the codes: orthogonal Procrustes — ``X^T Y = U Ω S^T`` gives
   ``R = U S^T``.

OPQ + inverted multi-index is the state-of-the-art VQ comparator of the
paper's Section 6.5 (Figure 17, Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.quantization.pq import ProductQuantizer

__all__ = ["OptimizedProductQuantizer"]


class OptimizedProductQuantizer:
    """Rotation + product quantizer trained by alternating minimisation.

    Parameters
    ----------
    n_subspaces, n_centroids:
        PQ shape; the inverted multi-index requires ``n_subspaces == 2``.
    n_iterations:
        Outer alternations between rotation and codebook updates.
    kmeans_iterations, seed:
        Passed to the inner PQ fits.
    """

    def __init__(
        self,
        n_subspaces: int,
        n_centroids: int = 16,
        n_iterations: int = 10,
        kmeans_iterations: int = 15,
        seed: int | None = None,
    ) -> None:
        self.n_subspaces = n_subspaces
        self.n_centroids = n_centroids
        self.n_iterations = n_iterations
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.rotation: np.ndarray | None = None
        self.pq: ProductQuantizer | None = None
        self.errors: list[float] = []

    def fit(self, data: np.ndarray) -> "OptimizedProductQuantizer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        d = data.shape[1]
        rotation = np.eye(d)

        self.errors = []
        pq = None
        for iteration in range(self.n_iterations):
            rotated = data @ rotation
            seed = None if self.seed is None else self.seed + iteration
            pq = ProductQuantizer(
                self.n_subspaces,
                self.n_centroids,
                self.kmeans_iterations,
                seed=seed,
            ).fit(rotated)
            reconstructed = pq.decode(pq.encode(rotated))
            self.errors.append(
                float(np.square(rotated - reconstructed).sum(axis=1).mean())
            )
            u, _, vt = np.linalg.svd(data.T @ reconstructed)
            rotation = u @ vt

        # Final codebooks must match the final rotation.
        rotated = data @ rotation
        pq = ProductQuantizer(
            self.n_subspaces,
            self.n_centroids,
            self.kmeans_iterations,
            seed=self.seed,
        ).fit(rotated)
        self.rotation = rotation
        self.pq = pq
        return self

    def _require_fitted(self) -> None:
        if self.pq is None:
            raise RuntimeError("OptimizedProductQuantizer must be fit() before use")

    def rotate(self, data: np.ndarray) -> np.ndarray:
        """Apply the learned rotation."""
        self._require_fitted()
        return np.atleast_2d(np.asarray(data, dtype=np.float64)) @ self.rotation

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Rotate then PQ-encode."""
        self._require_fitted()
        return self.pq.encode(self.rotate(data))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """PQ-decode then un-rotate back to the original space."""
        self._require_fitted()
        return self.pq.decode(codes) @ self.rotation.T

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error in the original space."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return float(
            np.square(data - self.decode(self.encode(data))).sum(axis=1).mean()
        )
