"""Product quantization (PQ).

Jégou, Douze & Schmid (TPAMI 2011).  The feature space is split into
``n_subspaces`` contiguous blocks; an independent k-means codebook is
learned per block; an item's code is the tuple of its nearest codeword
indices.  PQ is the substrate for OPQ (:mod:`repro.quantization.opq`)
and the inverted multi-index (:mod:`repro.quantization.imi`) — the
vector-quantization comparator of the paper's Section 6.5.
"""

from __future__ import annotations

import numpy as np

from repro.quantization.kmeans import KMeans

__all__ = ["ProductQuantizer"]


class ProductQuantizer:
    """Independent k-means codebooks over contiguous dimension blocks.

    Parameters
    ----------
    n_subspaces:
        Number of blocks ``M``; must not exceed the dimensionality.
    n_centroids:
        Codewords per block ``K``.
    n_iterations, seed:
        Passed to the per-block :class:`~repro.quantization.kmeans.KMeans`.
    """

    def __init__(
        self,
        n_subspaces: int,
        n_centroids: int = 16,
        n_iterations: int = 25,
        seed: int | None = None,
    ) -> None:
        if n_subspaces < 1:
            raise ValueError("n_subspaces must be positive")
        if n_centroids < 1:
            raise ValueError("n_centroids must be positive")
        self.n_subspaces = n_subspaces
        self.n_centroids = n_centroids
        self.n_iterations = n_iterations
        self.seed = seed
        self.codebooks: list[np.ndarray] = []
        self._splits: np.ndarray | None = None

    def _blocks(self, data: np.ndarray) -> list[np.ndarray]:
        return np.split(data, self._splits, axis=1)

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        d = data.shape[1]
        if self.n_subspaces > d:
            raise ValueError(
                f"n_subspaces={self.n_subspaces} exceeds dimensionality {d}"
            )
        base, extra = divmod(d, self.n_subspaces)
        widths = [base + (1 if i < extra else 0) for i in range(self.n_subspaces)]
        self._splits = np.cumsum(widths)[:-1]

        self.codebooks = []
        for i, block in enumerate(self._blocks(data)):
            seed = None if self.seed is None else self.seed + i
            km = KMeans(self.n_centroids, self.n_iterations, seed=seed).fit(block)
            self.codebooks.append(km.centers)
        return self

    def _require_fitted(self) -> None:
        if not self.codebooks:
            raise RuntimeError("ProductQuantizer must be fit() before use")

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Nearest codeword index per subspace, shape ``(n, n_subspaces)``."""
        self._require_fitted()
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        codes = np.empty((len(data), self.n_subspaces), dtype=np.int64)
        for i, block in enumerate(self._blocks(data)):
            codes[:, i] = _nearest(block, self.codebooks[i])
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct vectors from codes (concatenated codewords)."""
        self._require_fitted()
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        parts = [self.codebooks[i][codes[:, i]] for i in range(self.n_subspaces)]
        return np.concatenate(parts, axis=1)

    def distance_tables(self, query: np.ndarray) -> list[np.ndarray]:
        """Per-subspace squared distances from the query to every codeword.

        Summing one entry per subspace gives the asymmetric (ADC) distance
        between the query and any code.
        """
        self._require_fitted()
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError("distance_tables expects a single query vector")
        blocks = self._blocks(query[np.newaxis, :])
        return [
            _squared_to_centers(block[0], codebook)
            for block, codebook in zip(blocks, self.codebooks)
        ]

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error on ``data``."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        reconstructed = self.decode(self.encode(data))
        return float(np.square(data - reconstructed).sum(axis=1).mean())


def _squared_to_centers(vector: np.ndarray, centers: np.ndarray) -> np.ndarray:
    diff = centers - vector[np.newaxis, :]
    return (diff * diff).sum(axis=1)


def _nearest(block: np.ndarray, centers: np.ndarray) -> np.ndarray:
    sp = (block * block).sum(axis=1)[:, np.newaxis]
    sc = (centers * centers).sum(axis=1)[np.newaxis, :]
    d2 = sp - 2.0 * (block @ centers.T) + sc
    return d2.argmin(axis=1)
