"""Lloyd's k-means with k-means++ seeding.

Substrate for the vector-quantization stack (PQ, OPQ, IMI — Section 6.5
of the paper) and for K-means hashing (appendix).  Implemented here
because no third-party ML library is assumed; pure NumPy, deterministic
under a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans", "kmeans_plus_plus"]


def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances ``(n_points, n_centers)``."""
    sp = (points * points).sum(axis=1)[:, np.newaxis]
    sc = (centers * centers).sum(axis=1)[np.newaxis, :]
    d2 = sp - 2.0 * (points @ centers.T) + sc
    np.maximum(d2, 0.0, out=d2)
    return d2


def kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ initial centres (Arthur & Vassilvitskii 2007)."""
    n = len(data)
    centers = np.empty((n_clusters, data.shape[1]), dtype=np.float64)
    first = rng.integers(n)
    centers[0] = data[first]
    closest = _squared_distances(data, centers[:1]).ravel()
    for i in range(1, n_clusters):
        total = closest.sum()
        # Zero total: all remaining points coincide with chosen centres.
        choice = rng.integers(n) if total <= 0 else rng.choice(n, p=closest / total)
        centers[i] = data[choice]
        new_d = _squared_distances(data, centers[i : i + 1]).ravel()
        np.minimum(closest, new_d, out=closest)
    return centers


class KMeans:
    """Lloyd's algorithm with k-means++ init and empty-cluster repair.

    Parameters
    ----------
    n_clusters:
        Number of centroids ``k``.
    n_iterations:
        Maximum Lloyd iterations.
    tol:
        Relative improvement in inertia below which iteration stops.
    seed:
        RNG seed for initialisation and empty-cluster repair.
    """

    def __init__(
        self,
        n_clusters: int,
        n_iterations: int = 50,
        tol: float = 1e-6,
        seed: int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.n_iterations = n_iterations
        self.tol = tol
        self.seed = seed
        self.centers: np.ndarray | None = None
        self.inertia: float | None = None

    def fit(self, data: np.ndarray) -> "KMeans":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) array")
        n = len(data)
        if n < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} points, got {n}"
            )
        rng = np.random.default_rng(self.seed)
        centers = kmeans_plus_plus(data, self.n_clusters, rng)

        previous_inertia = np.inf
        for _ in range(self.n_iterations):
            d2 = _squared_distances(data, centers)
            labels = d2.argmin(axis=1)
            inertia = float(d2[np.arange(n), labels].sum())

            counts = np.bincount(labels, minlength=self.n_clusters)
            sums = np.zeros_like(centers)
            np.add.at(sums, labels, data)
            nonempty = counts > 0
            centers[nonempty] = sums[nonempty] / counts[nonempty, np.newaxis]
            # Re-seed empty clusters at the points farthest from their centre.
            for cluster in np.flatnonzero(~nonempty):
                farthest = d2[np.arange(n), labels].argmax()
                centers[cluster] = data[farthest]
                labels[farthest] = cluster
                d2[farthest] = _squared_distances(
                    data[farthest : farthest + 1], centers
                )

            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1e-12):
                break
            previous_inertia = inertia

        self.centers = centers
        self.inertia = inertia
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Index of the nearest centre for each point."""
        if self.centers is None:
            raise RuntimeError("KMeans must be fit() before predict()")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return _squared_distances(data, self.centers).argmin(axis=1)

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Squared distances from each point to every centre."""
        if self.centers is None:
            raise RuntimeError("KMeans must be fit() before transform()")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return _squared_distances(data, self.centers)
