"""Exact nearest-neighbour ground truth for recall measurement.

Recall (Section 2.3) counts how many of the *true* k nearest neighbours
a querying method returns; this module computes and caches those truth
sets via blocked linear scan.
"""

from __future__ import annotations

import numpy as np

from repro.index.linear_scan import knn_linear_scan

__all__ = ["ground_truth_knn", "GroundTruthCache"]


def ground_truth_knn(
    queries: np.ndarray, data: np.ndarray, k: int
) -> np.ndarray:
    """Exact kNN ids per query, shape ``(n_queries, k)``."""
    ids, _ = knn_linear_scan(queries, data, k)
    return ids


class GroundTruthCache:
    """Memoise exact kNN ids for one (queries, data) pair across k values.

    Computing truth for the largest requested ``k`` once and slicing is
    valid because linear-scan results are distance-sorted.
    """

    def __init__(self, queries: np.ndarray, data: np.ndarray) -> None:
        self._queries = np.asarray(queries, dtype=np.float64)
        self._data = np.asarray(data, dtype=np.float64)
        self._ids: np.ndarray | None = None

    def knn(self, k: int) -> np.ndarray:
        """Ground-truth ids for any ``k``, reusing earlier computations."""
        if k < 1:
            raise ValueError("k must be positive")
        if self._ids is None or self._ids.shape[1] < k:
            self._ids = ground_truth_knn(self._queries, self._data, k)
        return self._ids[:, :k]
