"""Synthetic dataset generators.

The paper evaluates on multi-gigabyte image/audio/text descriptor
corpora (CIFAR GIST, GIST1M, TINY5M, SIFT10M, …) that cannot be
downloaded in this environment.  These generators produce *clustered,
anisotropic* data with the statistical properties the querying-method
comparison actually depends on:

* clear cluster structure, so learned hash functions are
  similarity-preserving and bucket occupancy is non-uniform — the regime
  where probe *order* matters;
* anisotropic variance across dimensions (descriptor-like spectra), so
  PCA-family hashers have meaningful directions and per-bit flip costs
  differ — the signal QD exploits and Hamming distance discards.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_mixture",
    "correlated_gaussian",
    "uniform_hypercube",
    "sample_queries",
]


def gaussian_mixture(
    n_items: int,
    n_dims: int,
    n_clusters: int = 16,
    cluster_spread: float = 0.3,
    anisotropy: float = 4.0,
    seed: int | None = None,
) -> np.ndarray:
    """Anisotropic Gaussian-mixture point cloud, shape ``(n_items, n_dims)``.

    Cluster centres are standard normal; within-cluster covariance is
    diagonal with scales decaying geometrically from ``cluster_spread``
    to ``cluster_spread / anisotropy``, mimicking the decaying spectra of
    image descriptors.
    """
    if n_items < 1 or n_dims < 1 or n_clusters < 1:
        raise ValueError("n_items, n_dims and n_clusters must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_clusters, n_dims))
    scales = cluster_spread * np.geomspace(1.0, 1.0 / anisotropy, n_dims)
    assignments = rng.integers(n_clusters, size=n_items)
    noise = rng.standard_normal((n_items, n_dims)) * scales[np.newaxis, :]
    return centers[assignments] + noise


def correlated_gaussian(
    n_items: int,
    n_dims: int,
    correlation: float = 0.6,
    seed: int | None = None,
) -> np.ndarray:
    """Single Gaussian with an AR(1)-style correlated covariance.

    Useful as an *unclustered but correlated* stress case: PCA finds
    strong directions yet there is no cluster structure to exploit.
    """
    if not 0.0 <= correlation < 1.0:
        raise ValueError("correlation must be in [0, 1)")
    rng = np.random.default_rng(seed)
    white = rng.standard_normal((n_items, n_dims))
    data = np.empty_like(white)
    data[:, 0] = white[:, 0]
    scale = np.sqrt(1.0 - correlation * correlation)
    for j in range(1, n_dims):
        data[:, j] = correlation * data[:, j - 1] + scale * white[:, j]
    return data


def uniform_hypercube(
    n_items: int, n_dims: int, seed: int | None = None
) -> np.ndarray:
    """Uniform noise in ``[-1, 1]^d`` — the structureless worst case."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n_items, n_dims))


def sample_queries(
    data: np.ndarray,
    n_queries: int,
    perturbation: float = 0.05,
    seed: int | None = None,
) -> np.ndarray:
    """Queries drawn near dataset points (the paper samples items).

    A small Gaussian perturbation keeps queries off the exact data
    points so distance-zero ties don't trivialise recall.
    """
    data = np.asarray(data, dtype=np.float64)
    if n_queries < 1:
        raise ValueError("n_queries must be positive")
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(data), size=n_queries, replace=n_queries > len(data))
    scale = perturbation * data.std()
    return data[picks] + rng.standard_normal((n_queries, data.shape[1])) * scale
