"""Query and traffic workload generators.

The paper samples queries uniformly from the dataset.  Real query
streams are messier, and the *composition* of a workload changes which
querying method wins — in particular, queries whose projections land
close to quantization thresholds are exactly where Hamming ranking's
coarseness hurts and QD's margin information pays off.  These
generators let the harness (and
``benchmarks/bench_boundary_queries.py``) quantify that.

Beyond query *content*, serving behaviour depends on traffic *shape*:
which queries repeat (:func:`zipfian_stream` — the skew the result
cache exploits) and when they arrive (:func:`traffic_trace` — a
non-homogeneous Poisson arrival process with diurnal modulation and
flash-crowd bursts, the open-loop input of the serving front door's
simulator, :mod:`repro.serving.simulator`).  Every generator is seeded
and deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.base import BinaryHasher

__all__ = [
    "FlashCrowd",
    "TrafficTrace",
    "in_distribution_queries",
    "out_of_distribution_queries",
    "boundary_queries",
    "boundary_margin",
    "zipfian_stream",
    "rate_at",
    "traffic_trace",
]


def in_distribution_queries(
    data: np.ndarray,
    n_queries: int,
    perturbation: float = 0.1,
    seed: int | None = None,
) -> np.ndarray:
    """Queries near dataset points — the paper's workload."""
    from repro.data.synthetic import sample_queries

    return sample_queries(data, n_queries, perturbation, seed)


def out_of_distribution_queries(
    data: np.ndarray,
    n_queries: int,
    shift: float = 2.0,
    seed: int | None = None,
) -> np.ndarray:
    """Queries displaced off the data manifold by ``shift`` global stds.

    Models cold-start / adversarial traffic: the nearest neighbours are
    genuinely far, bucket occupancy near the query is sparse, and many
    buckets must be probed.
    """
    data = np.asarray(data, dtype=np.float64)
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(data), size=n_queries, replace=n_queries > len(data))
    directions = rng.standard_normal((n_queries, data.shape[1]))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    return data[picks] + shift * data.std() * directions


def boundary_margin(hasher: BinaryHasher, queries: np.ndarray) -> np.ndarray:
    """Each query's smallest |projection| — its quantization margin.

    A small margin means one bit of the query's code is nearly
    arbitrary: the true neighbours straddle that hyperplane, the worst
    case for Hamming ranking and the best case for QD.
    """
    projections = hasher.project(np.atleast_2d(np.asarray(queries)))
    return np.abs(projections).min(axis=1)


def boundary_queries(
    data: np.ndarray,
    hasher: BinaryHasher,
    n_queries: int,
    pool_multiplier: int = 20,
    seed: int | None = None,
) -> np.ndarray:
    """The in-distribution queries with the *smallest* quantization margin.

    Draws a pool of candidate queries and keeps the ``n_queries`` whose
    minimum |projection| is smallest — traffic concentrated at bucket
    boundaries.
    """
    if n_queries < 1 or pool_multiplier < 1:
        raise ValueError("n_queries and pool_multiplier must be positive")
    pool = in_distribution_queries(
        data, n_queries * pool_multiplier, seed=seed
    )
    margins = boundary_margin(hasher, pool)
    keep = np.argsort(margins, kind="stable")[:n_queries]
    return pool[keep]


# -- traffic shape -----------------------------------------------------

def zipfian_stream(
    n_distinct: int,
    n_requests: int,
    exponent: float = 1.1,
    seed: int | None = None,
) -> np.ndarray:
    """Request indices drawn with a ``1/rank^exponent`` popularity profile.

    The rank-frequency skew of real serving traffic: a small popular
    head accounts for most requests (what the query-result cache
    exploits, and what makes coalescing batches of identical plans
    effective).  Returns ``n_requests`` indices into ``[0, n_distinct)``,
    deterministic per ``seed``.
    """
    if n_distinct < 1 or n_requests < 0:
        raise ValueError(
            "n_distinct must be positive and n_requests non-negative"
        )
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    weights = ranks ** -exponent
    return rng.choice(n_distinct, size=n_requests, p=weights / weights.sum())


@dataclass(frozen=True)
class FlashCrowd:
    """One burst window: offered rate is multiplied inside it.

    Models a sudden hot event (a viral item, a retry storm): between
    ``start`` and ``start + duration`` seconds the base arrival rate is
    scaled by ``multiplier``.
    """

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.multiplier < 0:
            raise ValueError(
                f"multiplier must be non-negative, got {self.multiplier}"
            )


@dataclass(frozen=True)
class TrafficTrace:
    """An open-loop request trace: who arrives, when, on which lane.

    Arrays are aligned by request and sorted by ``arrivals``:

    * ``arrivals`` — absolute arrival times in seconds from trace start;
    * ``query_ids`` — index of each request's query in the caller's
      distinct-query pool (Zipfian-skewed);
    * ``lanes`` — each request's priority-lane name.
    """

    arrivals: np.ndarray
    query_ids: np.ndarray
    lanes: tuple[str, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if not (
            len(self.arrivals) == len(self.query_ids) == len(self.lanes)
        ):
            raise ValueError("arrivals, query_ids and lanes must align")

    def __len__(self) -> int:
        return len(self.arrivals)

    def offered_rate(self, start: float, end: float) -> float:
        """Mean offered load (requests/second) inside ``[start, end)``."""
        if end <= start:
            raise ValueError("end must exceed start")
        inside = np.count_nonzero(
            (self.arrivals >= start) & (self.arrivals < end)
        )
        return inside / (end - start)


def rate_at(
    t: np.ndarray | float,
    base_rate: float,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 86_400.0,
    flash_crowds: tuple[FlashCrowd, ...] = (),
) -> np.ndarray:
    """The instantaneous offered rate λ(t) of :func:`traffic_trace`.

    A sinusoidal diurnal ramp around ``base_rate`` (amplitude as a
    fraction in ``[0, 1]``), scaled by every flash crowd whose window
    covers ``t``.  Exposed so tests and the SLO report can state the
    *declared* offered load alongside the realised one.
    """
    times = np.atleast_1d(np.asarray(t, dtype=np.float64))
    rate = np.full(
        times.shape, float(base_rate), dtype=np.float64
    )
    if diurnal_amplitude:
        rate *= 1.0 + diurnal_amplitude * np.sin(
            2.0 * np.pi * times / diurnal_period
        )
    for crowd in flash_crowds:
        inside = (times >= crowd.start) & (
            times < crowd.start + crowd.duration
        )
        rate[inside] *= crowd.multiplier
    return rate


def traffic_trace(
    duration: float,
    base_rate: float,
    n_distinct: int,
    seed: int,
    zipf_exponent: float = 1.1,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 86_400.0,
    flash_crowds: tuple[FlashCrowd, ...] = (),
    lane_weights: dict[str, float] | None = None,
) -> TrafficTrace:
    """Seeded open-loop traffic: non-homogeneous Poisson arrivals.

    Arrival times are drawn by thinning a homogeneous Poisson process at
    the trace's peak rate (Lewis–Shedler): candidate arrivals at
    ``rate_max`` are kept with probability ``λ(t) / rate_max``, which
    realises the exact time-varying intensity
    (:func:`rate_at`) — the diurnal ramp and each flash crowd appear in
    the realised arrival counts.  Query identities follow
    :func:`zipfian_stream`; lanes are drawn from ``lane_weights``
    (default: 80% ``interactive``, 20% ``batch``).
    """
    if duration <= 0 or base_rate < 0:
        raise ValueError("duration must be positive, base_rate >= 0")
    if not 0.0 <= diurnal_amplitude <= 1.0:
        raise ValueError(
            f"diurnal_amplitude must be in [0, 1], got {diurnal_amplitude}"
        )
    rng = np.random.default_rng(seed)
    peak = float(base_rate) * (1.0 + diurnal_amplitude)
    for crowd in flash_crowds:
        peak = max(peak, base_rate * (1.0 + diurnal_amplitude)
                   * crowd.multiplier)
    if peak <= 0:
        empty = np.empty(0, dtype=np.float64)
        return TrafficTrace(empty, np.empty(0, dtype=np.int64), ())
    # Homogeneous candidates at the peak rate, then thin to λ(t).
    n_candidates = rng.poisson(peak * duration)
    times = np.sort(rng.uniform(0.0, duration, size=n_candidates))
    keep_probability = rate_at(
        times, base_rate, diurnal_amplitude, diurnal_period, flash_crowds
    ) / peak
    times = times[rng.uniform(size=len(times)) < keep_probability]
    query_ids = zipfian_stream(
        n_distinct, len(times), exponent=zipf_exponent,
        seed=int(rng.integers(2**31)),
    )
    weights = lane_weights or {"interactive": 0.8, "batch": 0.2}
    names = tuple(weights)
    shares = np.array([weights[name] for name in names], dtype=np.float64)
    if (shares < 0).any() or shares.sum() <= 0:
        raise ValueError("lane weights must be non-negative and sum > 0")
    picks = rng.choice(len(names), size=len(times), p=shares / shares.sum())
    lanes = tuple(names[int(i)] for i in picks)
    return TrafficTrace(times, query_ids, lanes)
