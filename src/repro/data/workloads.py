"""Query workload generators.

The paper samples queries uniformly from the dataset.  Real query
streams are messier, and the *composition* of a workload changes which
querying method wins — in particular, queries whose projections land
close to quantization thresholds are exactly where Hamming ranking's
coarseness hurts and QD's margin information pays off.  These
generators let the harness (and
``benchmarks/bench_boundary_queries.py``) quantify that.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import BinaryHasher

__all__ = [
    "in_distribution_queries",
    "out_of_distribution_queries",
    "boundary_queries",
    "boundary_margin",
]


def in_distribution_queries(
    data: np.ndarray,
    n_queries: int,
    perturbation: float = 0.1,
    seed: int | None = None,
) -> np.ndarray:
    """Queries near dataset points — the paper's workload."""
    from repro.data.synthetic import sample_queries

    return sample_queries(data, n_queries, perturbation, seed)


def out_of_distribution_queries(
    data: np.ndarray,
    n_queries: int,
    shift: float = 2.0,
    seed: int | None = None,
) -> np.ndarray:
    """Queries displaced off the data manifold by ``shift`` global stds.

    Models cold-start / adversarial traffic: the nearest neighbours are
    genuinely far, bucket occupancy near the query is sparse, and many
    buckets must be probed.
    """
    data = np.asarray(data, dtype=np.float64)
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(data), size=n_queries, replace=n_queries > len(data))
    directions = rng.standard_normal((n_queries, data.shape[1]))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    return data[picks] + shift * data.std() * directions


def boundary_margin(hasher: BinaryHasher, queries: np.ndarray) -> np.ndarray:
    """Each query's smallest |projection| — its quantization margin.

    A small margin means one bit of the query's code is nearly
    arbitrary: the true neighbours straddle that hyperplane, the worst
    case for Hamming ranking and the best case for QD.
    """
    projections = hasher.project(np.atleast_2d(np.asarray(queries)))
    return np.abs(projections).min(axis=1)


def boundary_queries(
    data: np.ndarray,
    hasher: BinaryHasher,
    n_queries: int,
    pool_multiplier: int = 20,
    seed: int | None = None,
) -> np.ndarray:
    """The in-distribution queries with the *smallest* quantization margin.

    Draws a pool of candidate queries and keeps the ``n_queries`` whose
    minimum |projection| is smallest — traffic concentrated at bucket
    boundaries.
    """
    if n_queries < 1 or pool_multiplier < 1:
        raise ValueError("n_queries and pool_multiplier must be positive")
    pool = in_distribution_queries(
        data, n_queries * pool_multiplier, seed=seed
    )
    margins = boundary_margin(hasher, pool)
    keep = np.argsort(margins, kind="stable")[:n_queries]
    return pool[keep]
