"""Datasets: synthetic generators, registry, and exact ground truth."""

from repro.data.datasets import (
    APPENDIX_DATASETS,
    DATASETS,
    MAIN_DATASETS,
    Dataset,
    DatasetSpec,
    default_code_length,
    load_dataset,
)
from repro.data.ground_truth import GroundTruthCache, ground_truth_knn
from repro.data.synthetic import (
    correlated_gaussian,
    gaussian_mixture,
    sample_queries,
    uniform_hypercube,
)
from repro.data.workloads import (
    boundary_margin,
    boundary_queries,
    in_distribution_queries,
    out_of_distribution_queries,
)

__all__ = [
    "APPENDIX_DATASETS",
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "GroundTruthCache",
    "MAIN_DATASETS",
    "boundary_margin",
    "boundary_queries",
    "in_distribution_queries",
    "out_of_distribution_queries",
    "correlated_gaussian",
    "default_code_length",
    "gaussian_mixture",
    "ground_truth_knn",
    "load_dataset",
    "sample_queries",
    "uniform_hypercube",
]
