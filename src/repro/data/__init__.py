"""Datasets: synthetic generators, registry, and exact ground truth."""

from repro.data.datasets import (
    APPENDIX_DATASETS,
    DATASETS,
    MAIN_DATASETS,
    Dataset,
    DatasetSpec,
    default_code_length,
    load_dataset,
)
from repro.data.ground_truth import GroundTruthCache, ground_truth_knn
from repro.data.synthetic import (
    correlated_gaussian,
    gaussian_mixture,
    sample_queries,
    uniform_hypercube,
)
from repro.data.workloads import (
    FlashCrowd,
    TrafficTrace,
    boundary_margin,
    boundary_queries,
    in_distribution_queries,
    out_of_distribution_queries,
    rate_at,
    traffic_trace,
    zipfian_stream,
)

__all__ = [
    "APPENDIX_DATASETS",
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "FlashCrowd",
    "GroundTruthCache",
    "MAIN_DATASETS",
    "TrafficTrace",
    "boundary_margin",
    "boundary_queries",
    "in_distribution_queries",
    "out_of_distribution_queries",
    "correlated_gaussian",
    "default_code_length",
    "gaussian_mixture",
    "ground_truth_knn",
    "load_dataset",
    "rate_at",
    "sample_queries",
    "traffic_trace",
    "uniform_hypercube",
    "zipfian_stream",
]
