"""Accuracy metrics for ANN querying methods (Section 2.3).

* **recall** — fraction of the true k nearest neighbours returned.
* **precision** — fraction of *retrieved* items that are true neighbours
  (Figure 4a plots precision against recall to show the effect of code
  length).
* **rank-aware IR metrics** — :func:`recall_at_k`, :func:`mrr_at_k` and
  :func:`ndcg_at_k` score the *ordered* result list against a truth
  set, which is what distinguishes a reranked pipeline from the
  candidate-only one: both may retrieve the same neighbours, but the
  reranked list puts them earlier.

Because every querying method re-ranks candidates by exact distance,
recall at a candidate budget equals the overlap between the candidate
set and the truth set — a fact the harness exploits to read a whole
recall curve off a single probe trace.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = [
    "mean_mrr_at_k",
    "mean_ndcg_at_k",
    "mean_recall",
    "mean_recall_at_k",
    "mrr_at_k",
    "ndcg_at_k",
    "precision",
    "recall",
    "recall_at_k",
    "recall_from_candidates",
]


def recall(returned_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """``|returned ∩ truth| / |truth|`` for one query."""
    truth = np.asarray(truth_ids).ravel()
    if not len(truth):
        raise ValueError("truth set must be non-empty")
    returned = np.asarray(returned_ids).ravel()
    return len(np.intersect1d(returned, truth, assume_unique=False)) / len(truth)


def mean_recall(
    returned_per_query: list[np.ndarray], truth_ids: np.ndarray
) -> float:
    """Average recall over a query batch."""
    truth = np.asarray(truth_ids)
    if len(returned_per_query) != len(truth):
        raise ValueError("one returned set per query is required")
    total = sum(
        recall(returned, truth_row)
        for returned, truth_row in zip(returned_per_query, truth)
    )
    return total / len(truth)


def precision(
    returned_true_count: int | float, n_retrieved: int
) -> float:
    """True neighbours found divided by items retrieved (Figure 4a)."""
    if n_retrieved <= 0:
        return 0.0
    return returned_true_count / n_retrieved


def recall_from_candidates(
    candidate_ids: np.ndarray, truth_ids: np.ndarray
) -> float:
    """Recall after exact re-ranking of a candidate set.

    Any true neighbour present among the candidates survives exact
    re-ranking into the top-k (it beats every non-neighbour by
    definition), so recall equals the candidate/truth overlap.
    """
    return recall(candidate_ids, truth_ids)


def recall_at_k(
    returned_ids: np.ndarray, truth_ids: np.ndarray, k: int
) -> float:
    """``|top-k returned ∩ truth| / |truth|`` for one ordered result list."""
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    returned = np.asarray(returned_ids).ravel()[:k]
    return recall(returned, truth_ids)


def mrr_at_k(
    returned_ids: np.ndarray, truth_ids: np.ndarray, k: int
) -> float:
    """Reciprocal rank of the first relevant item within the top k.

    ``1 / rank`` (1-based) of the earliest returned id that is in the
    truth set, or ``0.0`` when no relevant item appears in the top k.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    truth = set(np.asarray(truth_ids).ravel().tolist())
    if not truth:
        raise ValueError("truth set must be non-empty")
    returned = np.asarray(returned_ids).ravel()[:k]
    for rank, item in enumerate(returned.tolist(), start=1):
        if item in truth:
            return 1.0 / rank
    return 0.0


def ndcg_at_k(
    returned_ids: np.ndarray, truth_ids: np.ndarray, k: int
) -> float:
    """Binary-relevance NDCG over the top k of an ordered result list.

    ``DCG = Σ_i rel_i / log2(i + 2)`` over 0-based positions, with
    ``rel_i = 1`` when the id is in the truth set.  The ideal DCG puts
    ``min(k, |truth|)`` relevant items first, so a perfect ordering
    scores exactly 1.0.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    truth = set(np.asarray(truth_ids).ravel().tolist())
    if not truth:
        raise ValueError("truth set must be non-empty")
    returned = np.asarray(returned_ids).ravel()[:k]
    dcg = sum(
        1.0 / np.log2(position + 2.0)
        for position, item in enumerate(returned.tolist())
        if item in truth
    )
    ideal = sum(
        1.0 / np.log2(position + 2.0)
        for position in range(min(k, len(truth)))
    )
    return float(dcg / ideal)


def _mean_over_queries(
    metric: Callable[[np.ndarray, np.ndarray, int], float],
    returned_per_query: list[np.ndarray],
    truth_ids: np.ndarray,
    k: int,
) -> float:
    truth = np.asarray(truth_ids)
    if len(returned_per_query) != len(truth):
        raise ValueError("one returned set per query is required")
    total = sum(
        metric(returned, truth_row, k)
        for returned, truth_row in zip(returned_per_query, truth)
    )
    return total / len(truth)


def mean_recall_at_k(
    returned_per_query: list[np.ndarray], truth_ids: np.ndarray, k: int
) -> float:
    """Average :func:`recall_at_k` over a query batch."""
    return _mean_over_queries(recall_at_k, returned_per_query, truth_ids, k)


def mean_mrr_at_k(
    returned_per_query: list[np.ndarray], truth_ids: np.ndarray, k: int
) -> float:
    """Average :func:`mrr_at_k` over a query batch."""
    return _mean_over_queries(mrr_at_k, returned_per_query, truth_ids, k)


def mean_ndcg_at_k(
    returned_per_query: list[np.ndarray], truth_ids: np.ndarray, k: int
) -> float:
    """Average :func:`ndcg_at_k` over a query batch."""
    return _mean_over_queries(ndcg_at_k, returned_per_query, truth_ids, k)
