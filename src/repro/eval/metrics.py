"""Accuracy metrics for ANN querying methods (Section 2.3).

* **recall** — fraction of the true k nearest neighbours returned.
* **precision** — fraction of *retrieved* items that are true neighbours
  (Figure 4a plots precision against recall to show the effect of code
  length).

Because every querying method re-ranks candidates by exact distance,
recall at a candidate budget equals the overlap between the candidate
set and the truth set — a fact the harness exploits to read a whole
recall curve off a single probe trace.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall", "mean_recall", "precision", "recall_from_candidates"]


def recall(returned_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """``|returned ∩ truth| / |truth|`` for one query."""
    truth = np.asarray(truth_ids).ravel()
    if not len(truth):
        raise ValueError("truth set must be non-empty")
    returned = np.asarray(returned_ids).ravel()
    return len(np.intersect1d(returned, truth, assume_unique=False)) / len(truth)


def mean_recall(
    returned_per_query: list[np.ndarray], truth_ids: np.ndarray
) -> float:
    """Average recall over a query batch."""
    truth = np.asarray(truth_ids)
    if len(returned_per_query) != len(truth):
        raise ValueError("one returned set per query is required")
    total = sum(
        recall(returned, truth_row)
        for returned, truth_row in zip(returned_per_query, truth)
    )
    return total / len(truth)


def precision(
    returned_true_count: int | float, n_retrieved: int
) -> float:
    """True neighbours found divided by items retrieved (Figure 4a)."""
    if n_retrieved <= 0:
        return 0.0
    return returned_true_count / n_retrieved


def recall_from_candidates(
    candidate_ids: np.ndarray, truth_ids: np.ndarray
) -> float:
    """Recall after exact re-ranking of a candidate set.

    Any true neighbour present among the candidates survives exact
    re-ranking into the top-k (it beats every non-neighbour by
    definition), so recall equals the candidate/truth overlap.
    """
    return recall(candidate_ids, truth_ids)
