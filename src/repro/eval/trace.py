"""Per-query probe traces: what did the prober actually do?

A trace records, bucket by bucket, the probe order, each bucket's
score (QD or Hamming distance when the prober exposes one), its
population, and the cumulative true-neighbour count — the raw material
behind every curve in the paper, exposed for debugging and analysis
("why did this query miss?").

Traces serialise to JSON under the ``repro.probe_trace/v1`` schema —
the same shape the telemetry sampler's ``probe_trace`` field carries
(:class:`repro.obs.sampling.SampledTrace`), so offline harness traces
and online sampled queries are interchangeable to tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.eval.reporting import format_table
from repro.search.searcher import HashIndex

__all__ = ["ProbeStep", "ProbeTrace", "trace_query"]

#: Schema tag on serialised traces; bump on incompatible field changes.
_SCHEMA = "repro.probe_trace/v1"


@dataclass(frozen=True)
class ProbeStep:
    """One probed bucket."""

    bucket: int
    score: float | None
    n_items: int
    n_hits: int  # true neighbours inside this bucket
    cumulative_items: int
    cumulative_recall: float


@dataclass(frozen=True)
class ProbeTrace:
    """Full probe record of one query."""

    steps: list[ProbeStep]
    truth_size: int

    @property
    def n_buckets(self) -> int:
        return len(self.steps)

    def recall_at_items(self, n_items: int) -> float:
        """Recall after the first bucket that reaches ``n_items``."""
        for step in self.steps:
            if step.cumulative_items >= n_items:
                return step.cumulative_recall
        return self.steps[-1].cumulative_recall if self.steps else 0.0

    def to_table(self, max_rows: int = 20) -> str:
        """Human-readable rendering of the first ``max_rows`` steps."""
        rows = [
            [
                i,
                format(step.bucket, "b"),
                "-" if step.score is None else round(step.score, 4),
                step.n_items,
                step.n_hits,
                round(step.cumulative_recall, 3),
            ]
            for i, step in enumerate(self.steps[:max_rows])
        ]
        return format_table(
            ["#", "bucket", "score", "items", "hits", "recall"], rows
        )

    def to_dict(self) -> dict:
        """JSON-ready record under the ``repro.probe_trace/v1`` schema.

        This is the shape the telemetry sampler stores in
        ``SampledTrace.probe_trace``, so offline and sampled traces
        share one consumer-facing format.
        """
        return {
            "schema": _SCHEMA,
            "truth_size": self.truth_size,
            "steps": [asdict(step) for step in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> ProbeTrace:
        """Rebuild a trace from :meth:`to_dict` output."""
        schema = payload.get("schema")
        if schema != _SCHEMA:
            raise ValueError(
                f"expected schema {_SCHEMA!r}, got {schema!r}"
            )
        steps = [ProbeStep(**step) for step in payload["steps"]]
        return cls(steps=steps, truth_size=int(payload["truth_size"]))

    def to_json(self, indent: int | None = None) -> str:
        """The trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> ProbeTrace:
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def trace_query(
    index: HashIndex,
    query: np.ndarray,
    truth_row: np.ndarray,
    max_buckets: int | None = None,
) -> ProbeTrace:
    """Trace a query against a single-table :class:`HashIndex`.

    Uses the prober's ``probe_scored`` when available (GQR, GHR) so the
    trace includes each bucket's similarity score; falls back to the
    plain stream otherwise.
    """
    if getattr(index, "num_tables", 1) != 1:
        raise ValueError("tracing is defined for single-table indexes")
    query = np.asarray(query, dtype=np.float64)
    truth = set(int(t) for t in np.asarray(truth_row).ravel())
    if not truth:
        raise ValueError("truth row must be non-empty")

    hasher = index._hashers[0]
    table = index._tables[0]
    signature, costs = hasher.probe_info(query)
    prober = index.prober
    if hasattr(prober, "probe_scored"):
        stream = prober.probe_scored(table, signature, costs)
        scored = True
    else:
        stream = ((bucket, None) for bucket in
                  prober.probe(table, signature, costs))
        scored = False

    steps: list[ProbeStep] = []
    cumulative_items = 0
    found = 0
    for bucket, score in stream:
        ids = table.get(bucket)
        if not len(ids):
            continue
        hits = sum(1 for item in ids if int(item) in truth)
        cumulative_items += len(ids)
        found += hits
        steps.append(
            ProbeStep(
                bucket=int(bucket),
                score=float(score) if scored else None,
                n_items=len(ids),
                n_hits=hits,
                cumulative_items=cumulative_items,
                cumulative_recall=found / len(truth),
            )
        )
        if max_buckets is not None and len(steps) >= max_buckets:
            break
        if found == len(truth):
            break
    return ProbeTrace(steps=steps, truth_size=len(truth))
