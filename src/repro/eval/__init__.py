"""Evaluation: metrics, recall-time harness, plain-text reporting."""

from repro.eval.comparison import MethodComparison, compare_methods
from repro.eval.harness import (
    CurvePoint,
    default_budgets,
    recall_at_budgets,
    speedup_at_recall,
    sweep_budgets,
    time_to_recall,
)
from repro.eval.ir_report import format_ir_report, ir_report
from repro.eval.latency import LatencySummary, latency_summary, measure_latencies
from repro.eval.metrics import (
    mean_mrr_at_k,
    mean_ndcg_at_k,
    mean_recall,
    mean_recall_at_k,
    mrr_at_k,
    ndcg_at_k,
    precision,
    recall,
    recall_at_k,
    recall_from_candidates,
)
from repro.eval.plotting import ascii_plot, plot_recall_time
from repro.eval.reporting import format_curve_points, format_curves, format_table
from repro.eval.stats import PairedTestResult, bootstrap_ci, paired_bootstrap_test
from repro.eval.trace import ProbeStep, ProbeTrace, trace_query
from repro.eval.tuning import TuningResult, tune_candidate_budget

__all__ = [
    "CurvePoint",
    "LatencySummary",
    "MethodComparison",
    "PairedTestResult",
    "ProbeStep",
    "ProbeTrace",
    "TuningResult",
    "ascii_plot",
    "bootstrap_ci",
    "compare_methods",
    "default_budgets",
    "format_curve_points",
    "format_curves",
    "format_ir_report",
    "format_table",
    "ir_report",
    "latency_summary",
    "mean_mrr_at_k",
    "mean_ndcg_at_k",
    "mean_recall",
    "mean_recall_at_k",
    "measure_latencies",
    "mrr_at_k",
    "ndcg_at_k",
    "paired_bootstrap_test",
    "plot_recall_time",
    "precision",
    "recall",
    "recall_at_budgets",
    "recall_at_k",
    "recall_from_candidates",
    "speedup_at_recall",
    "sweep_budgets",
    "time_to_recall",
    "trace_query",
    "tune_candidate_budget",
]
