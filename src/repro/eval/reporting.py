"""Plain-text reporting of the paper's tables and curve series.

Benchmarks print their figure/table with these helpers so the output of
``pytest benchmarks/`` reads like the paper's evaluation section.
"""

from __future__ import annotations

from repro.eval.harness import CurvePoint

__all__ = ["format_table", "format_curves", "format_curve_points"]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Monospace table with right-aligned numeric-ish columns."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(value.rjust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve_points(curve: list[CurvePoint]) -> str:
    """One method's recall-time sweep as a table."""
    return format_table(
        ["budget", "seconds", "recall", "items", "buckets"],
        [
            [p.budget, round(p.seconds, 4), round(p.recall, 4),
             round(p.items, 1), round(p.buckets, 1)]
            for p in curve
        ],
    )


def format_curves(curves: dict[str, list[CurvePoint]]) -> str:
    """Several methods' sweeps side by side, keyed by method name."""
    sections = []
    for name, curve in curves.items():
        sections.append(f"[{name}]")
        sections.append(format_curve_points(curve))
    return "\n".join(sections)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
