"""ASCII plotting for recall-time curves.

The benchmark reports are plain text; this renders the paper's curve
figures as terminal scatter plots so the *shape* (who dominates, where
curves cross) is visible without matplotlib, which this environment
does not ship.
"""

from __future__ import annotations

import math

from repro.eval.harness import CurvePoint

__all__ = ["ascii_plot", "plot_recall_time"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a marker from ``*o+x…``; the legend maps markers to
    names.  Points landing on the same cell keep the first marker drawn.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]

    def x_of(value: float) -> float:
        return math.log10(max(value, 1e-12)) if logx else value

    x_lo, x_hi = min(x_of(x) for x in xs), max(x_of(x) for x in xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, pts in zip(_MARKERS, series.values()):
        for x, y in pts:
            col = round((x_of(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines = [f"{y_hi:8.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{y_lo:8.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    x_axis = f"{x_lo if not logx else 10 ** x_lo:.3g}"
    x_end = f"{x_hi if not logx else 10 ** x_hi:.3g}"
    pad = width - len(x_axis) - len(x_end)
    lines.append(" " * 11 + x_axis + " " * max(pad, 1) + x_end)
    lines.append(f"   y: {y_label}   x: {x_label}"
                 + ("  (log x)" if logx else ""))
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append("   " + legend)
    return "\n".join(lines)


def plot_recall_time(
    curves: dict[str, list[CurvePoint]], width: int = 64, height: int = 16
) -> str:
    """The paper's recall-time figure as an ASCII scatter plot."""
    series = {
        name: [(point.seconds, point.recall) for point in curve]
        for name, curve in curves.items()
    }
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="seconds",
        y_label="recall",
        logx=True,
    )
