"""Experiment harness: the curves and summary numbers the paper reports.

The paper's primary instrument is the *recall-time curve* (Section 2.3):
run the whole query batch at a sequence of candidate budgets ``N`` and
plot mean recall against total wall-clock time.  Derived quantities —
recall-items curves (Figure 8), time-to-recall tables (Figure 9),
speedups (Figure 11) — all come from the same sweep, so the harness
materialises one :class:`CurvePoint` list per (index, budget sweep) and
everything else is post-processing.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.eval.metrics import recall_from_candidates
from repro.search.results import SearchResult

__all__ = [
    "CurvePoint",
    "SearchableIndex",
    "StreamableIndex",
    "sweep_budgets",
    "recall_at_budgets",
    "time_to_recall",
    "speedup_at_recall",
    "default_budgets",
]


class SearchableIndex(Protocol):
    """What the harness requires of an index: ``search`` and a size."""

    @property
    def num_items(self) -> int: ...

    def search(
        self, query: np.ndarray, k: int, n_candidates: int
    ) -> SearchResult: ...


class StreamableIndex(Protocol):
    """Index exposing a raw candidate stream (recall-only sweeps)."""

    @property
    def num_items(self) -> int: ...

    def candidate_stream(self, query: np.ndarray) -> Iterator[np.ndarray]: ...


@dataclass(frozen=True)
class CurvePoint:
    """One point of a recall-time curve.

    Attributes
    ----------
    budget:
        Candidate budget ``N`` passed to ``search``.
    seconds:
        Total wall-clock time for the whole query batch at this budget.
    recall:
        Mean recall over the batch.
    items:
        Mean number of candidate items actually retrieved per query.
    buckets:
        Mean number of buckets probed per query.
    retrieval_seconds:
        Total engine-measured retrieval time across the batch, summed
        from each result's :class:`~repro.search.engine.ExecutionContext`
        (0.0 when the index does not attach stats).
    evaluation_seconds:
        Total engine-measured evaluation (re-rank) time across the
        batch; same source and convention as ``retrieval_seconds``.
    """

    budget: int
    seconds: float
    recall: float
    items: float
    buckets: float
    retrieval_seconds: float = 0.0
    evaluation_seconds: float = 0.0


def default_budgets(n_items: int, n_points: int = 8) -> list[int]:
    """Geometric budget sweep from ~0.2% to 100% of the dataset."""
    lo = max(10, n_items // 500)
    points = np.unique(
        np.geomspace(lo, n_items, n_points).astype(int)
    )
    return [int(p) for p in points]


def sweep_budgets(
    index: SearchableIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int,
    budgets: list[int] | None = None,
) -> list[CurvePoint]:
    """Run the query batch once per budget and record (time, recall).

    ``index`` is any object with ``search(query, k, n_candidates)``
    returning a :class:`~repro.search.results.SearchResult` and a
    ``num_items`` property.  Timing covers the full search (hashing,
    retrieval and evaluation), matching the paper's methodology.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    truth = np.asarray(truth_ids)
    if len(truth) != len(queries):
        raise ValueError("need one truth row per query")
    if budgets is None:
        budgets = default_budgets(index.num_items)

    curve: list[CurvePoint] = []
    for budget in budgets:
        start = time.perf_counter()
        results = [index.search(q, k, budget) for q in queries]
        elapsed = time.perf_counter() - start
        recalls = [
            recall_from_candidates(res.ids, truth_row)
            for res, truth_row in zip(results, truth)
        ]
        stats = [res.stats for res in results if res.stats is not None]
        curve.append(
            CurvePoint(
                budget=int(budget),
                seconds=elapsed,
                recall=float(np.mean(recalls)),
                items=float(np.mean([res.n_candidates for res in results])),
                buckets=float(np.mean([res.n_buckets_probed for res in results])),
                retrieval_seconds=float(
                    sum(s.retrieval_seconds for s in stats)
                ),
                evaluation_seconds=float(
                    sum(s.evaluation_seconds for s in stats)
                ),
            )
        )
    return curve


def recall_at_budgets(
    index: StreamableIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    budgets: list[int],
) -> list[float]:
    """Recall-only sweep (no timing) from a single probe trace per query.

    Cheaper than :func:`sweep_budgets` when wall-clock is irrelevant:
    each query's candidate stream is drained once up to ``max(budgets)``
    and recall is read off at every checkpoint.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    truth = np.asarray(truth_ids)
    checkpoints = sorted(set(int(b) for b in budgets))
    per_budget = np.zeros(len(checkpoints))
    for query, truth_row in zip(queries, truth):
        truth_set = set(int(t) for t in truth_row)
        found = 0
        total = 0
        checkpoint_index = 0
        stream = index.candidate_stream(query)
        for ids in stream:
            found += sum(1 for item in ids if int(item) in truth_set)
            total += len(ids)
            while (
                checkpoint_index < len(checkpoints)
                and total >= checkpoints[checkpoint_index]
            ):
                per_budget[checkpoint_index] += found / len(truth_set)
                checkpoint_index += 1
            if checkpoint_index == len(checkpoints):
                break
        # Budgets beyond the stream's total get the final recall.
        while checkpoint_index < len(checkpoints):
            per_budget[checkpoint_index] += found / len(truth_set)
            checkpoint_index += 1
    return [float(v / len(queries)) for v in per_budget]


def time_to_recall(curve: list[CurvePoint], target: float) -> float:
    """Seconds needed to reach ``target`` recall, linearly interpolated.

    Returns ``inf`` when the curve never reaches the target — the
    honest answer for a method that plateaus below it.
    """
    if not 0 < target <= 1:
        raise ValueError("target recall must be in (0, 1]")
    previous = None
    for point in curve:
        if point.recall >= target:
            if previous is None or point.recall == previous.recall:
                return point.seconds
            fraction = (target - previous.recall) / (point.recall - previous.recall)
            return previous.seconds + fraction * (point.seconds - previous.seconds)
        previous = point
    return float("inf")


def speedup_at_recall(
    baseline: list[CurvePoint], method: list[CurvePoint], target: float
) -> float:
    """How much faster ``method`` reaches ``target`` recall than ``baseline``."""
    baseline_time = time_to_recall(baseline, target)
    method_time = time_to_recall(method, target)
    if method_time == 0:
        return float("inf")
    return baseline_time / method_time
