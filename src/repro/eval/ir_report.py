"""IR-metric comparison of query pipelines (candidate-only vs rerank/fuse).

The stage pipeline makes "same retrieval, different post-processing"
a first-class experiment: the same candidate pool can be returned as-is,
reranked by exact or ADC distances, or fused with a second engine's
scores.  Plain recall cannot separate those variants when they return
the same *set* of ids, so this report scores the ordered lists with the
rank-aware metrics (MRR@k, Recall@k, NDCG@k from
:mod:`repro.eval.metrics`) and renders them side by side.

Usage::

    report = ir_report(
        {"candidate-only": plain_results, "reranked": rr_results},
        truth_ids,
        k=10,
    )
    print(format_ir_report(report))

where each pipeline maps to one ordered id array per query.
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import mean_mrr_at_k, mean_ndcg_at_k, mean_recall_at_k
from repro.eval.reporting import format_table

__all__ = ["format_ir_report", "ir_report"]


def ir_report(
    returned_per_pipeline: dict[str, list[np.ndarray]],
    truth_ids: np.ndarray,
    k: int = 10,
) -> dict[str, dict[str, float]]:
    """Score each pipeline's ordered results against the truth sets.

    Parameters
    ----------
    returned_per_pipeline:
        Pipeline name to per-query ordered id arrays.  Every pipeline
        must cover the same queries (one returned array per truth row).
    truth_ids:
        ``(n_queries, k_truth)`` exact-neighbour ids.
    k:
        Cutoff for all three metrics.

    Returns
    -------
    ``{name: {"mrr@k": ..., "recall@k": ..., "ndcg@k": ...}}`` with the
    literal ``k`` substituted (``"mrr@10"`` for ``k=10``).
    """
    if not returned_per_pipeline:
        raise ValueError("at least one pipeline is required")
    report: dict[str, dict[str, float]] = {}
    for name, returned in returned_per_pipeline.items():
        report[name] = {
            f"mrr@{k}": mean_mrr_at_k(returned, truth_ids, k),
            f"recall@{k}": mean_recall_at_k(returned, truth_ids, k),
            f"ndcg@{k}": mean_ndcg_at_k(returned, truth_ids, k),
        }
    return report


def format_ir_report(report: dict[str, dict[str, float]]) -> str:
    """Render an :func:`ir_report` result as a monospace table."""
    if not report:
        raise ValueError("report must be non-empty")
    first = next(iter(report.values()))
    metric_names = list(first)
    headers = ["pipeline", *metric_names]
    rows = [
        [name, *(round(metrics[metric], 4) for metric in metric_names)]
        for name, metrics in report.items()
    ]
    return format_table(headers, rows)
