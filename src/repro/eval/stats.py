"""Statistical rigor for method comparisons.

"GQR beats GHR" on a finite query sample needs an uncertainty estimate.
This module provides bootstrap confidence intervals over per-query
recalls and a paired bootstrap test for the difference between two
methods measured on the *same* queries (pairing removes the large
query-difficulty variance component).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["bootstrap_ci", "paired_bootstrap_test", "PairedTestResult"]


def bootstrap_ci(
    samples: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``samples``."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or not len(samples):
        raise ValueError("samples must be a non-empty 1-D array")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    picks = rng.integers(len(samples), size=(n_resamples, len(samples)))
    means = samples[picks].mean(axis=1)
    alpha = (1 - confidence) / 2
    return (
        float(np.percentile(means, 100 * alpha)),
        float(np.percentile(means, 100 * (1 - alpha))),
    )


@dataclass(frozen=True)
class PairedTestResult:
    """Outcome of a paired bootstrap comparison.

    ``mean_difference`` is mean(a − b); ``ci`` its bootstrap interval;
    ``p_value`` the two-sided bootstrap probability of a difference at
    least as extreme under the null of zero mean difference.
    """

    mean_difference: float
    ci: tuple[float, float]
    p_value: float

    @property
    def significant(self) -> bool:
        """True when the 95% CI excludes zero."""
        lo, hi = self.ci
        return lo > 0 or hi < 0


def paired_bootstrap_test(
    a: np.ndarray,
    b: np.ndarray,
    n_resamples: int = 2000,
    seed: int | None = 0,
) -> PairedTestResult:
    """Paired bootstrap for mean(a) − mean(b) on the same queries."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or not len(a):
        raise ValueError("a and b must be equal-length 1-D arrays")
    differences = a - b
    observed = float(differences.mean())
    rng = np.random.default_rng(seed)
    picks = rng.integers(len(differences), size=(n_resamples, len(differences)))
    resampled = differences[picks].mean(axis=1)
    ci = (
        float(np.percentile(resampled, 2.5)),
        float(np.percentile(resampled, 97.5)),
    )
    # Shift to the null (zero mean) and count more-extreme outcomes.
    null = resampled - observed
    p = float((np.abs(null) >= abs(observed)).mean())
    return PairedTestResult(mean_difference=observed, ci=ci, p_value=p)
