"""Per-query latency statistics.

Mean query time (what the paper's batch curves show) hides the tail; a
serving system cares about p95/p99.  :func:`measure_latencies` times
each query individually and :func:`latency_summary` reduces to the
usual percentiles — used by ``benchmarks/bench_latency_tail.py`` to
compare the probers' tails (generate-to-probe methods have short,
stable retrieval; sort-everything methods pay their start-up cost on
every single query).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.eval.harness import SearchableIndex

__all__ = [
    "measure_latencies",
    "measure_stage_latencies",
    "latency_summary",
    "LatencySummary",
]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile report over per-query wall times (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    worst: float

    def row(self, scale: float = 1e3) -> list[float]:
        """The summary as a table row (default: milliseconds)."""
        return [
            round(self.mean * scale, 3),
            round(self.p50 * scale, 3),
            round(self.p95 * scale, 3),
            round(self.p99 * scale, 3),
            round(self.worst * scale, 3),
        ]


def measure_latencies(
    index: SearchableIndex, queries: np.ndarray, k: int, n_candidates: int
) -> np.ndarray:
    """Wall time of each individual query, in seconds."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    latencies = np.empty(len(queries))
    for i, query in enumerate(queries):
        start = time.perf_counter()
        index.search(query, k, n_candidates)
        latencies[i] = time.perf_counter() - start
    return latencies


def measure_stage_latencies(
    index: SearchableIndex, queries: np.ndarray, k: int, n_candidates: int
) -> dict[str, np.ndarray]:
    """Per-query retrieval/evaluation split from the engine's stats.

    Every engine-backed search attaches an
    :class:`~repro.search.engine.ExecutionContext` under
    ``result.stats``; this reads the per-stage wall times off it, so the
    tail of retrieval (probe-order generation) can be separated from the
    tail of evaluation (exact re-rank).  Raises when the index does not
    attach stats.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    stages = {
        "total": np.empty(len(queries)),
        "retrieval": np.empty(len(queries)),
        "evaluation": np.empty(len(queries)),
    }
    for i, query in enumerate(queries):
        stats = index.search(query, k, n_candidates).stats
        if stats is None:
            raise ValueError(
                "index did not attach ExecutionContext stats; use "
                "measure_latencies for plain wall times"
            )
        stages["total"][i] = stats.total_seconds
        stages["retrieval"][i] = stats.retrieval_seconds
        stages["evaluation"][i] = stats.evaluation_seconds
    return stages


def latency_summary(latencies: np.ndarray) -> LatencySummary:
    """Reduce per-query times to mean/median/tail percentiles."""
    latencies = np.asarray(latencies, dtype=np.float64)
    if not len(latencies):
        raise ValueError("need at least one latency sample")
    return LatencySummary(
        mean=float(latencies.mean()),
        p50=float(np.percentile(latencies, 50)),
        p95=float(np.percentile(latencies, 95)),
        p99=float(np.percentile(latencies, 99)),
        worst=float(latencies.max()),
    )
