"""Per-query latency statistics.

Mean query time (what the paper's batch curves show) hides the tail; a
serving system cares about p95/p99.  :func:`measure_latencies` times
each query individually and :func:`latency_summary` reduces to the
usual percentiles — used by ``benchmarks/bench_latency_tail.py`` to
compare the probers' tails (generate-to-probe methods have short,
stable retrieval; sort-everything methods pay their start-up cost on
every single query).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.eval.harness import SearchableIndex
from repro.search.results import SearchResult

__all__ = [
    "measure_latencies",
    "measure_stage_latencies",
    "stage_latencies_from_results",
    "latency_summary",
    "LatencySummary",
]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile report over per-query wall times (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    worst: float

    def row(self, scale: float = 1e3) -> list[float]:
        """The summary as a table row (default: milliseconds)."""
        return [
            round(self.mean * scale, 3),
            round(self.p50 * scale, 3),
            round(self.p95 * scale, 3),
            round(self.p99 * scale, 3),
            round(self.worst * scale, 3),
        ]


def measure_latencies(
    index: SearchableIndex, queries: np.ndarray, k: int, n_candidates: int
) -> np.ndarray:
    """Wall time of each individual query, in seconds."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    latencies = np.empty(len(queries))
    for i, query in enumerate(queries):
        start = time.perf_counter()
        index.search(query, k, n_candidates)
        latencies[i] = time.perf_counter() - start
    return latencies


def measure_stage_latencies(
    index: SearchableIndex, queries: np.ndarray, k: int, n_candidates: int
) -> dict[str, np.ndarray]:
    """Per-query retrieval/evaluation split from the engine's telemetry.

    The harness does **no timing of its own**: every engine-backed
    search times its stages with :mod:`repro.obs` spans and attaches
    the measurements as an
    :class:`~repro.search.engine.ExecutionContext` under
    ``result.stats`` — the same numbers the telemetry registry's
    ``repro_query_stage_seconds`` histogram aggregates.  Reading them
    off the results keeps offline reports and live metrics on one
    source of truth, and separates the tail of retrieval (probe-order
    generation) from the tail of evaluation (exact re-rank).  Raises
    when the index does not attach stats.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    return stage_latencies_from_results(
        index.search(query, k, n_candidates) for query in queries
    )


def stage_latencies_from_results(
    results: Iterable[SearchResult],
) -> dict[str, np.ndarray]:
    """Stage splits off already-executed results' span-backed stats.

    Works on any iterable of :class:`SearchResult` — e.g. the output of
    ``search_batch`` — so batched paths get the same stage report as
    :func:`measure_stage_latencies` without re-running the queries.
    """
    totals: list[float] = []
    retrievals: list[float] = []
    evaluations: list[float] = []
    for result in results:
        stats = result.stats
        if stats is None:
            raise ValueError(
                "result did not attach ExecutionContext stats; use "
                "measure_latencies for plain wall times"
            )
        totals.append(stats.total_seconds)
        retrievals.append(stats.retrieval_seconds)
        evaluations.append(stats.evaluation_seconds)
    return {
        "total": np.asarray(totals, dtype=np.float64),
        "retrieval": np.asarray(retrievals, dtype=np.float64),
        "evaluation": np.asarray(evaluations, dtype=np.float64),
    }


def latency_summary(latencies: np.ndarray) -> LatencySummary:
    """Reduce per-query times to mean/median/tail percentiles."""
    latencies = np.asarray(latencies, dtype=np.float64)
    if not len(latencies):
        raise ValueError("need at least one latency sample")
    return LatencySummary(
        mean=float(latencies.mean()),
        p50=float(np.percentile(latencies, 50)),
        p95=float(np.percentile(latencies, 95)),
        p99=float(np.percentile(latencies, 99)),
        worst=float(latencies.max()),
    )
