"""Parameter tuning: pick the candidate budget for a recall target.

The paper's stopping criterion ``N`` (candidates to collect) is the
knob a deployment actually turns.  :func:`tune_candidate_budget` finds
the smallest budget meeting a recall target on a validation sample by
bisection over the (monotone) recall-vs-budget curve — the standard
auto-tuning loop FLANN popularised, applied to L2H probing.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.eval.harness import StreamableIndex, recall_at_budgets
from repro.hashing.base import BinaryHasher

__all__ = ["tune_candidate_budget", "tune_code_length", "TuningResult"]


class TuningResult(dict):
    """Dict with attribute access: ``budget``, ``recall``, ``evaluations``."""

    __getattr__ = dict.__getitem__


def tune_candidate_budget(
    index: StreamableIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    target_recall: float = 0.9,
    tolerance: int = 16,
) -> TuningResult:
    """Smallest candidate budget whose mean recall meets the target.

    Parameters
    ----------
    index:
        Any object with ``candidate_stream`` and ``num_items`` (the
        recall probe runs stream traces, no timing involved).
    queries, truth_ids:
        Validation queries with exact truth rows.
    target_recall:
        Required mean recall in ``(0, 1]``.
    tolerance:
        Bisection stops when the bracket is narrower than this many
        candidates.

    Returns
    -------
    TuningResult
        ``budget`` (the tuned N), ``recall`` (achieved on the sample),
        ``evaluations`` (recall probes spent).  ``budget`` equals the
        dataset size when even a full scan is required.
    """
    if not 0 < target_recall <= 1:
        raise ValueError("target_recall must be in (0, 1]")
    if tolerance < 1:
        raise ValueError("tolerance must be positive")
    n = index.num_items
    evaluations = 0

    def recall_at(budget: int) -> float:
        nonlocal evaluations
        evaluations += 1
        return recall_at_budgets(index, queries, truth_ids, [budget])[0]

    low, high = 1, n
    high_recall = recall_at(high)
    if high_recall < target_recall:
        # Not reachable even with a full scan (truth/queries mismatch);
        # report the full budget honestly.
        return TuningResult(budget=n, recall=high_recall,
                            evaluations=evaluations)
    while high - low > tolerance:
        mid = (low + high) // 2
        if recall_at(mid) >= target_recall:
            high = mid
        else:
            low = mid + 1
    return TuningResult(
        budget=high, recall=recall_at(high), evaluations=evaluations
    )


def tune_code_length(
    hasher_factory: Callable[[int], BinaryHasher],
    data: np.ndarray,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    candidates: list[int] | None = None,
    target_recall: float = 0.9,
    k: int | None = None,
) -> TuningResult:
    """Pick the code length minimising time-to-target-recall.

    Figure 10's trade-off as a tool: for each candidate ``m``, train
    ``hasher_factory(m)``, build a GQR index and measure the wall time
    to reach ``target_recall`` over a budget sweep; return the best.

    Parameters
    ----------
    hasher_factory:
        ``m -> BinaryHasher`` (e.g. ``lambda m: ITQ(code_length=m)``).
    candidates:
        Code lengths to try; defaults to the paper rule ±3.
    k:
        Neighbour count; defaults to the truth rows' width.

    Returns
    -------
    TuningResult
        ``code_length``, ``seconds`` (time to target at that length),
        and ``per_length`` (the full sweep for reporting).
    """
    from repro.core.gqr import GQR
    from repro.data.datasets import default_code_length
    from repro.eval.harness import default_budgets, sweep_budgets, time_to_recall
    from repro.search.searcher import HashIndex

    data = np.asarray(data, dtype=np.float64)
    truth = np.asarray(truth_ids)
    if k is None:
        k = truth.shape[1]
    if candidates is None:
        base = default_code_length(len(data))
        candidates = [m for m in (base - 3, base, base + 3) if m >= 2]

    per_length: dict[int, float] = {}
    for m in candidates:
        hasher = hasher_factory(m).fit(data)
        index = HashIndex(hasher, data, prober=GQR())
        curve = sweep_budgets(
            index, queries, truth, k, default_budgets(len(data), 6)
        )
        per_length[m] = time_to_recall(curve, target_recall)
    best = min(per_length, key=per_length.get)
    return TuningResult(
        code_length=best, seconds=per_length[best], per_length=per_length
    )
